"""Prepackaged horizontal partitions and the node-local store (v2lqp data
service state).

"The query service ... operates on horizontal table partitions which are
created during data import. These prepackaged partitions allow for a fast
distribution of the data when scaling out or for data recovery." (§IV.B)

A :class:`PrepackagedPartition` is a self-contained columnar chunk —
schema, column arrays, id — that can be shipped between nodes as one
payload. The SOE relaxes the core store's compression requirements
(§IV.A): columns are plain arrays with append dictionaries, no resorting.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Sequence

import numpy as np

from repro.errors import SoeError
from repro.soe.cluster import approx_row_bytes


class PrepackagedPartition:
    """One shippable horizontal partition of one table."""

    def __init__(self, table: str, partition_id: int, columns: Sequence[str]) -> None:
        self.table = table
        self.partition_id = partition_id
        self.columns = [name.lower() for name in columns]
        self._data: dict[str, list[Any]] = {name: [] for name in self.columns}
        self._arrays: dict[str, np.ndarray] | None = None

    # -- writes ----------------------------------------------------------------

    def append_row(self, row: Sequence[Any]) -> None:
        if len(row) != len(self.columns):
            raise SoeError(
                f"row width {len(row)} != {len(self.columns)} for {self.table}"
            )
        for name, value in zip(self.columns, row):
            self._data[name].append(value)
        self._arrays = None

    def append_rows(self, rows: Sequence[Sequence[Any]]) -> None:
        for row in rows:
            self.append_row(row)

    def delete_where(self, predicate: Callable[[list[Any]], bool]) -> int:
        """Delete matching rows (compacting; SOE is read-optimised)."""
        keep: list[int] = []
        removed = 0
        for index, row in enumerate(self.rows()):
            if predicate(list(row)):
                removed += 1
            else:
                keep.append(index)
        if removed:
            for name in self.columns:
                values = self._data[name]
                self._data[name] = [values[index] for index in keep]
            self._arrays = None
        return removed

    # -- reads -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._data[self.columns[0]]) if self.columns else 0

    def column(self, name: str) -> np.ndarray:
        """The column as a NumPy array (cached)."""
        name = name.lower()
        if name not in self._data:
            raise SoeError(f"no column {name!r} in {self.table}")
        if self._arrays is None:
            from repro.sql.functions import narrow_to_array

            self._arrays = {
                key: narrow_to_array(values) for key, values in self._data.items()
            }
        return self._arrays[name]

    def column_list(self, name: str) -> list[Any]:
        """The column as the raw Python value list (kernel fast path)."""
        name = name.lower()
        if name not in self._data:
            raise SoeError(f"no column {name!r} in {self.table}")
        return self._data[name]

    def rows(self) -> Iterator[tuple[Any, ...]]:
        yield from zip(*(self._data[name] for name in self.columns))

    def size_bytes(self) -> int:
        """Approximate payload size when shipped."""
        return sum(approx_row_bytes(row) for row in self.rows())

    # -- shipping -----------------------------------------------------------------

    def to_payload(self) -> dict[str, Any]:
        """Serialisable form for node-to-node distribution."""
        return {
            "table": self.table,
            "partition_id": self.partition_id,
            "columns": list(self.columns),
            "data": {name: list(values) for name, values in self._data.items()},
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "PrepackagedPartition":
        partition = cls(payload["table"], payload["partition_id"], payload["columns"])
        partition._data = {name: list(values) for name, values in payload["data"].items()}
        return partition


def hash_partition_rows(
    rows: Sequence[Sequence[Any]],
    columns: Sequence[str],
    key_positions: Sequence[int],
    partition_count: int,
    table: str,
) -> list[PrepackagedPartition]:
    """Split rows into ``partition_count`` prepackaged hash partitions."""
    import zlib

    partitions = [
        PrepackagedPartition(table, partition_id, columns)
        for partition_id in range(partition_count)
    ]
    for row in rows:
        key = "\x1f".join(repr(row[position]) for position in key_positions)
        bucket = zlib.crc32(key.encode("utf-8")) % partition_count
        partitions[bucket].append_row(row)
    return partitions


def route_row(row: Sequence[Any], key_positions: Sequence[int], partition_count: int) -> int:
    """Partition ordinal for one row (must match hash_partition_rows)."""
    import zlib

    key = "\x1f".join(repr(row[position]) for position in key_positions)
    return zlib.crc32(key.encode("utf-8")) % partition_count


class LocalStore:
    """A data service's partition inventory: table → {partition_id → data}."""

    def __init__(self) -> None:
        self._partitions: dict[str, dict[int, PrepackagedPartition]] = {}

    def install(self, partition: PrepackagedPartition) -> None:
        self._partitions.setdefault(partition.table, {})[partition.partition_id] = partition

    def remove(self, table: str, partition_id: int) -> PrepackagedPartition | None:
        return self._partitions.get(table, {}).pop(partition_id, None)

    def partition(self, table: str, partition_id: int) -> PrepackagedPartition:
        try:
            return self._partitions[table][partition_id]
        except KeyError:
            raise SoeError(
                f"partition {table}#{partition_id} not hosted here"
            ) from None

    def has_partition(self, table: str, partition_id: int) -> bool:
        return partition_id in self._partitions.get(table, {})

    def partitions_of(self, table: str) -> list[PrepackagedPartition]:
        return list(self._partitions.get(table, {}).values())

    def tables(self) -> list[str]:
        return sorted(self._partitions)

    def total_rows(self) -> int:
        return sum(
            len(partition)
            for table in self._partitions.values()
            for partition in table.values()
        )
