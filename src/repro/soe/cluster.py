"""The simulated scale-out cluster: nodes, network model, accounting.

Substitution note (DESIGN.md): the paper's SOE targets "thousands of
nodes" over real fabrics. The reproduction runs every node in-process and
replaces the physical network with an explicit cost model — every transfer
is charged ``latency + bytes / bandwidth`` of *simulated* seconds and
counted, so distributed plans can be compared by the same currency the
paper's plan generator optimises (communication volume), deterministically
and at laptop scale.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ClusterError, NetworkPartitionedError, NodeUnavailableError


@dataclass
class NetworkModel:
    """Latency/bandwidth cost model for inter-node transfers."""

    latency_seconds: float = 0.0005
    bandwidth_bytes_per_second: float = 1e9

    def cost(self, payload_bytes: int) -> float:
        """Simulated seconds for one transfer."""
        return self.latency_seconds + payload_bytes / self.bandwidth_bytes_per_second


@dataclass
class TransferStats:
    """Accumulated communication accounting."""

    messages: int = 0
    bytes_total: int = 0
    simulated_seconds: float = 0.0

    def snapshot(self) -> dict[str, float]:
        return {
            "messages": float(self.messages),
            "bytes_total": float(self.bytes_total),
            "simulated_seconds": self.simulated_seconds,
        }


class Node:
    """One cluster node hosting named services."""

    def __init__(self, node_id: str, cluster: "SimulatedCluster") -> None:
        self.node_id = node_id
        self.cluster = cluster
        self.services: dict[str, Any] = {}
        self.alive = True
        #: rough work counter for hotspot detection (rows processed)
        self.work_done = 0

    def host(self, service_name: str, service: Any) -> None:
        self.services[service_name] = service

    def check_available(self, service_name: str = "") -> None:
        """The service-access seam: chaos hook first (a scheduled crash
        fires here), then the liveness gate. Raises
        :class:`NodeUnavailableError` (retryable — the failure-aware
        coordinator fails partition reads over to a replica)."""
        chaos = self.cluster.chaos
        if chaos is not None:
            chaos.on_service(self.node_id, service_name)
        if not self.alive:
            raise NodeUnavailableError(self.node_id)

    def service(self, service_name: str) -> Any:
        self.check_available(service_name)
        try:
            return self.services[service_name]
        except KeyError:
            raise ClusterError(
                f"node {self.node_id} hosts no service {service_name!r}"
            ) from None

    def __repr__(self) -> str:
        return f"Node({self.node_id}, services={sorted(self.services)})"


@dataclass
class SimulatedCluster:
    """The node collection plus shared network accounting.

    Failure model: beyond the crash-stop ``Node.alive`` bit, the cluster
    keeps a pairwise, *asymmetric* reachability matrix — a set of cut
    directed links plus a set of fully-isolated nodes. ``transfer``
    consults it, so a partitioned link drops messages
    (:class:`NetworkPartitionedError`, retryable) while both endpoints
    keep running: the gray failures that split-brain ownership unless
    leases fence the writers (see ``repro.soe.membership``). Crash-stop
    is the special case "partitioned from everyone": ``kill`` also
    isolates the node so heartbeats and transfers fail symmetrically.
    """

    network: NetworkModel = field(default_factory=NetworkModel)
    nodes: dict[str, Node] = field(default_factory=dict)
    stats: TransferStats = field(default_factory=TransferStats)
    #: optional fault injector (repro.chaos.ChaosController); consulted by
    #: the transfer and service seams when installed
    chaos: Any = None
    #: nodes partitioned from *everyone* (both directions)
    _isolated: set[str] = field(default_factory=set)
    #: directed (source, target) links currently cut
    _cut_links: set[tuple[str, str]] = field(default_factory=set)
    #: (on_failed, on_restored) pairs notified by kill()/revive() — the
    #: DiscoveryService subscribes so lookups never hand out a dead address
    _membership_callbacks: list[tuple[Callable[[str], Any], Callable[[str], Any]]] = field(
        default_factory=list
    )
    _counter: itertools.count = field(default_factory=lambda: itertools.count(1))

    def add_node(self, node_id: str | None = None) -> Node:
        """Create and register a node."""
        if node_id is None:
            node_id = f"node{next(self._counter)}"
        if node_id in self.nodes:
            raise ClusterError(f"duplicate node id {node_id!r}")
        node = Node(node_id, self)
        self.nodes[node_id] = node
        return node

    def node(self, node_id: str) -> Node:
        try:
            return self.nodes[node_id]
        except KeyError:
            raise ClusterError(f"unknown node {node_id!r}") from None

    def alive_nodes(self) -> list[Node]:
        return [node for node in self.nodes.values() if node.alive]

    def kill(self, node_id: str) -> None:
        """Simulate a crash-stop failure: the node stops *and* is
        partitioned from everyone (heartbeats, transfers, and service
        calls all fail). Membership subscribers are notified so service
        discovery withdraws the address immediately."""
        node = self.node(node_id)
        was_alive = node.alive
        node.alive = False
        self._isolated.add(node_id)
        if was_alive:
            for on_failed, _ in self._membership_callbacks:
                on_failed(node_id)

    def revive(self, node_id: str) -> None:
        node = self.node(node_id)
        was_dead = not node.alive
        node.alive = True
        self._isolated.discard(node_id)
        if was_dead:
            for _, on_restored in self._membership_callbacks:
                on_restored(node_id)

    def notify_membership(
        self,
        on_failed: Callable[[str], Any],
        on_restored: Callable[[str], Any],
    ) -> None:
        """Subscribe to kill/revive transitions (e.g. discovery withdraw
        /announce). Callbacks fire only on actual state changes."""
        self._membership_callbacks.append((on_failed, on_restored))

    def partition(self, source: str, target: str, *, symmetric: bool = False) -> None:
        """Cut the directed link ``source -> target`` (both directions
        when ``symmetric``). Both nodes stay alive — this is the gray
        failure crash-stop testing never exercises."""
        self.node(source)
        self.node(target)
        self._cut_links.add((source, target))
        if symmetric:
            self._cut_links.add((target, source))

    def isolate(self, node_id: str) -> None:
        """Partition a node from every other node, both directions,
        while it keeps running (the zombie-owner scenario)."""
        self.node(node_id)
        self._isolated.add(node_id)

    def heal(self, source: str | None = None, target: str | None = None) -> None:
        """Heal partitions. ``heal()`` clears every cut link and
        isolation; ``heal(a)`` un-isolates ``a`` and restores all links
        touching it; ``heal(a, b)`` restores both directions of one pair."""
        if source is None:
            self._cut_links.clear()
            self._isolated.clear()
        elif target is None:
            self._isolated.discard(source)
            self._cut_links = {
                link for link in self._cut_links if source not in link
            }
        else:
            self._cut_links.discard((source, target))
            self._cut_links.discard((target, source))

    def reachable(self, source: str, target: str) -> bool:
        """Can a message flow ``source -> target`` right now? Dead nodes
        are unreachable in both directions (crash-stop == isolated)."""
        if source == target:
            return True
        for endpoint in (source, target):
            if endpoint in self._isolated:
                return False
            node = self.nodes.get(endpoint)
            if node is not None and not node.alive:
                return False
        return (source, target) not in self._cut_links

    def isolated_nodes(self) -> list[str]:
        """Nodes currently partitioned from everyone (sorted)."""
        return sorted(self._isolated)

    def transfer(self, source: str, target: str, payload_bytes: int) -> float:
        """Charge one transfer between nodes; returns simulated seconds.

        Local (same-node) moves are free — exactly the asymmetry that makes
        co-partitioned plans and SOE-on-HDFS-datanode locality win.

        The chaos drop seam fires on every transfer *attempt* — before
        the reachability gate — so seam event indices are stable whether
        or not a partition is active (existing recorded fault schedules
        replay unchanged). A transfer across a cut link then raises
        :class:`NetworkPartitionedError` before any accounting: the
        message never leaves the source.
        """
        if source == target:
            return 0.0
        extra = 0.0
        if self.chaos is not None:
            # may raise TransferDroppedError (retryable: the sender resends)
            extra = self.chaos.on_transfer(source, target, payload_bytes)
        if not self.reachable(source, target):
            raise NetworkPartitionedError(source, target)
        seconds = self.network.cost(payload_bytes) + extra
        self.stats.messages += 1
        self.stats.bytes_total += payload_bytes
        self.stats.simulated_seconds += seconds
        return seconds

    def reset_stats(self) -> TransferStats:
        """Swap in a fresh stats object; returns the old one."""
        old = self.stats
        self.stats = TransferStats()
        return old


def approx_row_bytes(row: Any) -> int:
    """Rough serialised size of one row for transfer accounting."""
    total = 2
    for value in row:
        total += len(value) + 1 if isinstance(value, str) else 8
    return total
