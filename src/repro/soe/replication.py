"""Log-driven replica maintenance: OLTP vs OLAP database nodes (§IV.B).

"We are able to achieve different transactional behaviors by distinguishing
two types of database nodes. ... an OLAP node updates itself in a
transactionally consistent way but not necessarily synchronously to the
update request ... OLTP nodes allow real time transactional update of the
data by incorporating the log during the update transaction."

:class:`DataNode` owns a set of partition ids per table and applies the
transaction stream to its :class:`LocalStore`:

* ``mode="oltp"`` — subscribes to the broker; every committed transaction
  is applied before the commit returns (always fresh, pays apply cost on
  the write path),
* ``mode="olap"`` — applies nothing eagerly; :meth:`catch_up` pulls the
  log suffix on demand (polling or coordinator-forced), trading staleness
  for cheap writes. ``staleness()`` reports how far behind it is.

High availability: several nodes may own the same partition (replicas);
they all apply the same log, so any of them can serve reads after a
failure — "high availability is achieved by supporting multiple replicas
with the log replication mechanism".
"""

from __future__ import annotations

import threading
from typing import Any

from repro.analysis.racecheck import track_fields
from repro.errors import SoeError
from repro.soe.partitions import LocalStore, PrepackagedPartition, route_row
from repro.soe.services.transaction_broker import Operation, TransactionBroker


@track_fields("_ownership")
class DataNode:
    """One database node's data service state + log application logic."""

    def __init__(
        self,
        node_id: str,
        broker: TransactionBroker,
        mode: str = "olap",
    ) -> None:
        if mode not in ("oltp", "olap"):
            raise SoeError(f"unknown node mode {mode!r}")
        self.node_id = node_id
        self.broker = broker
        self.mode = mode
        self.store = LocalStore()
        #: table -> (owned partition ids, key positions, partition count)
        self._ownership: dict[str, tuple[set[int], list[int], int]] = {}
        #: serialises log application: _on_commit escapes to whichever
        #: thread calls broker.submit() (RA108), so the apply path and the
        #: pull/staleness path must not interleave
        self._apply_lock = threading.Lock()
        self.applied_lsn = broker.current_lsn
        self.applies = 0
        if mode == "oltp":
            broker.subscribe_oltp(self._on_commit)

    # -- ownership -----------------------------------------------------------------

    def own(
        self,
        table: str,
        partitions: list[PrepackagedPartition],
        key_positions: list[int],
        partition_count: int,
    ) -> None:
        """Install prepackaged partitions this node is responsible for."""
        # ownership changes race the apply path on an OLTP node: the
        # broker may push a commit into _on_commit mid-install (RA108)
        with self._apply_lock:
            owned = self._ownership.setdefault(
                table, (set(), key_positions, partition_count)
            )[0]
            for partition in partitions:
                self.store.install(partition)
                owned.add(partition.partition_id)

    def owned_partitions(self, table: str) -> set[int]:
        with self._apply_lock:
            return set(self._ownership.get(table, (set(), [], 0))[0])

    # -- log application --------------------------------------------------------------

    def _on_commit(self, address: int, operations: list[Operation]) -> None:
        # OLTP path: called synchronously by the broker, on the submitting
        # thread — serialise against a concurrent catch_up()
        with self._apply_lock:
            self._apply(operations)
            self.applied_lsn = address + 1

    def catch_up(self, to_lsn: int | None = None) -> int:
        """OLAP path: pull and apply the log suffix; returns txns applied."""
        target = to_lsn if to_lsn is not None else self.broker.current_lsn
        applied = 0
        with self._apply_lock:
            for address, operations in self.broker.read_since(self.applied_lsn):
                if address >= target:
                    break
                self._apply(operations)
                self.applied_lsn = address + 1
                applied += 1
        return applied

    def staleness(self) -> int:
        """Committed transactions this node has not applied yet."""
        with self._apply_lock:
            return self.broker.current_lsn - self.applied_lsn

    def _apply(self, operations: list[Operation]) -> None:
        for operation in operations:
            table = operation["table"]
            ownership = self._ownership.get(table)
            if ownership is None:
                continue
            owned, key_positions, partition_count = ownership
            kind = operation["op"]
            if kind == "insert":
                for row in operation["rows"]:
                    target = route_row(row, key_positions, partition_count)
                    if target in owned:
                        self.store.partition(table, target).append_row(row)
                        self.applies += 1
            elif kind == "delete":
                column = operation["column"]
                value = operation["value"]
                for partition in self.store.partitions_of(table):
                    if partition.partition_id not in owned:
                        continue
                    position = partition.columns.index(column.lower())
                    self.applies += partition.delete_where(
                        lambda row: row[position] == value
                    )
            else:
                raise SoeError(f"unknown log operation {kind!r}")


def make_insert(table: str, rows: list[list[Any]]) -> Operation:
    """Log-record helper for inserts."""
    return {"op": "insert", "table": table, "rows": rows}


def make_delete(table: str, column: str, value: Any) -> Operation:
    """Log-record helper for key deletes."""
    return {"op": "delete", "table": table, "column": column, "value": value}
