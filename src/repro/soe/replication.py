"""Log-driven replica maintenance: OLTP vs OLAP database nodes (§IV.B).

"We are able to achieve different transactional behaviors by distinguishing
two types of database nodes. ... an OLAP node updates itself in a
transactionally consistent way but not necessarily synchronously to the
update request ... OLTP nodes allow real time transactional update of the
data by incorporating the log during the update transaction."

:class:`DataNode` owns a set of partition ids per table and applies the
transaction stream to its :class:`LocalStore`:

* ``mode="oltp"`` — subscribes to the broker; every committed transaction
  is applied before the commit returns (always fresh, pays apply cost on
  the write path),
* ``mode="olap"`` — applies nothing eagerly; :meth:`catch_up` pulls the
  log suffix on demand (polling or coordinator-forced), trading staleness
  for cheap writes. ``staleness()`` reports how far behind it is.

High availability: several nodes may own the same partition (replicas);
they all apply the same log, so any of them can serve reads after a
failure — "high availability is achieved by supporting multiple replicas
with the log replication mechanism".

Ownership changes go through the **locked ownership API**
(:meth:`DataNode.install_ownership` / :meth:`DataNode.release_ownership`
/ :meth:`DataNode.transfer_ownership`) — never by poking ``_ownership``
directly. The install path aligns the incoming partition with this
node's log-apply cursor *under the apply lock*, which closes the
install-vs-apply seam (the PR 4 race): a commit can never be applied
twice to, or skipped by, a partition that arrives mid-stream.

Every ownership-mutating entry point additionally accepts a ``fence``
token (``repro.soe.membership``): when a :class:`FencingGuard` is
installed on the node, a mutation on a leased partition must present a
current-epoch token or it raises a non-retryable ``FencedError`` — the
zombie-write gate. Guard checks run *before* the apply lock is taken,
so the lease lock and the apply lock never nest.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Sequence

from repro.analysis.racecheck import track_fields
from repro.errors import SoeError
from repro.soe.partitions import LocalStore, PrepackagedPartition, route_row
from repro.soe.services.transaction_broker import Operation, TransactionBroker


def apply_to_partition(
    partition: PrepackagedPartition,
    operations: list[Operation],
    key_positions: Sequence[int],
    partition_count: int,
) -> int:
    """Apply one committed transaction's operations to a single detached
    partition copy (the movement catch-up path): only rows routing to this
    partition's ordinal land. Returns rows touched."""
    touched = 0
    for operation in operations:
        if operation["table"] != partition.table:
            continue
        kind = operation["op"]
        if kind == "insert":
            for row in operation["rows"]:
                target = route_row(row, key_positions, partition_count)
                if target == partition.partition_id:
                    partition.append_row(row)
                    touched += 1
        elif kind == "delete":
            column = operation["column"]
            value = operation["value"]
            position = partition.columns.index(column.lower())
            touched += partition.delete_where(lambda row: row[position] == value)
        else:
            raise SoeError(f"unknown log operation {kind!r}")
    return touched


@track_fields("_ownership")
class DataNode:
    """One database node's data service state + log application logic."""

    def __init__(
        self,
        node_id: str,
        broker: TransactionBroker,
        mode: str = "olap",
    ) -> None:
        if mode not in ("oltp", "olap"):
            raise SoeError(f"unknown node mode {mode!r}")
        self.node_id = node_id
        self.broker = broker
        self.mode = mode
        self.store = LocalStore()
        #: optional membership FencingGuard; installed by
        #: SoeEngine.enable_membership(), None == legacy unfenced behaviour
        self.fencing: Any = None
        #: optional cluster handle + gateway node id for the node-local
        #: ingest path, so client traffic into this node experiences the
        #: reachability matrix on its way to the shared log
        self.cluster: Any = None
        self.gateway: str | None = None
        #: table -> (owned partition ids, key positions, partition count)
        self._ownership: dict[str, tuple[set[int], list[int], int]] = {}
        #: serialises log application: _on_commit escapes to whichever
        #: thread calls broker.submit() (RA108), so the apply path and the
        #: pull/staleness path must not interleave
        self._apply_lock = threading.Lock()
        self.applied_lsn = broker.current_lsn
        self.applies = 0
        #: (table, partition id) -> in-flight query pin count; a released
        #: partition retained for draining is freed only once unpinned
        self._pins: dict[tuple[str, int], int] = {}
        if mode == "oltp":
            broker.subscribe_oltp(self._on_commit)

    # -- ownership -----------------------------------------------------------------

    def own(
        self,
        table: str,
        partitions: list[PrepackagedPartition],
        key_positions: list[int],
        partition_count: int,
    ) -> None:
        """Install prepackaged partitions this node is responsible for."""
        # ownership changes race the apply path on an OLTP node: the
        # broker may push a commit into _on_commit mid-install (RA108)
        with self._apply_lock:
            owned = self._ownership.setdefault(
                table, (set(), list(key_positions), partition_count)
            )[0]
            for partition in partitions:
                self.store.install(partition)
                owned.add(partition.partition_id)

    def owned_partitions(self, table: str) -> set[int]:
        with self._apply_lock:
            return set(self._ownership.get(table, (set(), [], 0))[0])

    def ownership_meta(self, table: str) -> tuple[list[int], int]:
        """(key positions, partition count) of an owned table — returned
        as copies, so callers can never alias this node's routing state
        into another node (the rebalancing aliasing bug)."""
        with self._apply_lock:
            ownership = self._ownership.get(table)
            if ownership is None:
                raise SoeError(f"{self.node_id} owns nothing of {table!r}")
            return list(ownership[1]), ownership[2]

    def applied_position(self) -> int:
        """The log-apply cursor, read under the apply lock."""
        with self._apply_lock:
            return self.applied_lsn

    def snapshot_partition(
        self, table: str, partition_id: int
    ) -> tuple[PrepackagedPartition, int]:
        """Clone one hosted partition at a pinned position: the copy plus
        the apply-cursor LSN it reflects, taken atomically under the apply
        lock so no commit lands between the clone and the cursor read.
        The donor keeps serving reads and applying the log afterwards —
        this is the MVCC-consistent snapshot the online mover ships."""
        with self._apply_lock:
            partition = self.store.partition(table, partition_id)
            clone = PrepackagedPartition.from_payload(partition.to_payload())
            return clone, self.applied_lsn

    def install_ownership(
        self,
        table: str,
        partition: PrepackagedPartition,
        key_positions: Sequence[int],
        partition_count: int,
        partition_lsn: int,
        fence: Any = None,
    ) -> None:
        """Install a partition copy that reflects the log up to
        ``partition_lsn`` and take ownership of it — atomically with
        respect to the apply path. On a leased partition the caller must
        present a current-epoch ``fence`` token (validated before the
        apply lock; a stale mover raises ``FencedError`` here).

        The node's apply cursor and the copy are aligned under the apply
        lock before either becomes visible: a node that lags the copy is
        caught up first (so the gap is never re-applied to the copy), and
        a copy that lags the node has the gap replayed into it alone.
        This is the ownership install-vs-apply seam — without the
        alignment, a commit in the gap is double-applied or lost.
        """
        if self.fencing is not None:
            self.fencing.check_partition(table, partition.partition_id, fence)
        with self._apply_lock:
            ownership = self._ownership.get(table)
            if ownership is not None and partition.partition_id in ownership[0]:
                raise SoeError(
                    f"{self.node_id} already owns {table}#{partition.partition_id}"
                )
            if self.applied_lsn < partition_lsn:
                # catch this node up to the copy: ops in the gap reach the
                # already-owned partitions exactly once, never the copy
                for address, operations in self.broker.read_since(self.applied_lsn):
                    if address >= partition_lsn:
                        break
                    self._apply(operations)
                    self.applied_lsn = address + 1
                self.applied_lsn = max(self.applied_lsn, partition_lsn)
            elif partition_lsn < self.applied_lsn:
                # the copy lags this node: replay the gap into the copy only
                for address, operations in self.broker.read_since(partition_lsn):
                    if address >= self.applied_lsn:
                        break
                    apply_to_partition(
                        partition, operations, key_positions, partition_count
                    )
            self.store.install(partition)
            owned = self._ownership.setdefault(
                table, (set(), list(key_positions), partition_count)
            )[0]
            owned.add(partition.partition_id)

    def release_ownership(
        self,
        table: str,
        partition_id: int,
        *,
        retain_data: bool = False,
        fence: Any = None,
    ) -> PrepackagedPartition | None:
        """Stop owning (and applying the log to) one partition.

        With ``retain_data`` the bytes stay in the local store so
        in-flight queries drain against the retained copy
        (:meth:`drop_retained` frees it once unpinned); without it the
        partition is removed and returned. A leased partition requires a
        current-epoch ``fence`` token — only the mover holding the new
        lease may strip the donor.
        """
        if self.fencing is not None:
            self.fencing.check_partition(table, partition_id, fence)
        with self._apply_lock:
            ownership = self._ownership.get(table)
            if ownership is None or partition_id not in ownership[0]:
                raise SoeError(
                    f"{self.node_id} does not own {table}#{partition_id}"
                )
            ownership[0].discard(partition_id)
            if retain_data:
                return self.store.partition(table, partition_id)
            return self.store.remove(table, partition_id)

    def drop_retained(self, table: str, partition_id: int) -> bool:
        """Free a retained (released but not yet trimmed) partition copy.
        Refuses while owned or pinned; returns whether bytes were freed."""
        with self._apply_lock:
            ownership = self._ownership.get(table)
            if ownership is not None and partition_id in ownership[0]:
                raise SoeError(
                    f"{table}#{partition_id} is still owned by {self.node_id}"
                )
            if self._pins.get((table, partition_id), 0) > 0:
                raise SoeError(
                    f"{table}#{partition_id} is pinned on {self.node_id}"
                )
            return self.store.remove(table, partition_id) is not None

    @classmethod
    def transfer_ownership(
        cls,
        donor: "DataNode",
        recipient: "DataNode",
        table: str,
        partition: PrepackagedPartition,
        *,
        partition_lsn: int,
        retain_on_donor: bool = False,
        commit: Callable[[], None] | None = None,
        fence: Any = None,
    ) -> None:
        """The locked ownership handover: install on the recipient first,
        run the ``commit`` callback (the catalog's placement swap — the
        atomic visibility flip), then release on the donor.

        Ordering is the crash-safety argument: after the install both
        nodes own a log-consistent copy (a harmless transient replica), so
        a crash at any point leaves at least one node with correct data —
        there is no remove-before-install window and no moment with zero
        owners. ``retain_on_donor`` keeps the donor's bytes for draining
        in-flight queries (the online mover's phase 4).

        ``fence`` is the new-epoch token the mover acquired before the
        flip; it is validated at every step of the handover (install,
        swap, release), so a mover resumed at a stale epoch cannot move
        ownership anywhere.
        """
        key_positions, partition_count = donor.ownership_meta(table)
        recipient.install_ownership(
            table, partition, key_positions, partition_count, partition_lsn,
            fence=fence,
        )
        if commit is not None:
            commit()
        donor.release_ownership(
            table, partition.partition_id, retain_data=retain_on_donor,
            fence=fence,
        )

    # -- client writes -------------------------------------------------------------

    def ingest(self, table: str, rows: list[list[Any]], fence: Any = None) -> int:
        """Client rows served directly by this node (the paper's OLTP
        node updating its partitions in place) — the path a zombie owner
        keeps serving after a partition. Returns rows acknowledged.

        With a fencing guard installed and enabled, the write is
        epoch-checked and committed **write-through** via the shared log
        (routed over the cluster so an isolated node cannot reach it):
        a fenced, expired, or unreachable holder never acknowledges, so
        no acknowledged row can be stranded on a copy the catalog has
        moved away from. Without a guard the rows are applied to the
        local copy only — the undisciplined split-brain path the
        membership layer exists to close (bench E29's unfenced arm).
        """
        operation = make_insert(table, rows)
        guard = self.fencing
        if guard is not None and guard.enabled:
            guard.check_write(operation, fence)
            if self.cluster is not None and self.gateway is not None:
                from repro.soe.cluster import approx_row_bytes

                payload = sum(approx_row_bytes(row) for row in rows)
                # may raise NetworkPartitionedError: an isolated node
                # cannot commit, so the client is told "unavailable",
                # never "acknowledged"
                self.cluster.transfer(self.node_id, self.gateway, payload)
            self.broker.submit([operation], fence=fence)
            return len(rows)
        with self._apply_lock:
            ownership = self._ownership.get(table)
            if ownership is None:
                raise SoeError(f"{self.node_id} owns nothing of {table!r}")
            owned, key_positions, partition_count = ownership
            targets = [
                route_row(row, key_positions, partition_count) for row in rows
            ]
            for target in targets:
                if target not in owned:
                    raise SoeError(
                        f"{self.node_id} does not own {table}#{target}"
                    )
            for row, target in zip(rows, targets):
                self.store.partition(table, target).append_row(row)
                self.applies += 1
        return len(rows)

    # -- query pins ----------------------------------------------------------------

    def pin_partition(self, table: str, partition_id: int) -> None:
        """Mark one partition as read by an in-flight query: a released
        copy retained for draining cannot be freed while pinned."""
        with self._apply_lock:
            key = (table, partition_id)
            self._pins[key] = self._pins.get(key, 0) + 1

    def unpin_partition(self, table: str, partition_id: int) -> None:
        with self._apply_lock:
            key = (table, partition_id)
            count = self._pins.get(key, 0)
            if count <= 1:
                self._pins.pop(key, None)
            else:
                self._pins[key] = count - 1

    def pin_count(self, table: str, partition_id: int) -> int:
        with self._apply_lock:
            return self._pins.get((table, partition_id), 0)

    @contextmanager
    def pinned(self, table: str | None, partition_ids: Sequence[int]) -> Iterator[None]:
        """Pin a task's partitions for the duration of its execution."""
        if not table or not partition_ids:
            yield
            return
        for partition_id in partition_ids:
            self.pin_partition(table, partition_id)
        try:
            yield
        finally:
            for partition_id in partition_ids:
                self.unpin_partition(table, partition_id)

    # -- log application --------------------------------------------------------------

    def _on_commit(self, address: int, operations: list[Operation]) -> None:
        # OLTP path: called synchronously by the broker, on the submitting
        # thread — serialise against a concurrent catch_up()
        with self._apply_lock:
            self._apply(operations)
            self.applied_lsn = address + 1

    def catch_up(self, to_lsn: int | None = None) -> int:
        """OLAP path: pull and apply the log suffix; returns txns applied."""
        target = to_lsn if to_lsn is not None else self.broker.current_lsn
        applied = 0
        with self._apply_lock:
            for address, operations in self.broker.read_since(self.applied_lsn):
                if address >= target:
                    break
                self._apply(operations)
                self.applied_lsn = address + 1
                applied += 1
        return applied

    def staleness(self) -> int:
        """Committed transactions this node has not applied yet."""
        with self._apply_lock:
            return self.broker.current_lsn - self.applied_lsn

    def _apply(self, operations: list[Operation]) -> None:
        for operation in operations:
            table = operation["table"]
            ownership = self._ownership.get(table)
            if ownership is None:
                continue
            owned, key_positions, partition_count = ownership
            kind = operation["op"]
            if kind == "insert":
                for row in operation["rows"]:
                    target = route_row(row, key_positions, partition_count)
                    if target in owned:
                        self.store.partition(table, target).append_row(row)
                        self.applies += 1
            elif kind == "delete":
                column = operation["column"]
                value = operation["value"]
                for partition in self.store.partitions_of(table):
                    if partition.partition_id not in owned:
                        continue
                    position = partition.columns.index(column.lower())
                    self.applies += partition.delete_where(
                        lambda row: row[position] == value
                    )
            else:
                raise SoeError(f"unknown log operation {kind!r}")


def make_insert(table: str, rows: list[list[Any]]) -> Operation:
    """Log-record helper for inserts."""
    return {"op": "insert", "table": table, "rows": rows}


def make_delete(table: str, column: str, value: Any) -> Operation:
    """Log-record helper for key deletes."""
    return {"op": "delete", "table": table, "column": column, "value": value}
