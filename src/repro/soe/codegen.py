"""Per-task code generation for the SOE query service (§IV.A).

"During runtime the engine compiles the SQL statement into C code and
translates it into an executable binary format" — the query services
receive tasks and compile them before execution. Here each
(filter, group-by, aggregates) task signature is turned into one fused
Python loop, compiled once, and cached; subsequent tasks with the same
signature reuse the binary (the cache is what makes repeated partition
tasks cheap, mirroring the paper's compiled-plan reuse).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.soe.partitions import PrepackagedPartition
from repro.soe.tasks import AggregateSpec, Filter

#: group key tuple -> list of aggregate states
GroupStates = dict[tuple, list[Any]]

_KERNEL_CACHE: dict[tuple, Callable[..., GroupStates]] = {}

_OPS = {"=": "==", "<>": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}


def _signature(
    columns: tuple[str, ...],
    filters: tuple[Filter, ...],
    group_by: tuple[str, ...],
    aggregates: tuple[AggregateSpec, ...],
) -> tuple:
    return (
        columns,
        tuple((f.column, f.op, repr(f.value)) for f in filters),
        group_by,
        tuple((a.op, a.column) for a in aggregates),
    )


def compile_aggregate_kernel(
    columns: tuple[str, ...],
    filters: tuple[Filter, ...],
    group_by: tuple[str, ...],
    aggregates: tuple[AggregateSpec, ...],
) -> Callable[..., GroupStates]:
    """Generate (or fetch) the fused partial-aggregation kernel.

    The kernel signature is ``kernel(*column_lists, _consts, _groups)``:
    it scans row-at-a-time over the supplied column lists, applies the
    filters inline, and accumulates into ``_groups``.
    """
    signature = _signature(columns, filters, group_by, aggregates)
    cached = _KERNEL_CACHE.get(signature)
    if cached is not None:
        return cached

    variable_of = {name: f"c_{index}" for index, name in enumerate(columns)}
    lines: list[str] = []
    arg_list = ", ".join(variable_of[name] for name in columns)
    lines.append(f"def _kernel({arg_list}, _consts, _groups):")
    lines.append("    _n = len(%s)" % variable_of[columns[0]])
    lines.append("    for _i in range(_n):")
    # bind needed columns
    needed = set(group_by)
    needed.update(f.column for f in filters)
    needed.update(a.column for a in aggregates if a.column is not None)
    for name in columns:
        if name in needed:
            lines.append(f"        v_{variable_of[name]} = {variable_of[name]}[_i]")
    # inline filters
    for index, filter_spec in enumerate(filters):
        variable = f"v_{variable_of[filter_spec.column]}"
        op = _OPS[filter_spec.op]
        lines.append(
            f"        if {variable} is None or not ({variable} {op} _consts[{index}]):"
        )
        lines.append("            continue")
    # group key
    if group_by:
        key = ", ".join(f"v_{variable_of[name]}" for name in group_by)
        lines.append(f"        _k = ({key},)")
    else:
        lines.append("        _k = ()")
    lines.append("        _st = _groups.get(_k)")
    lines.append("        if _st is None:")
    inits = []
    for aggregate in aggregates:
        if aggregate.op == "count":
            inits.append("0")
        elif aggregate.op == "avg":
            inits.append("[0.0, 0]")
        else:
            inits.append("None")
    lines.append(f"            _st = [{', '.join(inits)}]")
    lines.append("            _groups[_k] = _st")
    # accumulate
    for index, aggregate in enumerate(aggregates):
        if aggregate.op == "count" and aggregate.column is None:
            lines.append(f"        _st[{index}] += 1")
            continue
        value = f"v_{variable_of[aggregate.column]}"
        lines.append(f"        if {value} is not None:")
        if aggregate.op == "count":
            lines.append(f"            _st[{index}] += 1")
        elif aggregate.op == "sum":
            lines.append(
                f"            _st[{index}] = {value} if _st[{index}] is None else _st[{index}] + {value}"
            )
        elif aggregate.op == "avg":
            lines.append(f"            _st[{index}][0] += {value}")
            lines.append(f"            _st[{index}][1] += 1")
        elif aggregate.op == "min":
            lines.append(
                f"            if _st[{index}] is None or {value} < _st[{index}]: _st[{index}] = {value}"
            )
        elif aggregate.op == "max":
            lines.append(
                f"            if _st[{index}] is None or {value} > _st[{index}]: _st[{index}] = {value}"
            )
    lines.append("    return _groups")
    source = "\n".join(lines)
    namespace: dict[str, Any] = {}
    exec(compile(source, "<soe-task-kernel>", "exec"), namespace)  # noqa: S102
    kernel = namespace["_kernel"]
    kernel.generated_source = source  # type: ignore[attr-defined]
    _KERNEL_CACHE[signature] = kernel
    return kernel


def run_partial_aggregate(
    partitions: list[PrepackagedPartition],
    filters: list[Filter],
    group_by: list[str],
    aggregates: list[AggregateSpec],
) -> GroupStates:
    """Compile the task kernel and run it over the local partitions."""
    groups: GroupStates = {}
    if not partitions:
        return groups
    columns = tuple(partitions[0].columns)
    kernel = compile_aggregate_kernel(
        columns, tuple(filters), tuple(group_by), tuple(aggregates)
    )
    consts = [f.value for f in filters]
    for partition in partitions:
        column_lists = [partition.column_list(name) for name in columns]
        kernel(*column_lists, consts, groups)
    return groups


def merge_group_states(
    parts: list[GroupStates], aggregates: list[AggregateSpec]
) -> GroupStates:
    """Combine partial states from several nodes (the reduce step)."""
    merged: GroupStates = {}
    for part in parts:
        for key, states in part.items():
            target = merged.get(key)
            if target is None:
                merged[key] = [_clone(state) for state in states]
                continue
            for index, aggregate in enumerate(aggregates):
                target[index] = _combine(aggregate.op, target[index], states[index])
    return merged


def _clone(state: Any) -> Any:
    return list(state) if isinstance(state, list) else state


def _combine(op: str, left: Any, right: Any) -> Any:
    if op == "count":
        return (left or 0) + (right or 0)
    if op == "avg":
        return [left[0] + right[0], left[1] + right[1]]
    if left is None:
        return _clone(right)
    if right is None:
        return left
    if op == "sum":
        return left + right
    if op == "min":
        return min(left, right)
    return max(left, right)


def finalize_groups(
    groups: GroupStates, aggregates: list[AggregateSpec]
) -> list[list[Any]]:
    """States → output rows: group key columns then aggregate values."""
    rows: list[list[Any]] = []
    for key in sorted(groups, key=lambda k: tuple(map(repr, k))):
        states = groups[key]
        row = list(key)
        for aggregate, state in zip(aggregates, states):
            if aggregate.op == "avg":
                row.append(state[0] / state[1] if state[1] else None)
            else:
                row.append(state)
        rows.append(row)
    return rows


def estimate_states_bytes(groups: GroupStates) -> int:
    """Approximate shipped size of a partial-aggregate result."""
    total = 0
    for key, states in groups.items():
        for part in key:
            total += len(part) + 1 if isinstance(part, str) else 8
        total += 16 * len(states)
    return total
