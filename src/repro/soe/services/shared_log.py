"""The distributed shared log (v2transact's persistence layer).

"A transaction broker service executes, serializes, and persists
transactions to a distributed shared log. Similar to the Corfu approach
[15], the log stores all changes in a transactional consistent way"
(§IV.B). The reproduction keeps CORFU's structure:

* a **sequencer** hands out globally-ordered log addresses (a counter —
  CORFU's insight is that this is the only centralised step),
* addresses stripe round-robin across **segments**; each segment is
  replicated to ``replication`` stores (chain-style: a write is
  acknowledged only when every replica holds it),
* readers address the log by position; :meth:`read_from` streams the
  suffix — this drives replica catch-up (see repro.soe.replication),
* :meth:`fill` patches holes left by clients that took an address and
  died; :meth:`seal` fences a segment for reconfiguration,
* ``trim`` drops a durable prefix.

Storage is pluggable: :class:`MemorySegmentStore` (stands in for the
paper's NVM variant) or an HDFS-backed store
(:class:`repro.hadoop.connectors.HdfsSegmentStore`) — "multiple
implementation variants will be provided (also on top of HDFS)".

**Role in the query path:** none directly — the log is the write side's
source of truth; query-serving replicas catch up from it asynchronously.

**Observability:** appends, hole fills, and trims count into
``soe.shared_log.*`` so v2stats can watch log growth and backlog.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterator

from repro import obs
from repro.analysis.racecheck import track_fields
from repro.errors import LogError, LogSealedError

#: sentinel payload for filled holes
HOLE = {"__hole__": True}


@track_fields("_entries")
class MemorySegmentStore:
    """One replica of one stripe: an in-memory address → payload map."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._entries: dict[int, Any] = {}
        self.sealed_at: int | None = None

    def write(self, address: int, payload: Any) -> None:
        if self.sealed_at is not None and address >= self.sealed_at:
            raise LogSealedError(
                f"segment {self.name} sealed at {self.sealed_at}"
            )
        if address in self._entries:
            raise LogError(f"address {address} already written in {self.name}")
        self._entries[address] = payload

    def read(self, address: int) -> Any:
        try:
            return self._entries[address]
        except KeyError:
            raise LogError(f"address {address} not written in {self.name}") from None

    def has(self, address: int) -> bool:
        return address in self._entries

    def trim(self, up_to: int) -> int:
        dropped = [address for address in self._entries if address < up_to]
        for address in dropped:
            del self._entries[address]
        return len(dropped)

    def seal(self, at_address: int) -> None:
        self.sealed_at = at_address

    def __len__(self) -> int:
        return len(self._entries)


def _seeded_mutation(name: str) -> bool:
    """True when the named calibration bug is switched on.

    ``REPRO_SCHEDCHECK_MUTATION=<name>`` re-introduces a *fixed* bug so
    the schedcheck explorer can prove it would have found it (the model
    checker's smoke-detector test). Read from the environment at call
    time — never cached — so a test can flip it per-run. Production code
    paths are unchanged while the variable is unset.
    """
    import os

    return os.environ.get("REPRO_SCHEDCHECK_MUTATION", "") == name


@track_fields("_cells")
class Sequencer:
    """The centralised address dispenser (cheap: one atomic counter).

    The counter lives in a racecheck-tracked cell so the PR 4 race this
    class had (unguarded read-increment in ``next_address`` racing the
    ``tail`` read) stays *visible* to the dynamic tools: under
    ``REPRO_SCHEDCHECK_MUTATION=sequencer-tail-race`` the lock is
    bypassed and schedcheck/racecheck must rediscover the bug.
    """

    def __init__(self) -> None:
        self._cells = {"next": 0}
        self._lock = threading.Lock()

    def next_address(self) -> int:
        if _seeded_mutation("sequencer-tail-race"):
            # the PR 4 bug, verbatim: check-then-act without the lock —
            # two appenders can be handed the same address
            address = self._cells["next"]  # repro: allow(RA109) — the seeded bug itself
            self._cells["next"] = address + 1  # repro: allow(RA103) — the seeded bug itself
            return address
        with self._lock:
            address = self._cells["next"]
            self._cells["next"] = address + 1
            return address

    @property
    def tail(self) -> int:
        """The next address to be issued (== log length). Read under the
        dispenser's lock — the unguarded read racing ``next_address`` is
        the check-then-act shape RA109 flags."""
        if _seeded_mutation("sequencer-tail-race"):
            return self._cells["next"]  # repro: allow(RA109) — the seeded bug itself
        with self._lock:
            return self._cells["next"]


StoreFactory = Callable[[str], Any]


class SharedLog:
    """A striped, replicated, totally-ordered shared log."""

    def __init__(
        self,
        stripes: int = 2,
        replication: int = 2,
        store_factory: StoreFactory | None = None,
    ) -> None:
        if stripes < 1 or replication < 1:
            raise LogError("stripes and replication must be >= 1")
        factory = store_factory or MemorySegmentStore
        self.stripes = stripes
        self.replication = replication
        self.sequencer = Sequencer()
        #: optional fault injector (repro.chaos); consulted before appends
        self.chaos: Any = None
        #: optional membership FencingGuard — the log-level epoch check
        #: below the broker: a zombie appending directly to a leased
        #: partition's stream is fenced even if it bypasses the broker
        self.fencing: Any = None
        #: bumped by every seal-and-reopen reconfiguration
        self.epoch = 0
        #: serialises replica writes and maintenance (trim/seal); the
        #: sequencer keeps its own lock and is never held inside this one
        self._lock = threading.Lock()
        self._segments: list[list[Any]] = [
            [factory(f"stripe{s}_replica{r}") for r in range(replication)]
            for s in range(stripes)
        ]
        self.trimmed_to = 0
        self.appends = 0

    # -- write path ---------------------------------------------------------------

    def append(self, payload: Any, fence: Any = None) -> int:
        """Token from the sequencer, then replicate to the stripe; returns
        the global address.

        The seal check runs *before* the sequencer hands out a token:
        an append rejected by a fenced segment must not burn an address
        (the hole would stall every replica's catch-up stream). A seal
        landing between the check and the write still surfaces as
        :class:`LogSealedError`; :meth:`reconfigure` fills any hole that
        race leaves behind.

        The ownership-lease check (``fence``, validated by the installed
        membership guard) runs first of all, mirroring the seal check's
        reject-before-address discipline: a stale-epoch payload never
        burns a log address either.
        """
        if self.fencing is not None:
            self.fencing.check_append(payload, fence)
        if self.chaos is not None:
            # may raise LogStallError, or seal the log and raise
            # LogSealedError — both before an address is issued
            self.chaos.on_log_append(self)
        with self._lock:
            if self._sealed_locked():
                raise LogSealedError(
                    f"log sealed (epoch {self.epoch}); reconfigure() to reopen"
                )
        address = self.sequencer.next_address()
        with self._lock:
            self._write_locked(address, payload)
            self.appends += 1
        obs.count("soe.shared_log.appends")
        return address

    def _sealed_locked(self) -> bool:
        """Any segment fenced? Caller holds ``self._lock``."""
        return any(
            replica.sealed_at is not None
            for stripe in self._segments
            for replica in stripe
        )

    def _write_locked(self, address: int, payload: Any) -> None:
        """Replicate one entry to its stripe. Caller holds ``self._lock``."""
        for replica in self._segments[address % self.stripes]:
            replica.write(address, payload)

    def fill(self, address: int) -> None:
        """Patch a hole (an address issued but never written)."""
        with self._lock:
            if self._segments[address % self.stripes][0].has(address):
                raise LogError(f"address {address} is not a hole")
            self._write_locked(address, HOLE)
        obs.count("soe.shared_log.holes_filled")

    # -- read path ------------------------------------------------------------------

    @property
    def tail(self) -> int:
        return self.sequencer.tail

    def is_written(self, address: int) -> bool:
        # the read side takes the same lock the write side holds — an
        # unguarded `.has()` would race a concurrent append's `.write()`
        # (found by repro.analysis.racecheck on the segment entry maps)
        with self._lock:
            return self._segments[address % self.stripes][0].has(address)

    def read(self, address: int) -> Any:
        """Read one address from the stripe's first live replica."""
        if address < self.trimmed_to:
            raise LogError(f"address {address} trimmed (trim point {self.trimmed_to})")
        if not 0 <= address < self.tail:
            raise LogError(f"address {address} beyond tail {self.tail}")
        errors: list[str] = []
        with self._lock:
            for replica in self._segments[address % self.stripes]:
                try:
                    return replica.read(address)
                except LogError as exc:
                    errors.append(str(exc))
        raise LogError(f"address {address}: all replicas failed: {errors}")

    def read_from(self, address: int, limit: int | None = None) -> Iterator[tuple[int, Any]]:
        """Stream (address, payload) from ``address`` to the tail, skipping
        filled holes. Unwritten addresses stop the stream (a reader must
        wait or fill)."""
        count = 0
        cursor = max(address, self.trimmed_to)
        while cursor < self.tail:
            if limit is not None and count >= limit:
                return
            if not self.is_written(cursor):
                return
            payload = self.read(cursor)
            if payload is not HOLE and payload != HOLE:
                yield cursor, payload
                count += 1
            cursor += 1

    # -- maintenance -------------------------------------------------------------------

    def trim(self, up_to: int) -> int:
        """Drop every address below ``up_to``; returns entries dropped."""
        if up_to > self.tail:
            raise LogError("cannot trim beyond the tail")
        dropped = 0
        with self._lock:
            for stripe in self._segments:
                for replica in stripe:
                    dropped += replica.trim(up_to)
            self.trimmed_to = max(self.trimmed_to, up_to)
        obs.count("soe.shared_log.entries_trimmed", dropped)
        return dropped

    def seal(self) -> int:
        """Fence all segments at the current tail (reconfiguration step);
        returns the seal point."""
        tail = self.tail
        with self._lock:
            for stripe in self._segments:
                for replica in stripe:
                    replica.seal(tail)
        return tail

    def reconfigure(self) -> int:
        """Seal-and-reopen recovery (the CORFU reconfiguration step the
        transaction broker drives on transaction-service failover): fill
        any hole below the tail so catch-up readers cannot stall on it,
        lift every fence, and bump the epoch. Returns the new epoch."""
        tail = self.tail
        with self._lock:
            for stripe in self._segments:
                for replica in stripe:
                    replica.sealed_at = None
            for address in range(self.trimmed_to, tail):
                if not self._segments[address % self.stripes][0].has(address):
                    self._write_locked(address, HOLE)
        self.epoch += 1
        obs.count("soe.shared_log.reconfigurations")
        return self.epoch

    def stripe_lengths(self) -> list[int]:
        """Entries per stripe (first replica) — balance diagnostics."""
        return [len(stripe[0]) for stripe in self._segments]
