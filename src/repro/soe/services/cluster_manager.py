"""v2clustermgr + v2stats: supervision, statistics, rebalancing (§IV.B).

"The overall supervision and configuration of the cluster is done by a
cluster management service. This service can dynamically start and stop
other query processing services as well as orchestrate data movement. It
can access statistical information about the current cluster usage in
order to identify hotspots or to monitor performance goals."

**Role in the query path:** none on the hot path — v2stats observes it.
The paper's Figure 3 draws v2stats as a first-class service; here it is
the consumer of the :mod:`repro.obs` metrics registry: every instrumented
SOE service (coordinator plans, query-service tasks, broker commits,
shared-log appends) publishes ``soe.*`` counters and latency histograms,
and :meth:`ClusterStatisticsService.snapshot` folds them into the
supervision view used for hotspot detection and rebalancing decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro import obs
from repro.errors import ClusterError
from repro.soe.cluster import SimulatedCluster
from repro.soe.replication import DataNode
from repro.soe.services.catalog_service import CatalogService
from repro.soe.services.discovery import DiscoveryService
from repro.soe.services.query_service import QueryService


@dataclass
class ClusterStatisticsService:
    """v2stats: per-node usage counters."""

    query_services: dict[str, QueryService] = field(default_factory=dict)
    #: when set, node_load()/hotspots() skip dead nodes — a crashed node's
    #: counters are unreachable in a real landscape, and folding its frozen
    #: load into the mean poisons hotspot detection
    cluster: SimulatedCluster | None = None
    #: per-node counter values at the last window_load() call
    _window_marks: dict[str, int] = field(default_factory=dict, repr=False)

    def register(self, service: QueryService) -> None:
        self.query_services[service.node_id] = service

    def _dead(self, node_id: str) -> bool:
        if self.cluster is None or node_id not in self.cluster.nodes:
            return False
        return not self.cluster.nodes[node_id].alive

    def node_load(self) -> dict[str, int]:
        """Rows processed per live node since start."""
        loads: dict[str, int] = {}
        for node_id, service in self.query_services.items():
            if self._dead(node_id):
                obs.count("soe.stats.dead_node_skips")
                continue
            loads[node_id] = service.rows_processed
        return loads

    def window_load(self) -> dict[str, int]:
        """Rows processed per live node *since the previous call* — the
        windowed view the auto-rebalancer steers by, so a node that was
        hot an hour ago but is balanced now does not keep shedding
        partitions off its historical counters."""
        loads = self.node_load()
        delta = {
            node_id: load - self._window_marks.get(node_id, 0)
            for node_id, load in loads.items()
        }
        self._window_marks.update(loads)
        return delta

    def hotspots(self, factor: float = 2.0, *, window: bool = False) -> list[str]:
        """Live nodes whose load exceeds ``factor`` × mean live load
        (dead nodes drop out via :meth:`node_load`, so they can neither
        be hotspots nor drag the mean down). With ``window`` the
        comparison uses :meth:`window_load` deltas instead of the
        cumulative counters."""
        loads = self.window_load() if window else self.node_load()
        if not loads:
            return []
        mean = sum(loads.values()) / len(loads)
        if mean == 0:
            return []
        return sorted(
            node_id for node_id, load in loads.items() if load > factor * mean
        )

    def snapshot(self) -> dict[str, Any]:
        """The v2stats view: per-node counters plus the ``soe.*`` metrics
        published by the instrumented services (empty until
        :func:`repro.obs.enable` installs collectors)."""
        return {
            "node_load": self.node_load(),
            "tasks": {
                node_id: service.tasks_executed
                for node_id, service in self.query_services.items()
            },
            "metrics": obs.metrics_dump(prefix="soe."),
        }


@dataclass
class ClusterManager:
    """v2clustermgr: start/stop services and orchestrate data movement."""

    cluster: SimulatedCluster
    catalog: CatalogService
    discovery: DiscoveryService
    stats: ClusterStatisticsService = field(default_factory=ClusterStatisticsService)

    def start_service(self, node_id: str, service_kind: str, service: Any) -> None:
        """Host a service on a node and announce it."""
        node = self.cluster.node(node_id)
        node.host(service_kind, service)
        self.discovery.announce(service_kind, node_id)
        if isinstance(service, QueryService):
            self.stats.register(service)

    def stop_service(self, node_id: str, service_kind: str) -> None:
        node = self.cluster.node(node_id)
        if service_kind not in node.services:
            raise ClusterError(f"node {node_id} hosts no {service_kind!r}")
        del node.services[service_kind]
        self.discovery.withdraw(service_kind, node_id)

    def move_partition(
        self,
        table: str,
        partition_id: int,
        source_node: str,
        target_node: str,
    ) -> float:
        """Ship one prepackaged partition between nodes; returns the
        simulated transfer seconds (this is the "fast distribution of the
        data when scaling out" path — the partition travels as one
        payload).

        This is the *offline fast path*: one snapshot, one transfer, one
        flip, no catch-up or drain — correct only while no writes race
        the move. The crash-safe online protocol (queries and log-applied
        writes keep running) is :class:`repro.soe.movement.PartitionMover`.
        The flip goes through the locked ownership API
        (:meth:`DataNode.transfer_ownership`) and the catalog's
        single-transaction :meth:`CatalogService.swap_placement` —
        install-before-discard, so a failure at any point (a dropped
        transfer raises before anything mutates) never loses the
        partition or leaves it owner-less.
        """
        if source_node == target_node:
            raise ClusterError(
                f"cannot move {table}#{partition_id} onto its own host"
            )
        source = self.cluster.node(source_node).service("v2lqp")
        target = self.cluster.node(target_node).service("v2lqp")
        donor: DataNode = source.data_node
        if not donor.store.has_partition(table, partition_id):
            raise ClusterError(
                f"{source_node} does not host {table}#{partition_id}"
            )
        clone, partition_lsn = donor.snapshot_partition(table, partition_id)
        seconds = self.cluster.transfer(
            source_node, target_node, clone.size_bytes()
        )
        DataNode.transfer_ownership(
            donor,
            target.data_node,
            table,
            clone,
            partition_lsn=partition_lsn,
            commit=lambda: self.catalog.swap_placement(
                table, partition_id, source_node, target_node
            ),
        )
        obs.count("soe.movement.offline_moves")
        return seconds

    def rebalance(self, table: str) -> list[tuple[int, str, str]]:
        """Greedy move partitions from the most- to the least-loaded node.

        Deterministic: load ties break on node id, and the moved
        partition is always the lowest-numbered one on the donor.
        Failure-aware: a failed move leaves the bookkeeping untouched
        (``move_partition`` mutates nothing on failure), is counted, and
        the (partition, donor, target) lane is excluded from further
        attempts — no infinite loop against a dead node, no stale
        ``count_per_node``. Returns the moves performed as
        (partition id, source, target).
        """
        placement = self.catalog.placement_of(table)
        count_per_node: dict[str, list[int]] = {}
        for partition_id, nodes in placement.items():
            count_per_node.setdefault(nodes[0], []).append(partition_id)
        for node_id in self.discovery.locate("v2lqp"):
            count_per_node.setdefault(node_id, [])
        for partition_ids in count_per_node.values():
            partition_ids.sort()
        moves: list[tuple[int, str, str]] = []
        failed: set[tuple[int, str, str]] = set()
        while True:
            live_targets = [
                node_id
                for node_id in count_per_node
                if self.cluster.node(node_id).alive
            ]
            if not live_targets:
                break
            most = min(
                count_per_node, key=lambda n: (-len(count_per_node[n]), n)
            )
            least = min(
                live_targets, key=lambda n: (len(count_per_node[n]), n)
            )
            if len(count_per_node[most]) - len(count_per_node[least]) <= 1:
                break
            candidates = [
                partition_id
                for partition_id in count_per_node[most]
                if (partition_id, most, least) not in failed
            ]
            if not candidates:
                break
            partition_id = candidates[0]
            try:
                self.move_partition(table, partition_id, most, least)
            except ClusterError:
                obs.count("soe.rebalance.failed_moves")
                failed.add((partition_id, most, least))
                continue
            count_per_node[most].remove(partition_id)
            count_per_node[least].append(partition_id)
            moves.append((partition_id, most, least))
        return moves
