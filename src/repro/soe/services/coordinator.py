"""v2dqp: the distributed query coordinator (§IV.B, Figure 3).

**Role in the query path:** the SOE entry point for distributed reads —
a client's aggregate/join query arrives here, becomes a task DAG, and
fans out to the v2lqp query services before partial results merge back.

Translates a query into a task DAG (see :mod:`repro.soe.tasks`), dispatches
tasks to the query services hosting the partitions, charges every
cross-node result transfer to the cluster's network model, and merges the
partial results. "These plans can lead to strong speedup results compared
to single machine execution ... if the plans are specifically tailored for
a clustered execution in combination with efficient communication
algorithms" [13] — hence the three join strategies (broadcast,
repartition, co-located) whose communication volumes benchmark E7
compares.

**Observability:** every distributed plan runs inside
:meth:`Coordinator._plan`, the single place where ``PlanCost.wall_seconds``
is measured (via :func:`repro.obs.timed`) and where per-strategy request
counters and latency histograms feed v2stats — wall-time accounting
cannot drift between the aggregate and the three join code paths.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro import obs
from repro.errors import (
    CoordinationError,
    DeadlineExceededError,
    NodeUnavailableError,
    RetryableError,
    TransferDroppedError,
)
from repro.soe.cluster import SimulatedCluster
from repro.soe.codegen import finalize_groups, merge_group_states
from repro.soe.partitions import route_row
from repro.soe.services.catalog_service import CatalogService
from repro.soe.services.query_service import QueryService
from repro.soe.services.transaction_broker import TransactionBroker
from repro.soe.tasks import AggregateSpec, Filter, TaskDag
from repro.util.retry import RetryPolicy, SimulatedClock


@dataclass(frozen=True)
class AggregateQuery:
    """Scan + filter + group-by aggregation over one SOE table."""

    table: str
    group_by: tuple[str, ...] = ()
    aggregates: tuple[AggregateSpec, ...] = ()
    filters: tuple[Filter, ...] = ()
    consistency: str = "eventual"  # "eventual" | "strong"


@dataclass(frozen=True)
class JoinQuery:
    """Fact ⋈ dim with aggregation grouped by a dim column."""

    fact_table: str
    dim_table: str
    fact_key: str
    dim_key: str
    group_column: str            # on the dim table
    aggregates: tuple[AggregateSpec, ...]
    strategy: str = "auto"       # auto | broadcast | repartition | colocated
    consistency: str = "eventual"


@dataclass
class PlanCost:
    """What a distributed plan cost."""

    bytes_shipped: int = 0
    messages: int = 0
    simulated_network_seconds: float = 0.0
    wall_seconds: float = 0.0
    tasks: int = 0
    strategy: str = ""
    #: transient-failure recoveries charged to this plan (resends + re-runs)
    retries: int = 0
    #: partition reads served by a replica because the primary was down
    failovers: int = 0
    #: True when any partition was served by a replica that still lagged
    #: the log (within the coordinator's staleness bound)
    degraded: bool = False
    #: how many times the plan was re-optimized mid-query — strategy-body
    #: re-plans against fresh cluster state (mirrors the SQL path's
    #: ``QueryResult.reoptimizations``; see docs/OPTIMIZER.md)
    reoptimizations: int = 0

    def as_dict(self) -> dict[str, float | str]:
        return {
            "bytes_shipped": float(self.bytes_shipped),
            "messages": float(self.messages),
            "simulated_network_seconds": self.simulated_network_seconds,
            "wall_seconds": self.wall_seconds,
            "tasks": float(self.tasks),
            "strategy": self.strategy,
            "retries": float(self.retries),
            "failovers": float(self.failovers),
            "degraded": float(self.degraded),
            "reoptimizations": float(self.reoptimizations),
        }


@dataclass
class Coordinator:
    """The v2dqp service instance.

    **Failure awareness:** every strategy body runs under
    :meth:`_recover` — a transient failure (dead node, dropped transfer,
    chaos crash) triggers a bounded re-plan-and-retry with exponential
    backoff charged to the *simulated* clock. Re-planning recomputes
    :meth:`_assignments` against current liveness, which is how a
    partition read fails over from a dead primary to a live replica
    (within ``staleness_bound`` committed transactions of the log tail;
    a stale-but-bounded serve marks the plan ``degraded``). A per-query
    ``deadline_seconds`` budget on the simulated clock aborts hopeless
    queries with :class:`~repro.errors.DeadlineExceededError`. Counters:
    ``soe.coordinator.retries`` / ``failovers`` / ``degraded_reads`` /
    ``failover_catch_ups`` / ``deadline_aborts``.
    """

    node_id: str
    cluster: SimulatedCluster
    catalog: CatalogService
    broker: TransactionBroker
    query_services: dict[str, QueryService] = field(default_factory=dict)
    retry_policy: RetryPolicy = field(default_factory=RetryPolicy)
    clock: SimulatedClock = field(default_factory=SimulatedClock)
    #: replica failover for partition reads (the benchmark's control knob)
    failover: bool = True
    #: max committed-but-unapplied transactions a failover replica may
    #: serve with; beyond it the replica is caught up first
    staleness_bound: int = 0
    #: per-query budget on the simulated clock (None = no deadline)
    deadline_seconds: float | None = None
    #: optional repro.qos CircuitBreaker guarding cluster transfers; once
    #: open, transfers fail fast with the non-retryable CircuitOpenError
    #: instead of paying the resend schedule against a down network
    transfer_breaker: Any = None
    _deadline_at: float | None = field(default=None, init=False, repr=False)

    def register_query_service(self, service: QueryService) -> None:
        self.query_services[service.node_id] = service

    # -- helpers -------------------------------------------------------------------

    @contextmanager
    def _plan(self, strategy: str) -> Iterator[PlanCost]:
        """One distributed plan execution: the single wall-clock.

        Yields the :class:`PlanCost` the strategy fills in; on exit the
        measured wall time lands on ``cost.wall_seconds`` and — when
        observability is enabled — on the ``soe.coordinator.plan_seconds``
        histogram and the ``soe.coordinator.plans`` counter (per strategy),
        the numbers v2stats reads.
        """
        cost = PlanCost(strategy=strategy)
        self._deadline_at = (
            self.clock.now + self.deadline_seconds
            if self.deadline_seconds is not None
            else None
        )
        with obs.timed("soe.coordinator.plan_seconds", strategy=strategy) as timer:
            yield cost
        cost.wall_seconds = timer.seconds
        obs.count("soe.coordinator.plans", strategy=strategy)
        obs.count("soe.coordinator.bytes_shipped", cost.bytes_shipped, strategy=strategy)
        obs.count("soe.coordinator.tasks", cost.tasks, strategy=strategy)

    def _check_deadline(self) -> None:
        """Abort the query once the simulated clock passes its budget.
        :class:`DeadlineExceededError` is a plain ``CoordinationError`` —
        deliberately *not* retryable, so it punches through recovery."""
        if self._deadline_at is not None and self.clock.now > self._deadline_at:
            obs.count("soe.coordinator.deadline_aborts")
            raise DeadlineExceededError(
                f"query exceeded its {self.deadline_seconds}s deadline "
                f"(simulated clock {self.clock.now:.6f})"
            )

    def _charge(self, seconds: float) -> None:
        """Charge simulated seconds to the query clock, then enforce the
        deadline — network time and backoff spend the same budget."""
        self.clock.advance(seconds)
        self._check_deadline()

    def _recover(self, cost: PlanCost, body: Any) -> Any:
        """Plan-level recovery: re-run the whole strategy body on any
        transient failure. Re-running re-plans — :meth:`_assignments`
        recomputes against *current* liveness, so the retry lands on live
        replicas instead of the node that just died."""
        last: RetryableError | None = None
        for attempt, delay in self.retry_policy.schedule():
            if attempt:
                self._charge(delay)
                cost.retries += 1
                # each retry re-plans the strategy body against current
                # liveness: a mid-query re-optimization in PlanCost terms
                cost.reoptimizations += 1
                obs.count("soe.coordinator.retries")
            try:
                return body()
            except RetryableError as exc:
                last = exc
        assert last is not None
        raise last

    def _transfer(
        self, source: str, target: str, payload_bytes: int, cost: PlanCost
    ) -> float:
        """One charged transfer with bounded resend: a dropped message
        (chaos) is resent under the retry policy rather than failing the
        whole plan; every resend pays backoff on the simulated clock."""
        last: TransferDroppedError | None = None
        for attempt, delay in self.retry_policy.schedule():
            if attempt:
                self._charge(delay)
                cost.retries += 1
                obs.count("soe.coordinator.retries")
            try:
                if self.transfer_breaker is not None:
                    seconds = self.transfer_breaker.call(
                        lambda: self.cluster.transfer(source, target, payload_bytes)
                    )
                else:
                    seconds = self.cluster.transfer(source, target, payload_bytes)
            except TransferDroppedError as exc:
                last = exc
                continue
            if source != target:
                cost.bytes_shipped += payload_bytes
                cost.messages += 1
                cost.simulated_network_seconds += seconds
                self._charge(seconds)
            return seconds
        assert last is not None
        raise last

    def _service_for(self, node_id: str) -> QueryService:
        """Resolve the v2lqp service on a node through the availability
        seam (liveness gate; scheduled chaos crashes fire here)."""
        self.cluster.node(node_id).check_available("v2lqp")
        service = self.query_services.get(node_id)
        if service is None:
            raise CoordinationError(f"no query service on {node_id}")
        return service

    def _assignments(
        self, table: str, cost: PlanCost | None = None
    ) -> dict[str, list[int]]:
        """node id → partition ids it will scan (one replica per partition,
        spread across hosts; dead primaries fail over when enabled)."""
        placement = self.catalog.placement_of(table)
        assignments: dict[str, list[int]] = {}
        for partition_id, nodes in placement.items():
            chosen = self._choose_host(table, partition_id, nodes, cost)
            assignments.setdefault(chosen, []).append(partition_id)
        return assignments

    def _choose_host(
        self,
        table: str,
        partition_id: int,
        replicas: list[str],
        cost: PlanCost | None,
    ) -> str:
        """Pick the serving replica for one partition. The deterministic
        primary is ``replicas[partition_id % len(replicas)]``; a dead
        primary fails over to a live replica — caught up first when it
        lags more than ``staleness_bound``, marked degraded otherwise."""
        primary = replicas[partition_id % len(replicas)]
        if self.cluster.node(primary).alive:
            return primary
        if not self.failover:
            raise NodeUnavailableError(
                primary,
                f"primary {primary} of {table}#{partition_id} is down "
                "and failover is disabled",
            )
        alive = [n for n in replicas if self.cluster.node(n).alive]
        if not alive:
            raise CoordinationError(f"no live replica of {table}#{partition_id}")
        fallback = alive[partition_id % len(alive)]
        obs.count("soe.coordinator.failovers")
        if cost is not None:
            cost.failovers += 1
        service = self.query_services.get(fallback)
        if service is not None:
            staleness = service.data_node.staleness()
            if staleness > self.staleness_bound:
                service.data_node.catch_up()
                obs.count("soe.coordinator.failover_catch_ups")
            elif staleness > 0:
                if cost is not None:
                    cost.degraded = True
                obs.count("soe.coordinator.degraded_reads")
        return fallback

    def _ensure_fresh(self, tables: list[str], consistency: str) -> None:
        """Strong consistency: ask the broker for "additional updates to be
        considered" — force OLAP nodes serving the query to catch up."""
        if consistency != "strong":
            return
        target = self.broker.current_lsn
        involved: set[str] = set()
        for table in tables:
            involved.update(self._assignments(table))
        for node_id in involved:
            service = self.query_services[node_id]
            if service.data_node.mode == "olap":
                service.data_node.catch_up(target)

    def _run_dag(self, dag: TaskDag, cost: PlanCost) -> dict[int, Any]:
        results: dict[int, Any] = {}
        for task in dag.topological_order():
            inputs: dict[int, Any] = {}
            for input_id in task.inputs:
                producer = dag.tasks[input_id]
                result = results[input_id]
                payload = QueryService.result_bytes(result)
                self._transfer(producer.node_id, task.node_id, payload, cost)
                inputs[input_id] = result
            if task.kind in ("merge_aggregate", "collect"):
                results[task.task_id] = [inputs[input_id] for input_id in task.inputs]
            else:
                results[task.task_id] = self._service_for(task.node_id).execute(
                    task, inputs
                )
            cost.tasks += 1
        return results

    # -- aggregate queries -----------------------------------------------------------

    def run_aggregate(self, query: AggregateQuery) -> tuple[list[list[Any]], PlanCost]:
        """Partial aggregation at the data, merge at the coordinator."""
        with self._plan("partial-aggregate") as cost:
            rows = self._recover(cost, lambda: self._aggregate_body(query, cost))
        return rows, cost

    def _aggregate_body(self, query: AggregateQuery, cost: PlanCost) -> list[list[Any]]:
        self._ensure_fresh([query.table], query.consistency)
        dag = TaskDag()
        partial_ids = []
        for node_id, partition_ids in self._assignments(query.table, cost).items():
            task = dag.add(
                "partial_aggregate",
                node_id,
                {
                    "table": query.table,
                    "partitions": partition_ids,
                    "filters": list(query.filters),
                    "group_by": list(query.group_by),
                    "aggregates": list(query.aggregates),
                },
            )
            partial_ids.append(task.task_id)
        merge = dag.add("merge_aggregate", self.node_id, {}, partial_ids)
        results = self._run_dag(dag, cost)
        merged = merge_group_states(results[merge.task_id], list(query.aggregates))
        return finalize_groups(merged, list(query.aggregates))

    # -- join queries ---------------------------------------------------------------------

    def run_join(self, query: JoinQuery) -> tuple[list[list[Any]], PlanCost]:
        strategy = query.strategy
        if strategy == "auto":
            strategy = self._choose_join_strategy(query)
        bodies = {
            "broadcast": self._join_broadcast_body,
            "repartition": self._join_repartition_body,
            "colocated": self._join_colocated_body,
        }
        body = bodies.get(strategy)
        if body is None:
            raise CoordinationError(f"unknown join strategy {strategy!r}")
        with self._plan(strategy) as cost:

            def attempt() -> list[list[Any]]:
                self._ensure_fresh(
                    [query.fact_table, query.dim_table], query.consistency
                )
                return body(query, cost)

            rows = self._recover(cost, attempt)
        return rows, cost

    def _choose_join_strategy(self, query: JoinQuery) -> str:
        fact_meta = self.catalog.table(query.fact_table)
        dim_meta = self.catalog.table(query.dim_table)
        co_partitioned = (
            fact_meta.partition_count == dim_meta.partition_count
            and fact_meta.key_columns == [query.fact_key]
            and dim_meta.key_columns == [query.dim_key]
        )
        if co_partitioned and self._placement_aligned(query):
            return "colocated"
        dim_rows = self._table_rows(query.dim_table)
        fact_rows = self._table_rows(query.fact_table)
        return "broadcast" if dim_rows * 10 <= fact_rows else "repartition"

    def _placement_aligned(self, query: JoinQuery) -> bool:
        fact_nodes = self.catalog.placement_of(query.fact_table)
        dim_nodes = self.catalog.placement_of(query.dim_table)
        return all(
            set(fact_nodes[pid]) & set(dim_nodes.get(pid, []))
            for pid in fact_nodes
        )

    def _table_rows(self, table: str) -> int:
        total = 0
        for node_id, partition_ids in self._assignments(table).items():
            store = self.query_services[node_id].data_node.store
            total += sum(len(store.partition(table, pid)) for pid in partition_ids)
        return total

    def _dim_payload_columns(self, query: JoinQuery) -> list[str]:
        return [query.group_column]

    def _join_broadcast_body(self, query: JoinQuery, cost: PlanCost) -> list[list[Any]]:
        """Gather the dim side once, broadcast it to every fact node."""
        dag = TaskDag()
        # 1. hash-build tasks on the dim hosts
        build_ids = []
        for node_id, partition_ids in self._assignments(query.dim_table, cost).items():
            task = dag.add(
                "build_hash",
                node_id,
                {
                    "table": query.dim_table,
                    "partitions": partition_ids,
                    "key_column": query.dim_key,
                    "columns": self._dim_payload_columns(query),
                },
            )
            build_ids.append(task.task_id)
        # 2. gather at coordinator (transfers charged by the DAG runner)
        gather = dag.add("collect", self.node_id, {}, build_ids)
        results = self._run_dag(dag, cost)
        full_hash: dict[Any, list[tuple]] = {}
        for part in results[gather.task_id]:
            for key, rows in part.items():
                full_hash.setdefault(key, []).extend(rows)

        # 3. broadcast + probe on each fact node
        dag2 = TaskDag()
        probe_ids = []
        hash_bytes = QueryService.result_bytes(full_hash)
        for node_id, partition_ids in self._assignments(query.fact_table, cost).items():
            self._transfer(self.node_id, node_id, hash_bytes, cost)
            virtual_input = dag2.add("collect", node_id, {})
            probe = dag2.add(
                "join_partial",
                node_id,
                {
                    "table": query.fact_table,
                    "partitions": partition_ids,
                    "fact_key": query.fact_key,
                    "group_from_dim": 0,
                    "aggregates": list(query.aggregates),
                },
                [virtual_input.task_id],
            )
            probe_ids.append(probe.task_id)
        # pre-seed virtual inputs with the broadcast hash (no extra charge)
        results2: dict[int, Any] = {}
        for task in dag2.topological_order():
            if task.kind == "collect" and not task.inputs:
                results2[task.task_id] = full_hash
                continue
            inputs = {input_id: results2[input_id] for input_id in task.inputs}
            results2[task.task_id] = self._service_for(task.node_id).execute(
                task, inputs
            )
            cost.tasks += 1
        partials = [results2[task_id] for task_id in probe_ids]
        for task_id in probe_ids:
            producer = dag2.tasks[task_id]
            payload = QueryService.result_bytes(results2[task_id])
            self._transfer(producer.node_id, self.node_id, payload, cost)
        merged = merge_group_states(partials, list(query.aggregates))
        return finalize_groups(merged, list(query.aggregates))

    def _join_repartition_body(self, query: JoinQuery, cost: PlanCost) -> list[list[Any]]:
        """Ship both sides hashed on the join key to worker nodes."""
        if self.failover:
            workers = [
                node_id
                for node_id in sorted(self.query_services)
                if self.cluster.node(node_id).alive
            ]
        else:
            workers = sorted(self.query_services)
        if not workers:
            raise CoordinationError("no live workers for a repartition join")
        worker_count = len(workers)

        def shuffle(table: str, key_column: str, columns: list[str]) -> list[dict[Any, list[tuple]]]:
            dag = TaskDag()
            ship_ids = []
            for node_id, partition_ids in self._assignments(table, cost).items():
                task = dag.add(
                    "scan_ship",
                    node_id,
                    {"table": table, "partitions": partition_ids, "columns": columns},
                )
                ship_ids.append((task.task_id, node_id))
            results = self._run_dag(dag, cost)
            buckets: list[dict[Any, list[tuple]]] = [dict() for _ in range(worker_count)]
            key_position = columns.index(key_column)
            for task_id, source_node in ship_ids:
                rows = results[task_id]
                per_worker_rows: list[list[tuple]] = [[] for _ in range(worker_count)]
                for row in rows:
                    bucket = route_row(row, [key_position], worker_count)
                    per_worker_rows[bucket].append(row)
                for bucket, bucket_rows in enumerate(per_worker_rows):
                    if not bucket_rows:
                        continue
                    payload = sum(
                        sum(len(v) + 1 if isinstance(v, str) else 8 for v in row)
                        for row in bucket_rows
                    )
                    target_node = workers[bucket]
                    self._transfer(source_node, target_node, payload, cost)
                    for row in bucket_rows:
                        buckets[bucket].setdefault(row[key_position], []).append(row)
            return buckets

        agg_columns = [a.column for a in query.aggregates if a.column is not None]
        fact_columns = [query.fact_key] + agg_columns
        dim_columns = [query.dim_key, query.group_column]
        fact_buckets = shuffle(query.fact_table, query.fact_key, fact_columns)
        dim_buckets = shuffle(query.dim_table, query.dim_key, dim_columns)

        # local join + aggregate per worker bucket, merge at coordinator
        partials = []
        for bucket_index in range(worker_count):
            # availability seam: the bucket's worker must be reachable
            self._service_for(workers[bucket_index])
            groups: dict[tuple, list[Any]] = {}
            dim_bucket = dim_buckets[bucket_index]
            for key, fact_rows in fact_buckets[bucket_index].items():
                dim_rows = dim_bucket.get(key)
                if not dim_rows:
                    continue
                for dim_row in dim_rows:
                    group_key = (dim_row[1],)
                    for fact_row in fact_rows:
                        states = groups.get(group_key)
                        if states is None:
                            states = [
                                0 if a.op == "count" else [0.0, 0] if a.op == "avg" else None
                                for a in query.aggregates
                            ]
                            groups[group_key] = states
                        value_cursor = 1
                        for index, aggregate in enumerate(query.aggregates):
                            if aggregate.op == "count" and aggregate.column is None:
                                states[index] += 1
                                continue
                            value = fact_row[value_cursor]
                            value_cursor += 1
                            if value is None:
                                continue
                            if aggregate.op == "sum":
                                states[index] = value if states[index] is None else states[index] + value
                            elif aggregate.op == "count":
                                states[index] += 1
                            elif aggregate.op == "avg":
                                states[index][0] += value
                                states[index][1] += 1
                            elif aggregate.op == "min":
                                states[index] = value if states[index] is None or value < states[index] else states[index]
                            elif aggregate.op == "max":
                                states[index] = value if states[index] is None or value > states[index] else states[index]
            partials.append(groups)
            payload = QueryService.result_bytes(groups)
            self._transfer(workers[bucket_index], self.node_id, payload, cost)
        merged = merge_group_states(partials, list(query.aggregates))
        return finalize_groups(merged, list(query.aggregates))

    def _join_colocated_body(self, query: JoinQuery, cost: PlanCost) -> list[list[Any]]:
        """Both sides hash-partitioned on the join key with aligned
        placement: join entirely node-locally, ship only partial states."""
        fact_assign = self._assignments(query.fact_table, cost)
        dag = TaskDag()
        probe_ids = []
        for node_id, partition_ids in fact_assign.items():
            build = dag.add(
                "build_hash",
                node_id,
                {
                    "table": query.dim_table,
                    "partitions": partition_ids,
                    "key_column": query.dim_key,
                    "columns": self._dim_payload_columns(query),
                },
            )
            probe = dag.add(
                "join_partial",
                node_id,
                {
                    "table": query.fact_table,
                    "partitions": partition_ids,
                    "fact_key": query.fact_key,
                    "group_from_dim": 0,
                    "aggregates": list(query.aggregates),
                },
                [build.task_id],
            )
            probe_ids.append(probe.task_id)
        merge = dag.add("merge_aggregate", self.node_id, {}, probe_ids)
        results = self._run_dag(dag, cost)
        merged = merge_group_states(results[merge.task_id], list(query.aggregates))
        return finalize_groups(merged, list(query.aggregates))
