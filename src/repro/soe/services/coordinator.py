"""v2dqp: the distributed query coordinator (§IV.B, Figure 3).

**Role in the query path:** the SOE entry point for distributed reads —
a client's aggregate/join query arrives here, becomes a task DAG, and
fans out to the v2lqp query services before partial results merge back.

Translates a query into a task DAG (see :mod:`repro.soe.tasks`), dispatches
tasks to the query services hosting the partitions, charges every
cross-node result transfer to the cluster's network model, and merges the
partial results. "These plans can lead to strong speedup results compared
to single machine execution ... if the plans are specifically tailored for
a clustered execution in combination with efficient communication
algorithms" [13] — hence the three join strategies (broadcast,
repartition, co-located) whose communication volumes benchmark E7
compares.

**Observability:** every distributed plan runs inside
:meth:`Coordinator._plan`, the single place where ``PlanCost.wall_seconds``
is measured (via :func:`repro.obs.timed`) and where per-strategy request
counters and latency histograms feed v2stats — wall-time accounting
cannot drift between the aggregate and the three join code paths.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro import obs
from repro.errors import CoordinationError
from repro.soe.cluster import SimulatedCluster
from repro.soe.codegen import finalize_groups, merge_group_states
from repro.soe.partitions import route_row
from repro.soe.services.catalog_service import CatalogService
from repro.soe.services.query_service import QueryService
from repro.soe.services.transaction_broker import TransactionBroker
from repro.soe.tasks import AggregateSpec, Filter, TaskDag


@dataclass(frozen=True)
class AggregateQuery:
    """Scan + filter + group-by aggregation over one SOE table."""

    table: str
    group_by: tuple[str, ...] = ()
    aggregates: tuple[AggregateSpec, ...] = ()
    filters: tuple[Filter, ...] = ()
    consistency: str = "eventual"  # "eventual" | "strong"


@dataclass(frozen=True)
class JoinQuery:
    """Fact ⋈ dim with aggregation grouped by a dim column."""

    fact_table: str
    dim_table: str
    fact_key: str
    dim_key: str
    group_column: str            # on the dim table
    aggregates: tuple[AggregateSpec, ...]
    strategy: str = "auto"       # auto | broadcast | repartition | colocated
    consistency: str = "eventual"


@dataclass
class PlanCost:
    """What a distributed plan cost."""

    bytes_shipped: int = 0
    messages: int = 0
    simulated_network_seconds: float = 0.0
    wall_seconds: float = 0.0
    tasks: int = 0
    strategy: str = ""

    def as_dict(self) -> dict[str, float | str]:
        return {
            "bytes_shipped": float(self.bytes_shipped),
            "messages": float(self.messages),
            "simulated_network_seconds": self.simulated_network_seconds,
            "wall_seconds": self.wall_seconds,
            "tasks": float(self.tasks),
            "strategy": self.strategy,
        }


@dataclass
class Coordinator:
    """The v2dqp service instance."""

    node_id: str
    cluster: SimulatedCluster
    catalog: CatalogService
    broker: TransactionBroker
    query_services: dict[str, QueryService] = field(default_factory=dict)

    def register_query_service(self, service: QueryService) -> None:
        self.query_services[service.node_id] = service

    # -- helpers -------------------------------------------------------------------

    @contextmanager
    def _plan(self, strategy: str) -> Iterator[PlanCost]:
        """One distributed plan execution: the single wall-clock.

        Yields the :class:`PlanCost` the strategy fills in; on exit the
        measured wall time lands on ``cost.wall_seconds`` and — when
        observability is enabled — on the ``soe.coordinator.plan_seconds``
        histogram and the ``soe.coordinator.plans`` counter (per strategy),
        the numbers v2stats reads.
        """
        cost = PlanCost(strategy=strategy)
        with obs.timed("soe.coordinator.plan_seconds", strategy=strategy) as timer:
            yield cost
        cost.wall_seconds = timer.seconds
        obs.count("soe.coordinator.plans", strategy=strategy)
        obs.count("soe.coordinator.bytes_shipped", cost.bytes_shipped, strategy=strategy)
        obs.count("soe.coordinator.tasks", cost.tasks, strategy=strategy)

    def _assignments(self, table: str) -> dict[str, list[int]]:
        """node id → partition ids it will scan (one replica per partition,
        spread across live hosts)."""
        placement = self.catalog.placement_of(table)
        assignments: dict[str, list[int]] = {}
        for partition_id, nodes in placement.items():
            alive = [n for n in nodes if self.cluster.node(n).alive]
            if not alive:
                raise CoordinationError(
                    f"no live replica of {table}#{partition_id}"
                )
            chosen = alive[partition_id % len(alive)]
            assignments.setdefault(chosen, []).append(partition_id)
        return assignments

    def _ensure_fresh(self, tables: list[str], consistency: str) -> None:
        """Strong consistency: ask the broker for "additional updates to be
        considered" — force OLAP nodes serving the query to catch up."""
        if consistency != "strong":
            return
        target = self.broker.current_lsn
        involved: set[str] = set()
        for table in tables:
            involved.update(self._assignments(table))
        for node_id in involved:
            service = self.query_services[node_id]
            if service.data_node.mode == "olap":
                service.data_node.catch_up(target)

    def _run_dag(self, dag: TaskDag, cost: PlanCost) -> dict[int, Any]:
        results: dict[int, Any] = {}
        for task in dag.topological_order():
            inputs: dict[int, Any] = {}
            for input_id in task.inputs:
                producer = dag.tasks[input_id]
                result = results[input_id]
                payload = QueryService.result_bytes(result)
                seconds = self.cluster.transfer(producer.node_id, task.node_id, payload)
                if producer.node_id != task.node_id:
                    cost.bytes_shipped += payload
                    cost.messages += 1
                    cost.simulated_network_seconds += seconds
                inputs[input_id] = result
            if task.kind in ("merge_aggregate", "collect"):
                results[task.task_id] = [inputs[input_id] for input_id in task.inputs]
            else:
                service = self.query_services.get(task.node_id)
                if service is None:
                    raise CoordinationError(f"no query service on {task.node_id}")
                results[task.task_id] = service.execute(task, inputs)
            cost.tasks += 1
        return results

    # -- aggregate queries -----------------------------------------------------------

    def run_aggregate(self, query: AggregateQuery) -> tuple[list[list[Any]], PlanCost]:
        """Partial aggregation at the data, merge at the coordinator."""
        with self._plan("partial-aggregate") as cost:
            self._ensure_fresh([query.table], query.consistency)
            dag = TaskDag()
            partial_ids = []
            for node_id, partition_ids in self._assignments(query.table).items():
                task = dag.add(
                    "partial_aggregate",
                    node_id,
                    {
                        "table": query.table,
                        "partitions": partition_ids,
                        "filters": list(query.filters),
                        "group_by": list(query.group_by),
                        "aggregates": list(query.aggregates),
                    },
                )
                partial_ids.append(task.task_id)
            merge = dag.add("merge_aggregate", self.node_id, {}, partial_ids)
            results = self._run_dag(dag, cost)
            merged = merge_group_states(results[merge.task_id], list(query.aggregates))
            rows = finalize_groups(merged, list(query.aggregates))
        return rows, cost

    # -- join queries ---------------------------------------------------------------------

    def run_join(self, query: JoinQuery) -> tuple[list[list[Any]], PlanCost]:
        strategy = query.strategy
        if strategy == "auto":
            strategy = self._choose_join_strategy(query)
        self._ensure_fresh([query.fact_table, query.dim_table], query.consistency)
        if strategy == "broadcast":
            return self._join_broadcast(query)
        if strategy == "repartition":
            return self._join_repartition(query)
        if strategy == "colocated":
            return self._join_colocated(query)
        raise CoordinationError(f"unknown join strategy {strategy!r}")

    def _choose_join_strategy(self, query: JoinQuery) -> str:
        fact_meta = self.catalog.table(query.fact_table)
        dim_meta = self.catalog.table(query.dim_table)
        co_partitioned = (
            fact_meta.partition_count == dim_meta.partition_count
            and fact_meta.key_columns == [query.fact_key]
            and dim_meta.key_columns == [query.dim_key]
        )
        if co_partitioned and self._placement_aligned(query):
            return "colocated"
        dim_rows = self._table_rows(query.dim_table)
        fact_rows = self._table_rows(query.fact_table)
        return "broadcast" if dim_rows * 10 <= fact_rows else "repartition"

    def _placement_aligned(self, query: JoinQuery) -> bool:
        fact_nodes = self.catalog.placement_of(query.fact_table)
        dim_nodes = self.catalog.placement_of(query.dim_table)
        return all(
            set(fact_nodes[pid]) & set(dim_nodes.get(pid, []))
            for pid in fact_nodes
        )

    def _table_rows(self, table: str) -> int:
        total = 0
        for node_id, partition_ids in self._assignments(table).items():
            store = self.query_services[node_id].data_node.store
            total += sum(len(store.partition(table, pid)) for pid in partition_ids)
        return total

    def _dim_payload_columns(self, query: JoinQuery) -> list[str]:
        return [query.group_column]

    def _join_broadcast(self, query: JoinQuery) -> tuple[list[list[Any]], PlanCost]:
        """Gather the dim side once, broadcast it to every fact node."""
        with self._plan("broadcast") as cost:
            rows = self._join_broadcast_body(query, cost)
        return rows, cost

    def _join_broadcast_body(self, query: JoinQuery, cost: PlanCost) -> list[list[Any]]:
        dag = TaskDag()
        # 1. hash-build tasks on the dim hosts
        build_ids = []
        for node_id, partition_ids in self._assignments(query.dim_table).items():
            task = dag.add(
                "build_hash",
                node_id,
                {
                    "table": query.dim_table,
                    "partitions": partition_ids,
                    "key_column": query.dim_key,
                    "columns": self._dim_payload_columns(query),
                },
            )
            build_ids.append(task.task_id)
        # 2. gather at coordinator (transfers charged by the DAG runner)
        gather = dag.add("collect", self.node_id, {}, build_ids)
        results = self._run_dag(dag, cost)
        full_hash: dict[Any, list[tuple]] = {}
        for part in results[gather.task_id]:
            for key, rows in part.items():
                full_hash.setdefault(key, []).extend(rows)

        # 3. broadcast + probe on each fact node
        dag2 = TaskDag()
        probe_ids = []
        hash_bytes = QueryService.result_bytes(full_hash)
        for node_id, partition_ids in self._assignments(query.fact_table).items():
            seconds = self.cluster.transfer(self.node_id, node_id, hash_bytes)
            if node_id != self.node_id:
                cost.bytes_shipped += hash_bytes
                cost.messages += 1
                cost.simulated_network_seconds += seconds
            virtual_input = dag2.add("collect", node_id, {})
            probe = dag2.add(
                "join_partial",
                node_id,
                {
                    "table": query.fact_table,
                    "partitions": partition_ids,
                    "fact_key": query.fact_key,
                    "group_from_dim": 0,
                    "aggregates": list(query.aggregates),
                },
                [virtual_input.task_id],
            )
            probe_ids.append(probe.task_id)
        # pre-seed virtual inputs with the broadcast hash (no extra charge)
        results2: dict[int, Any] = {}
        for task in dag2.topological_order():
            if task.kind == "collect" and not task.inputs:
                results2[task.task_id] = full_hash
                continue
            inputs = {input_id: results2[input_id] for input_id in task.inputs}
            service = self.query_services[task.node_id]
            results2[task.task_id] = service.execute(task, inputs)
            cost.tasks += 1
        partials = [results2[task_id] for task_id in probe_ids]
        for task_id in probe_ids:
            producer = dag2.tasks[task_id]
            payload = QueryService.result_bytes(results2[task_id])
            seconds = self.cluster.transfer(producer.node_id, self.node_id, payload)
            if producer.node_id != self.node_id:
                cost.bytes_shipped += payload
                cost.messages += 1
                cost.simulated_network_seconds += seconds
        merged = merge_group_states(partials, list(query.aggregates))
        return finalize_groups(merged, list(query.aggregates))

    def _join_repartition(self, query: JoinQuery) -> tuple[list[list[Any]], PlanCost]:
        """Ship both sides hashed on the join key to worker nodes."""
        with self._plan("repartition") as cost:
            rows = self._join_repartition_body(query, cost)
        return rows, cost

    def _join_repartition_body(self, query: JoinQuery, cost: PlanCost) -> list[list[Any]]:
        workers = sorted(self.query_services)
        worker_count = len(workers)

        def shuffle(table: str, key_column: str, columns: list[str]) -> list[dict[Any, list[tuple]]]:
            dag = TaskDag()
            ship_ids = []
            for node_id, partition_ids in self._assignments(table).items():
                task = dag.add(
                    "scan_ship",
                    node_id,
                    {"table": table, "partitions": partition_ids, "columns": columns},
                )
                ship_ids.append((task.task_id, node_id))
            results = self._run_dag(dag, cost)
            buckets: list[dict[Any, list[tuple]]] = [dict() for _ in range(worker_count)]
            key_position = columns.index(key_column)
            for task_id, source_node in ship_ids:
                rows = results[task_id]
                per_worker_rows: list[list[tuple]] = [[] for _ in range(worker_count)]
                for row in rows:
                    bucket = route_row(row, [key_position], worker_count)
                    per_worker_rows[bucket].append(row)
                for bucket, bucket_rows in enumerate(per_worker_rows):
                    if not bucket_rows:
                        continue
                    payload = sum(
                        sum(len(v) + 1 if isinstance(v, str) else 8 for v in row)
                        for row in bucket_rows
                    )
                    target_node = workers[bucket]
                    seconds = self.cluster.transfer(source_node, target_node, payload)
                    if source_node != target_node:
                        cost.bytes_shipped += payload
                        cost.messages += 1
                        cost.simulated_network_seconds += seconds
                    for row in bucket_rows:
                        buckets[bucket].setdefault(row[key_position], []).append(row)
            return buckets

        agg_columns = [a.column for a in query.aggregates if a.column is not None]
        fact_columns = [query.fact_key] + agg_columns
        dim_columns = [query.dim_key, query.group_column]
        fact_buckets = shuffle(query.fact_table, query.fact_key, fact_columns)
        dim_buckets = shuffle(query.dim_table, query.dim_key, dim_columns)

        # local join + aggregate per worker bucket, merge at coordinator
        partials = []
        for bucket_index in range(worker_count):
            groups: dict[tuple, list[Any]] = {}
            dim_bucket = dim_buckets[bucket_index]
            for key, fact_rows in fact_buckets[bucket_index].items():
                dim_rows = dim_bucket.get(key)
                if not dim_rows:
                    continue
                for dim_row in dim_rows:
                    group_key = (dim_row[1],)
                    for fact_row in fact_rows:
                        states = groups.get(group_key)
                        if states is None:
                            states = [
                                0 if a.op == "count" else [0.0, 0] if a.op == "avg" else None
                                for a in query.aggregates
                            ]
                            groups[group_key] = states
                        value_cursor = 1
                        for index, aggregate in enumerate(query.aggregates):
                            if aggregate.op == "count" and aggregate.column is None:
                                states[index] += 1
                                continue
                            value = fact_row[value_cursor]
                            value_cursor += 1
                            if value is None:
                                continue
                            if aggregate.op == "sum":
                                states[index] = value if states[index] is None else states[index] + value
                            elif aggregate.op == "count":
                                states[index] += 1
                            elif aggregate.op == "avg":
                                states[index][0] += value
                                states[index][1] += 1
                            elif aggregate.op == "min":
                                states[index] = value if states[index] is None or value < states[index] else states[index]
                            elif aggregate.op == "max":
                                states[index] = value if states[index] is None or value > states[index] else states[index]
            partials.append(groups)
            payload = QueryService.result_bytes(groups)
            seconds = self.cluster.transfer(workers[bucket_index], self.node_id, payload)
            if workers[bucket_index] != self.node_id:
                cost.bytes_shipped += payload
                cost.messages += 1
                cost.simulated_network_seconds += seconds
        merged = merge_group_states(partials, list(query.aggregates))
        return finalize_groups(merged, list(query.aggregates))

    def _join_colocated(self, query: JoinQuery) -> tuple[list[list[Any]], PlanCost]:
        """Both sides hash-partitioned on the join key with aligned
        placement: join entirely node-locally, ship only partial states."""
        with self._plan("colocated") as cost:
            fact_assign = self._assignments(query.fact_table)
            dag = TaskDag()
            probe_ids = []
            for node_id, partition_ids in fact_assign.items():
                build = dag.add(
                    "build_hash",
                    node_id,
                    {
                        "table": query.dim_table,
                        "partitions": partition_ids,
                        "key_column": query.dim_key,
                        "columns": self._dim_payload_columns(query),
                    },
                )
                probe = dag.add(
                    "join_partial",
                    node_id,
                    {
                        "table": query.fact_table,
                        "partitions": partition_ids,
                        "fact_key": query.fact_key,
                        "group_from_dim": 0,
                        "aggregates": list(query.aggregates),
                    },
                    [build.task_id],
                )
                probe_ids.append(probe.task_id)
            merge = dag.add("merge_aggregate", self.node_id, {}, probe_ids)
            results = self._run_dag(dag, cost)
            merged = merge_group_states(results[merge.task_id], list(query.aggregates))
            rows = finalize_groups(merged, list(query.aggregates))
        return rows, cost
