"""v2transact: the transaction broker over the shared log (§IV.B).

"A transaction broker service executes, serializes, and persists
transactions to a distributed shared log ... With the distributed log
approach we decouple the transaction mechanism from the query processing."

A *transaction* is a list of logical operations
``{"op": "insert"|"delete", "table": ..., "rows"/"predicate": ...}``.
The broker appends it to the log (that append IS the serialisation point),
then synchronously pushes it to OLTP subscribers; OLAP nodes pull later.

**Role in the query path:** the write side — reads never pass through the
broker, which is exactly the decoupling the paper claims; the coordinator
only consults :attr:`TransactionBroker.current_lsn` for strong reads.

**Observability:** commits feed the ``soe.broker.transactions`` /
``soe.broker.operations`` counters and the ``soe.broker.submit_seconds``
latency histogram (v2stats surfaces them per cluster).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable

from repro import obs
from repro.analysis.racecheck import track_fields
from repro.errors import LogSealedError, LogStallError, SoeError
from repro.soe.services.shared_log import SharedLog
from repro.util.retry import RetryPolicy, SimulatedClock

Operation = dict[str, Any]
Subscriber = Callable[[int, list[Operation]], None]


@track_fields("_oltp_subscribers")
class TransactionBroker:
    """Serialises transactions through the shared log.

    **Failure awareness:** an append that hits a sealed segment (the
    fence a failed-over transaction service leaves behind) triggers the
    CORFU recovery step — :meth:`SharedLog.reconfigure` (seal-and-reopen)
    — and a bounded retry; a stalled append retries with exponential
    backoff charged to the *simulated* clock. Both paths are counted
    (``soe.broker.retries`` / ``soe.broker.log_recoveries``) so v2stats
    sees every recovery.
    """

    def __init__(
        self,
        log: SharedLog,
        retry_policy: RetryPolicy | None = None,
        clock: SimulatedClock | None = None,
        breaker: Any = None,
    ) -> None:
        self.log = log
        #: optional repro.qos CircuitBreaker on the append seam; once open,
        #: submits fail fast (CircuitOpenError, non-retryable) instead of
        #: running the seal-and-reopen/backoff schedule per transaction
        self.breaker = breaker
        #: optional membership FencingGuard: writes routed to leased
        #: partitions must carry a current-epoch fence token — the
        #: broker is where a healed zombie's buffered transactions get
        #: rejected instead of merged
        self.fencing: Any = None
        #: guards the subscriber list and the commit counter; never held
        #: while calling out (subscribers, the log) to keep lock order flat
        self._lock = threading.Lock()
        self._oltp_subscribers: list[Subscriber] = []
        self.transactions = 0
        self.retry_policy = retry_policy or RetryPolicy()
        self.clock = clock or SimulatedClock()
        self.retries = 0
        self.log_recoveries = 0

    def subscribe_oltp(self, subscriber: Subscriber) -> None:
        """OLTP nodes incorporate "the log during the update transaction" —
        the broker calls them before acknowledging the commit."""
        with self._lock:
            self._oltp_subscribers.append(subscriber)

    def submit(self, operations: Iterable[Operation], fence: Any = None) -> int:
        """Append one transaction; returns its log address (the global
        commit order). With a fencing guard installed, every operation is
        epoch-checked against the ownership leases of the partitions it
        routes to — a stale-epoch writer gets a non-retryable
        ``FencedError`` before anything reaches the log."""
        ops = list(operations)
        for operation in ops:
            if "op" not in operation or "table" not in operation:
                raise SoeError(f"malformed operation: {operation!r}")
        if self.fencing is not None:
            for operation in ops:
                self.fencing.check_write(operation, fence)
        with obs.latency("soe.broker.submit_seconds"):
            address = self._append_with_recovery({"ops": ops}, fence=fence)
            with self._lock:
                self.transactions += 1
                subscribers = list(self._oltp_subscribers)
            for subscriber in subscribers:
                subscriber(address, ops)
        obs.count("soe.broker.transactions")
        obs.count("soe.broker.operations", len(ops))
        return address

    def _append_with_recovery(self, payload: dict[str, Any], fence: Any = None) -> int:
        """Append under the broker's bounded retry policy.

        A sealed log means the previous configuration was fenced — the
        broker reopens it (seal-and-reopen) before retrying; a stall just
        backs off. Exhausting the policy re-raises the last transient
        error (still a ``LogError``, so callers see the subsystem type).
        The ``fence`` token is forwarded to the log's own guard (defence
        in depth); a ``FencedError`` from below is non-retryable and
        punches straight through this loop.
        """
        last: LogStallError | LogSealedError | None = None

        def do_append() -> int:
            # only pass the token when one was presented — log stand-ins
            # (tests, alternative stores) need not know about fencing
            if fence is None:
                return self.log.append(payload)
            return self.log.append(payload, fence=fence)

        for attempt, delay in self.retry_policy.schedule():
            if attempt:
                self.clock.advance(delay)
                self.retries += 1
                obs.count("soe.broker.retries")
            try:
                if self.breaker is not None:
                    return self.breaker.call(do_append)
                return do_append()
            except LogSealedError as exc:
                last = exc
                self.log.reconfigure()
                self.log_recoveries += 1
                obs.count("soe.broker.log_recoveries")
            except LogStallError as exc:
                last = exc
        assert last is not None
        raise last

    @property
    def current_lsn(self) -> int:
        """The log tail: everything below it is committed."""
        return self.log.tail

    def read_since(self, lsn: int, limit: int | None = None):
        """Stream committed transactions with address >= lsn (the catch-up
        path the coordinator uses "for additional updates to be
        considered")."""
        for address, payload in self.log.read_from(lsn, limit):
            yield address, payload["ops"]
