"""v2catalog: schema catalog + data discovery (§IV.B, Figure 3).

"A catalog service stores and provides schema and metadata information, a
data discovery service keeps track of the location of the corresponding
horizontal table partitions."

**Role in the query path:** consulted once per distributed plan — the
v2dqp coordinator asks it which nodes host which partitions
(:meth:`CatalogService.placement_of`) before building the task DAG; it
never touches row data itself.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from repro.analysis.racecheck import track_fields
from repro.errors import CoordinationError


@dataclass
class SoeTableMeta:
    """Schema + partitioning metadata of one SOE table."""

    name: str
    columns: list[str]
    key_columns: list[str]
    partition_count: int

    @property
    def key_positions(self) -> list[int]:
        return [self.columns.index(column) for column in self.key_columns]


@track_fields("_tables", "_placement")
@dataclass
class CatalogService:
    """Schemas plus partition → hosting-node discovery."""

    _tables: dict[str, SoeTableMeta] = field(default_factory=dict)
    #: (table, partition_id) -> node ids hosting a replica
    _placement: dict[tuple[str, int], list[str]] = field(default_factory=dict)
    #: guards both maps — registration and (re)placement race with the
    #: cluster manager's rebalancing thread
    _lock: threading.Lock = field(
        # a lambda, not `threading.Lock` itself: the factory must be
        # looked up at *instance* creation so sanitizer/scheduler lock
        # layers installed after this module imported still wrap it
        default_factory=lambda: threading.Lock(),
        repr=False,
        compare=False,
    )
    #: optional membership FencingGuard: when installed, swap_placement —
    #: the ownership flip's commit point — requires a current-epoch token
    fencing: Any = field(default=None, repr=False, compare=False)

    # -- schema -------------------------------------------------------------

    def register_table(self, meta: SoeTableMeta) -> None:
        with self._lock:
            if meta.name in self._tables:
                raise CoordinationError(f"SOE table {meta.name!r} already exists")
            self._tables[meta.name] = meta

    def table(self, name: str) -> SoeTableMeta:
        with self._lock:
            meta = self._tables.get(name)
        if meta is None:
            raise CoordinationError(f"unknown SOE table {name!r}")
        return meta

    def has_table(self, name: str) -> bool:
        with self._lock:
            return name in self._tables

    def tables(self) -> list[str]:
        with self._lock:
            return sorted(self._tables)

    # -- data discovery ----------------------------------------------------------

    def place_partition(self, table: str, partition_id: int, node_id: str) -> None:
        with self._lock:
            nodes = self._placement.setdefault((table, partition_id), [])
            if node_id not in nodes:
                nodes.append(node_id)

    def unplace_partition(self, table: str, partition_id: int, node_id: str) -> None:
        with self._lock:
            nodes = self._placement.get((table, partition_id), [])
            if node_id in nodes:
                nodes.remove(node_id)

    def swap_placement(
        self,
        table: str,
        partition_id: int,
        from_node: str,
        to_node: str,
        fence: Any = None,
    ) -> None:
        """Atomically retarget one replica slot from ``from_node`` to
        ``to_node`` — a single lock region, so discovery never observes a
        window with zero owners (or with both) during a partition move.
        This is the ownership flip's commit point: the movement protocol
        treats a completed swap as committed and everything before it as
        rollback-able. On a leased partition the swap must present the
        new-epoch ``fence`` token (validated before the catalog lock, so
        the lease lock never nests inside it) — a stale mover cannot
        retarget the catalog."""
        if self.fencing is not None:
            self.fencing.check_partition(table, partition_id, fence)
        with self._lock:
            nodes = self._placement.get((table, partition_id))
            if not nodes or from_node not in nodes:
                raise CoordinationError(
                    f"{from_node} does not host {table}#{partition_id}"
                )
            if to_node in nodes:
                nodes.remove(from_node)
            else:
                nodes[nodes.index(from_node)] = to_node

    def nodes_of(self, table: str, partition_id: int) -> list[str]:
        with self._lock:
            nodes = self._placement.get((table, partition_id))
            if nodes:
                return list(nodes)
        raise CoordinationError(
            f"partition {table}#{partition_id} is not placed anywhere"
        )

    def placement_of(self, table: str) -> dict[int, list[str]]:
        """partition id → hosting nodes, for every *placed* partition."""
        self.table(table)
        with self._lock:
            return {
                partition_id: list(nodes)
                for (t, partition_id), nodes in sorted(self._placement.items())
                if t == table and nodes
            }

    def partitions_on(self, table: str, node_id: str) -> list[int]:
        """Partition ids of ``table`` hosted on ``node_id``."""
        with self._lock:
            return sorted(
                partition_id
                for (t, partition_id), nodes in self._placement.items()
                if t == table and node_id in nodes
            )
