"""The SOE service landscape of the paper's Figure 3 (§IV.B).

One module per named service, each stating the paper text it reproduces
and its role in the distributed query path:

* :mod:`~repro.soe.services.coordinator` — v2dqp, distributed query plans
* :mod:`~repro.soe.services.query_service` — v2lqp, node-local execution
* :mod:`~repro.soe.services.transaction_broker` — v2transact, the write path
* :mod:`~repro.soe.services.shared_log` — the CORFU-style distributed log
* :mod:`~repro.soe.services.catalog_service` — v2catalog + partition placement
* :mod:`~repro.soe.services.discovery` — v2disc&auth, the service registry
* :mod:`~repro.soe.services.cluster_manager` — v2clustermgr + v2stats,
  supervision fed by the :mod:`repro.obs` metrics the other services publish
"""
