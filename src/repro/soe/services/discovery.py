"""v2disc&auth: cluster discovery + authorization (§IV.B, Figure 3).

"An authorization and a cluster discovery service are bundled together to
store cluster access rights and keep track of availability of services
across the cluster."

**Role in the query path:** control plane only — the cluster manager
announces/withdraws services here and rebalancing looks up live v2lqp
hosts; no per-query traffic flows through it.

**Concurrency:** both registries are mutated from whatever thread starts
or stops services, so every write happens under the instance lock and
reads hand out copies (rule RA103 of ``tools/analyze`` enforces the
write side).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.analysis.racecheck import track_fields
from repro.errors import ClusterError


@track_fields("_services")
@dataclass
class DiscoveryService:
    """Service registry: which nodes host which service kind."""

    _services: dict[str, list[str]] = field(default_factory=dict)
    _lock: threading.Lock = field(
        # a lambda, not `threading.Lock` itself: the factory must be
        # looked up at *instance* creation so sanitizer/scheduler lock
        # layers installed after this module imported still wrap it
        default_factory=lambda: threading.Lock(),
        repr=False,
        compare=False,
    )

    def announce(self, service_kind: str, node_id: str) -> None:
        with self._lock:
            nodes = self._services.setdefault(service_kind, [])
            if node_id not in nodes:
                nodes.append(node_id)

    def withdraw(self, service_kind: str, node_id: str) -> None:
        with self._lock:
            nodes = self._services.get(service_kind, [])
            if node_id in nodes:
                nodes.remove(node_id)

    def locate(self, service_kind: str) -> list[str]:
        """Node ids currently announcing ``service_kind``."""
        with self._lock:
            return list(self._services.get(service_kind, []))

    def locate_one(self, service_kind: str) -> str:
        nodes = self.locate(service_kind)
        if not nodes:
            raise ClusterError(f"no node announces service {service_kind!r}")
        return nodes[0]

    def service_kinds(self) -> list[str]:
        with self._lock:
            return sorted(self._services)


@track_fields("_grants", "_credentials")
@dataclass
class AuthorizationService:
    """Credentials and access-rights store (deliberately simple ACLs)."""

    _grants: dict[str, set[str]] = field(default_factory=dict)
    _credentials: dict[str, str] = field(default_factory=dict)
    _lock: threading.Lock = field(
        # a lambda, not `threading.Lock` itself: the factory must be
        # looked up at *instance* creation so sanitizer/scheduler lock
        # layers installed after this module imported still wrap it
        default_factory=lambda: threading.Lock(),
        repr=False,
        compare=False,
    )

    def create_user(self, user: str, secret: str) -> None:
        with self._lock:
            if user in self._credentials:
                raise ClusterError(f"user {user!r} already exists")
            self._credentials[user] = secret
            self._grants.setdefault(user, set())

    def authenticate(self, user: str, secret: str) -> bool:
        with self._lock:
            return self._credentials.get(user) == secret

    def grant(self, user: str, action: str) -> None:
        with self._lock:
            if user not in self._credentials:
                raise ClusterError(f"unknown user {user!r}")
            self._grants.setdefault(user, set()).add(action)

    def revoke(self, user: str, action: str) -> None:
        with self._lock:
            self._grants.get(user, set()).discard(action)

    def check(self, user: str, action: str) -> bool:
        with self._lock:
            grants = self._grants.get(user, set())
            return action in grants or "*" in grants

    def require(self, user: str, action: str) -> None:
        if not self.check(user, action):
            raise ClusterError(f"user {user!r} is not authorised for {action!r}")
