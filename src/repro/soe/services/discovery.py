"""v2disc&auth: cluster discovery + authorization (§IV.B, Figure 3).

"An authorization and a cluster discovery service are bundled together to
store cluster access rights and keep track of availability of services
across the cluster."

**Role in the query path:** control plane only — the cluster manager
announces/withdraws services here and rebalancing looks up live v2lqp
hosts; no per-query traffic flows through it.

**Concurrency:** both registries are mutated from whatever thread starts
or stops services, so every write happens under the instance lock and
reads hand out copies (rule RA103 of ``tools/analyze`` enforces the
write side).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.analysis.racecheck import track_fields
from repro.errors import ClusterError


def _announce_into(services: dict[str, list[str]], kind: str, node_id: str) -> None:
    """Registry insert; the caller holds the registry's lock."""
    nodes = services.setdefault(kind, [])
    if node_id not in nodes:
        nodes.append(node_id)


def _withdraw_from(services: dict[str, list[str]], kind: str, node_id: str) -> None:
    """Registry remove; the caller holds the registry's lock."""
    nodes = services.get(kind, [])
    if node_id in nodes:
        nodes.remove(node_id)


@track_fields("_services")
@dataclass
class DiscoveryService:
    """Service registry: which nodes host which service kind.

    Liveness-aware: :meth:`mark_failed` routes a node's announcements
    through the same withdraw path lookups read, so ``locate`` /
    ``locate_one`` can never hand out a dead address — the dead-node
    leakage that used to send rebalancing and failover at corpses.
    :meth:`restore` re-announces exactly what was withdrawn. Both are
    driven by cluster kill/revive transitions and by failure-detector
    verdicts (``repro.soe.membership.FailureDetector``), which also
    covers gray failures crash-stop wiring never sees.
    """

    _services: dict[str, list[str]] = field(default_factory=dict)
    #: node id -> service kinds withdrawn by mark_failed, owed on restore
    _failed: dict[str, list[str]] = field(default_factory=dict)
    _lock: threading.Lock = field(
        # a lambda, not `threading.Lock` itself: the factory must be
        # looked up at *instance* creation so sanitizer/scheduler lock
        # layers installed after this module imported still wrap it
        default_factory=lambda: threading.Lock(),
        repr=False,
        compare=False,
    )

    def announce(self, service_kind: str, node_id: str) -> None:
        with self._lock:
            if node_id in self._failed:
                # the node is marked failed: remember the announcement
                # for restore, but never expose a dead address
                kinds = self._failed[node_id]
                if service_kind not in kinds:
                    kinds.append(service_kind)
                return
            _announce_into(self._services, service_kind, node_id)

    def withdraw(self, service_kind: str, node_id: str) -> None:
        with self._lock:
            _withdraw_from(self._services, service_kind, node_id)
            kinds = self._failed.get(node_id)
            if kinds is not None and service_kind in kinds:
                kinds.remove(service_kind)

    def mark_failed(self, node_id: str) -> list[str]:
        """Withdraw every announcement of ``node_id`` (remembering them),
        so lookups stop returning it immediately. Idempotent; returns the
        kinds withdrawn by this call."""
        with self._lock:
            withdrawn = sorted(
                kind for kind, nodes in self._services.items() if node_id in nodes
            )
            for kind in withdrawn:
                _withdraw_from(self._services, kind, node_id)
            owed = self._failed.setdefault(node_id, [])
            for kind in withdrawn:
                if kind not in owed:
                    owed.append(kind)
            return withdrawn

    def restore(self, node_id: str) -> list[str]:
        """Re-announce everything :meth:`mark_failed` withdrew (plus any
        announcement that arrived while the node was down). Idempotent;
        returns the kinds re-announced."""
        with self._lock:
            owed = self._failed.pop(node_id, [])
            for kind in owed:
                _announce_into(self._services, kind, node_id)
            return sorted(owed)

    def is_failed(self, node_id: str) -> bool:
        with self._lock:
            return node_id in self._failed

    def locate(self, service_kind: str) -> list[str]:
        """Node ids currently announcing ``service_kind`` (failed nodes
        are withdrawn, so they never appear here)."""
        with self._lock:
            return list(self._services.get(service_kind, []))

    def locate_one(self, service_kind: str) -> str:
        nodes = self.locate(service_kind)
        if not nodes:
            raise ClusterError(f"no node announces service {service_kind!r}")
        return nodes[0]

    def service_kinds(self) -> list[str]:
        with self._lock:
            return sorted(self._services)


@track_fields("_grants", "_credentials")
@dataclass
class AuthorizationService:
    """Credentials and access-rights store (deliberately simple ACLs)."""

    _grants: dict[str, set[str]] = field(default_factory=dict)
    _credentials: dict[str, str] = field(default_factory=dict)
    _lock: threading.Lock = field(
        # a lambda, not `threading.Lock` itself: the factory must be
        # looked up at *instance* creation so sanitizer/scheduler lock
        # layers installed after this module imported still wrap it
        default_factory=lambda: threading.Lock(),
        repr=False,
        compare=False,
    )

    def create_user(self, user: str, secret: str) -> None:
        with self._lock:
            if user in self._credentials:
                raise ClusterError(f"user {user!r} already exists")
            self._credentials[user] = secret
            self._grants.setdefault(user, set())

    def authenticate(self, user: str, secret: str) -> bool:
        with self._lock:
            return self._credentials.get(user) == secret

    def grant(self, user: str, action: str) -> None:
        with self._lock:
            if user not in self._credentials:
                raise ClusterError(f"unknown user {user!r}")
            self._grants.setdefault(user, set()).add(action)

    def revoke(self, user: str, action: str) -> None:
        with self._lock:
            self._grants.get(user, set()).discard(action)

    def check(self, user: str, action: str) -> bool:
        with self._lock:
            grants = self._grants.get(user, set())
            return action in grants or "*" in grants

    def require(self, user: str, action: str) -> None:
        if not self.check(user, action):
            raise ClusterError(f"user {user!r} is not authorised for {action!r}")
