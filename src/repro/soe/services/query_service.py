"""v2lqp: the local query-processing executable (§IV.B, Figure 3).

"At the core is the SAP HANA SOE local query processing executable (v2lqp)
which contains a query and a data service." The query service executes
coordinator tasks against the node-local prepackaged partitions, compiling
each task's kernel first (see :mod:`repro.soe.codegen`); the data service
(:class:`~repro.soe.replication.DataNode`) owns the partitions and applies
the shared log.

**Role in the query path:** the leaf executor of the SOE — the v2dqp
coordinator's task DAG lands here, one task at a time, and only partial
results travel back.

**Observability:** every task dispatch counts into
``soe.query_service.tasks`` and the ``soe.query_service.task_seconds``
latency histogram (labelled by task kind and node), the per-node numbers
the v2stats service reads to spot hotspots.
"""

from __future__ import annotations

from typing import Any

from repro import obs
from repro.errors import CoordinationError
from repro.soe.codegen import (
    GroupStates,
    estimate_states_bytes,
    run_partial_aggregate,
)
from repro.soe.replication import DataNode
from repro.soe.tasks import AggregateSpec, Filter, Task


class QueryService:
    """Executes tasks on one node's local data."""

    def __init__(self, node_id: str, data_node: DataNode) -> None:
        self.node_id = node_id
        self.data_node = data_node
        self.tasks_executed = 0
        self.rows_processed = 0

    # -- task entry point ------------------------------------------------------

    def execute(self, task: Task, inputs: dict[int, Any]) -> Any:
        """Run one task; ``inputs`` maps input task id → its result."""
        self.tasks_executed += 1
        obs.count("soe.query_service.tasks", kind=task.kind, node=self.node_id)
        with obs.latency("soe.query_service.task_seconds", kind=task.kind, node=self.node_id):
            # pin the task's partitions so a concurrent partition move
            # cannot trim a retained donor copy out from under this scan
            with self.data_node.pinned(
                task.params.get("table"), task.params.get("partitions", ())
            ):
                if task.kind == "partial_aggregate":
                    return self._partial_aggregate(task)
                if task.kind == "build_hash":
                    return self._build_hash(task)
                if task.kind == "join_partial":
                    return self._join_partial(task, inputs)
                if task.kind == "scan_ship":
                    return self._scan_ship(task)
                raise CoordinationError(
                    f"query service cannot execute task kind {task.kind!r}"
                )

    # -- kernels ------------------------------------------------------------------

    def _local_partitions(self, table: str, partition_ids: list[int]) -> list[Any]:
        store = self.data_node.store
        return [store.partition(table, pid) for pid in partition_ids]

    def _partial_aggregate(self, task: Task) -> GroupStates:
        params = task.params
        partitions = self._local_partitions(params["table"], params["partitions"])
        self.rows_processed += sum(len(p) for p in partitions)
        return run_partial_aggregate(
            partitions,
            [Filter(*f) if not isinstance(f, Filter) else f for f in params.get("filters", [])],
            list(params.get("group_by", [])),
            [AggregateSpec(*a) if not isinstance(a, AggregateSpec) else a for a in params["aggregates"]],
        )

    def _build_hash(self, task: Task) -> dict[Any, list[tuple]]:
        """Materialise a (small) table side as key → rows."""
        params = task.params
        partitions = self._local_partitions(params["table"], params["partitions"])
        key_column = params["key_column"]
        payload_columns = params["columns"]
        table_hash: dict[Any, list[tuple]] = {}
        for partition in partitions:
            self.rows_processed += len(partition)
            key_pos = partition.columns.index(key_column.lower())
            payload_pos = [partition.columns.index(c.lower()) for c in payload_columns]
            for row in partition.rows():
                key = row[key_pos]
                if key is None:
                    continue
                table_hash.setdefault(key, []).append(
                    tuple(row[p] for p in payload_pos)
                )
        return table_hash

    def _join_partial(self, task: Task, inputs: dict[int, Any]) -> GroupStates:
        """Probe local fact partitions against a shipped hash table, then
        aggregate — the broadcast-join inner task."""
        params = task.params
        hash_input = inputs[task.inputs[0]]
        partitions = self._local_partitions(params["table"], params["partitions"])
        group_source = params["group_from_dim"]     # index into dim payload
        fact_key = params["fact_key"]
        agg_specs = [AggregateSpec(*a) if not isinstance(a, AggregateSpec) else a for a in params["aggregates"]]
        value_columns = [a.column for a in agg_specs]
        groups: GroupStates = {}
        for partition in partitions:
            self.rows_processed += len(partition)
            key_pos = partition.columns.index(fact_key.lower())
            value_pos = [
                partition.columns.index(c.lower()) if c is not None else None
                for c in value_columns
            ]
            for row in partition.rows():
                matches = hash_input.get(row[key_pos])
                if not matches:
                    continue
                for dim_payload in matches:
                    key = (dim_payload[group_source],)
                    states = groups.get(key)
                    if states is None:
                        states = [
                            0 if a.op == "count" else [0.0, 0] if a.op == "avg" else None
                            for a in agg_specs
                        ]
                        groups[key] = states
                    for index, aggregate in enumerate(agg_specs):
                        if aggregate.op == "count" and aggregate.column is None:
                            states[index] += 1
                            continue
                        value = row[value_pos[index]]
                        if value is None:
                            continue
                        if aggregate.op == "count":
                            states[index] += 1
                        elif aggregate.op == "sum":
                            states[index] = value if states[index] is None else states[index] + value
                        elif aggregate.op == "avg":
                            states[index][0] += value
                            states[index][1] += 1
                        elif aggregate.op == "min":
                            states[index] = value if states[index] is None or value < states[index] else states[index]
                        elif aggregate.op == "max":
                            states[index] = value if states[index] is None or value > states[index] else states[index]
        return groups

    def _scan_ship(self, task: Task) -> list[tuple]:
        """Project local rows for repartitioning (ships whole tuples)."""
        params = task.params
        partitions = self._local_partitions(params["table"], params["partitions"])
        columns = params["columns"]
        out: list[tuple] = []
        for partition in partitions:
            self.rows_processed += len(partition)
            positions = [partition.columns.index(c.lower()) for c in columns]
            for row in partition.rows():
                out.append(tuple(row[p] for p in positions))
        return out

    # -- result sizing (for network accounting) -------------------------------------

    @staticmethod
    def result_bytes(result: Any) -> int:
        if isinstance(result, dict):
            first = next(iter(result.values()), None)
            if isinstance(first, list) and first and isinstance(first[0], tuple):
                # hash table: key -> payload tuples
                total = 0
                for key, rows in result.items():
                    total += len(key) + 1 if isinstance(key, str) else 8
                    for row in rows:
                        total += sum(
                            len(v) + 1 if isinstance(v, str) else 8 for v in row
                        )
                return total
            return estimate_states_bytes(result)
        if isinstance(result, list):
            total = 0
            for row in result:
                total += sum(len(v) + 1 if isinstance(v, str) else 8 for v in row)
            return total
        return 64
