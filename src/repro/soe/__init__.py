"""The Scale-Out Extension (SOE): Figure 3's service landscape."""

from repro.soe.engine import SoeEngine

__all__ = ["SoeEngine"]
