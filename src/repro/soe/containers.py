"""Service containerisation (§IV.B).

"All these services (including global transaction blocker and database
services) can be isolated by a container infrastructure like Docker."

The simulated runtime provides the properties the paper relies on:

* **isolation** — a service runs inside exactly one container; resource
  accounting (memory/CPU-share) is per container against declared limits,
* **lifecycle** — containers start/stop/restart independently of the node
  hosting them; a crash is contained (the container flips to ``FAILED``,
  the service is withdrawn from discovery, the node survives),
* **scheduling** — the runtime places containers on nodes with free
  capacity, the same way the cluster manager "can dynamically start and
  stop other query processing services".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any

from repro.errors import ClusterError
from repro.soe.cluster import SimulatedCluster


@dataclass
class ResourceLimits:
    """Declared container limits."""

    memory_bytes: int = 256 * 1024 * 1024
    cpu_shares: int = 1


@dataclass
class ServiceContainer:
    """One isolated service instance."""

    container_id: int
    node_id: str
    service_kind: str
    service: Any
    limits: ResourceLimits
    state: str = "RUNNING"  # RUNNING | STOPPED | FAILED
    memory_used: int = 0
    restarts: int = 0

    def charge_memory(self, amount: int) -> None:
        """Account a memory allocation; exceeding the limit kills the
        container (OOM), not the node."""
        if self.state != "RUNNING":
            raise ClusterError(f"container {self.container_id} is {self.state}")
        self.memory_used += amount
        if self.memory_used > self.limits.memory_bytes:
            self.state = "FAILED"
            raise ClusterError(
                f"container {self.container_id} ({self.service_kind}) exceeded "
                f"its memory limit and was killed"
            )

    def release_memory(self, amount: int) -> None:
        self.memory_used = max(0, self.memory_used - amount)


class ContainerRuntime:
    """Places and supervises service containers on cluster nodes."""

    def __init__(self, cluster: SimulatedCluster, node_cpu_capacity: int = 4) -> None:
        self.cluster = cluster
        self.node_cpu_capacity = node_cpu_capacity
        self._containers: dict[int, ServiceContainer] = {}
        self._ids = itertools.count(1)

    # -- placement ------------------------------------------------------------

    def _cpu_used(self, node_id: str) -> int:
        return sum(
            container.limits.cpu_shares
            for container in self._containers.values()
            if container.node_id == node_id and container.state == "RUNNING"
        )

    def deploy(
        self,
        service_kind: str,
        service: Any,
        node_id: str | None = None,
        limits: ResourceLimits | None = None,
    ) -> ServiceContainer:
        """Start a service inside a new container.

        Without an explicit node the runtime picks the live node with the
        most free CPU shares; deployment fails when nothing fits.
        """
        limits = limits or ResourceLimits()
        if node_id is None:
            candidates = [
                node
                for node in self.cluster.alive_nodes()
                if self.node_cpu_capacity - self._cpu_used(node.node_id)
                >= limits.cpu_shares
            ]
            if not candidates:
                raise ClusterError("no node has free CPU shares for the container")
            node_id = max(
                candidates,
                key=lambda node: self.node_cpu_capacity - self._cpu_used(node.node_id),
            ).node_id
        else:
            node = self.cluster.node(node_id)
            if not node.alive:
                raise ClusterError(f"node {node_id} is down")
            if self.node_cpu_capacity - self._cpu_used(node_id) < limits.cpu_shares:
                raise ClusterError(f"node {node_id} has no free CPU shares")
        container = ServiceContainer(
            container_id=next(self._ids),
            node_id=node_id,
            service_kind=service_kind,
            service=service,
            limits=limits,
        )
        self._containers[container.container_id] = container
        self.cluster.node(node_id).host(service_kind, service)
        return container

    # -- lifecycle ----------------------------------------------------------------

    def container(self, container_id: int) -> ServiceContainer:
        try:
            return self._containers[container_id]
        except KeyError:
            raise ClusterError(f"unknown container {container_id}") from None

    def stop(self, container_id: int) -> None:
        container = self.container(container_id)
        container.state = "STOPPED"
        node = self.cluster.node(container.node_id)
        node.services.pop(container.service_kind, None)

    def restart(self, container_id: int) -> ServiceContainer:
        """Restart a stopped/failed container in place (fresh accounting)."""
        container = self.container(container_id)
        if container.state == "RUNNING":
            return container
        if not self.cluster.node(container.node_id).alive:
            raise ClusterError(f"node {container.node_id} is down; reschedule instead")
        container.state = "RUNNING"
        container.memory_used = 0
        container.restarts += 1
        self.cluster.node(container.node_id).host(
            container.service_kind, container.service
        )
        return container

    def handle_node_failure(self, node_id: str) -> list[ServiceContainer]:
        """Mark every container on a dead node FAILED; returns them."""
        failed = []
        for container in self._containers.values():
            if container.node_id == node_id and container.state == "RUNNING":
                container.state = "FAILED"
                failed.append(container)
        return failed

    def reschedule(self, container_id: int) -> ServiceContainer:
        """Move a container off a dead node onto a live one."""
        old = self.container(container_id)
        replacement = self.deploy(old.service_kind, old.service, limits=old.limits)
        old.state = "STOPPED"
        return replacement

    # -- introspection ----------------------------------------------------------------

    def containers_on(self, node_id: str) -> list[ServiceContainer]:
        return [
            container
            for container in self._containers.values()
            if container.node_id == node_id and container.state == "RUNNING"
        ]

    def statistics(self) -> dict[str, Any]:
        by_state: dict[str, int] = {}
        for container in self._containers.values():
            by_state[container.state] = by_state.get(container.state, 0) + 1
        return {
            "containers": len(self._containers),
            "by_state": by_state,
            "cpu_used": {
                node_id: self._cpu_used(node_id) for node_id in self.cluster.nodes
            },
        }
