"""repro.soe.movement — online, crash-safe partition movement.

The paper's v2clustermgr "orchestrate[s] data movement … to identify
hotspots or to monitor performance goals" (§IV.B). This package is the
online half of that loop: :class:`PartitionMover` migrates a partition
between data nodes *while queries run*, via a five-phase, journaled,
crash-safe protocol (snapshot copy → CORFU catch-up → atomic ownership
flip → drain → trim), and :class:`AutoRebalancer` drives it off the
v2stats hotspot signal. See docs/ARCHITECTURE.md, "Online data
movement".
"""

from repro.soe.movement.mover import (
    PHASES,
    MoveJournal,
    MoveState,
    PartitionMover,
)
from repro.soe.movement.rebalancer import AutoRebalancer

__all__ = [
    "PHASES",
    "AutoRebalancer",
    "MoveJournal",
    "MoveState",
    "PartitionMover",
]
