"""Hotspot-driven auto-rebalancing: the closed v2stats loop (§IV.B).

"It can access statistical information about the current cluster usage
in order to identify hotspots" — :class:`AutoRebalancer` consumes
:meth:`ClusterStatisticsService.hotspots` over the *windowed* load view
(so a node that was hot an hour ago does not keep shedding partitions)
and issues a bounded number of online moves per step through the
:class:`~repro.soe.movement.mover.PartitionMover`. Every decision is
deterministic: hotspots arrive sorted, targets tie-break on node id,
and the shed partition is the lowest-numbered one the donor primaries.
"""

from __future__ import annotations

from typing import Any

from repro import obs
from repro.errors import MoveError
from repro.soe.movement.mover import MoveState, PartitionMover


class AutoRebalancer:
    """Sheds partitions off hotspot nodes onto the coldest live peer."""

    def __init__(
        self,
        mover: PartitionMover,
        stats: Any,
        catalog: Any,
        cluster: Any,
        *,
        hotspot_factor: float = 2.0,
        max_moves_per_step: int = 1,
        governor: Any = None,
    ) -> None:
        self.mover = mover
        self.stats = stats
        self.catalog = catalog
        self.cluster = cluster
        self.hotspot_factor = hotspot_factor
        self.max_moves_per_step = max_moves_per_step
        self.governor = governor
        self.steps = 0

    def step(self) -> list[MoveState]:
        """One supervision tick: detect hotspots in the current load
        window, issue at most ``max_moves_per_step`` online moves.
        Returns the terminal move states (which may include aborts —
        the caller sees exactly what chaos did to each move)."""
        self.steps += 1
        if self.governor is not None and self.governor.should_stop:
            # migrations are the *least* urgent work on a degraded
            # landscape: back off and let queries have the budget
            obs.count("soe.movement.rebalancer_deferred")
            return []
        hotspots = self.stats.hotspots(self.hotspot_factor, window=True)
        moves: list[MoveState] = []
        for donor in hotspots:
            if len(moves) >= self.max_moves_per_step:
                break
            state = self._shed_one(donor)
            if state is not None:
                moves.append(state)
        return moves

    def _shed_one(self, donor: str) -> MoveState | None:
        """Move the lowest-numbered primary partition off ``donor`` onto
        the live node primarying the fewest partitions of the same table
        (ties break on node id). Skips the donor when no move would
        actually level the placement."""
        if not self._alive(donor):
            return None
        for table in self.catalog.tables():
            placement = self.catalog.placement_of(table)
            if not placement:
                continue
            primaries: dict[str, list[int]] = {}
            for partition_id, nodes in placement.items():
                primaries.setdefault(nodes[0], []).append(partition_id)
            for node_id in self.stats.query_services:
                primaries.setdefault(node_id, [])
            donor_partitions = sorted(primaries.get(donor, ()))
            if not donor_partitions:
                continue
            candidates = [
                node_id
                for node_id in primaries
                if node_id != donor and self._alive(node_id)
            ]
            if not candidates:
                continue
            target = min(candidates, key=lambda n: (len(primaries[n]), n))
            if len(donor_partitions) <= len(primaries[target]) + 1:
                # moving would just swap the imbalance around
                continue
            for partition_id in donor_partitions:
                try:
                    state = self.mover.move(table, partition_id, donor, target)
                except MoveError:
                    obs.count("soe.movement.rebalancer_skips")
                    continue
                obs.count("soe.movement.rebalancer_moves")
                return state
        return None

    def _alive(self, node_id: str) -> bool:
        node = self.cluster.nodes.get(node_id)
        return node is not None and node.alive
