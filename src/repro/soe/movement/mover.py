"""The five-phase, crash-safe online partition migration protocol.

Phases (each transition is a journaled :class:`MoveState` record and a
``partition_move`` chaos seam event):

1. **snapshot_copy** — clone the partition at a pinned MVCC position
   (:meth:`DataNode.snapshot_partition` takes the copy and the donor's
   log-apply cursor atomically) and ship it; the donor keeps serving
   reads and applying the log the whole time.
2. **catch_up** — replay the committed delta from the CORFU shared log
   (``broker.read_since(snapshot_lsn)``) into the staged copy until its
   staleness against the log tail is within bound.
3. **flip** — the commit point: install ownership on the recipient,
   swap the catalog placement in one locked transaction
   (:meth:`CatalogService.swap_placement`), release on the donor — all
   through the locked ownership API, install-before-release, so there
   is never a zero-owner window and a transient dual copy is harmless
   (both sides are log-consistent).
4. **drain** — the donor retains its (released) copy so in-flight
   queries that pinned it finish against local data; the mover waits a
   bounded number of rounds for the pins to release.
5. **trim** — free the retained donor copy (deferred, never forced, if
   still pinned).

Crash safety is the journal + the flip ordering: any failure *before*
the catalog swap rolls back — the donor stays the sole authoritative
owner and the recipient's staging state is garbage-collected; any
failure *after* it rolls forward — the recipient is the owner and the
donor's leftovers are trimmed. A restarted mover replays the same
decision from the journaled ``flip_committed`` bit (:meth:`resume`),
so recovery is deterministic.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from repro import obs
from repro.analysis.racecheck import track_fields
from repro.errors import (
    FencedError,
    MembershipError,
    MoveAbortedError,
    MoveError,
    NodeUnavailableError,
    QosError,
    SoeError,
)
from repro.soe.replication import DataNode, apply_to_partition
from repro.util.retry import RetryPolicy, SimulatedClock

#: protocol phases in order; the chaos ``partition_move`` seam fires once
#: per transition, so ``at_event=k`` kills at the start of ``PHASES[k]``
PHASES: tuple[str, ...] = ("snapshot_copy", "catch_up", "flip", "drain", "trim")

#: terminal journal states
_DONE = "done"
_ABORTED = "aborted"


@dataclass
class MoveState:
    """The journaled state of one partition move."""

    move_id: str
    table: str
    partition_id: int
    donor: str
    recipient: str
    phase: str = "pending"
    #: donor log-apply cursor the snapshot copy reflects
    snapshot_lsn: int = -1
    #: log position the staged copy has been caught up to
    applied_lsn: int = -1
    #: True once the catalog placement swap committed — the protocol's
    #: single durable decision bit: False ⇒ roll back, True ⇒ roll forward
    flip_committed: bool = False
    #: lease epoch acquired for the recipient before the flip (-1 ⇒ no
    #: lease acquired yet); journaled so recovery re-seats the lease on
    #: whichever side the flip bit says is authoritative
    lease_epoch: int = -1
    aborted: bool = False
    rolled_forward: bool = False
    trimmed: bool = False
    bytes_copied: int = 0
    catchup_ops: int = 0
    retries: int = 0
    history: list[str] = field(default_factory=list)
    error: str = ""
    #: the in-flight staged copy — process state, deliberately *not*
    #: journaled: a restarted mover cannot resume a half-shipped copy, it
    #: rolls back to the donor instead
    staging: Any = field(default=None, repr=False, compare=False)

    @property
    def done(self) -> bool:
        return self.phase in (_DONE, _ABORTED)

    def to_dict(self) -> dict[str, Any]:
        return {
            "move_id": self.move_id,
            "table": self.table,
            "partition_id": self.partition_id,
            "donor": self.donor,
            "recipient": self.recipient,
            "phase": self.phase,
            "snapshot_lsn": self.snapshot_lsn,
            "applied_lsn": self.applied_lsn,
            "flip_committed": self.flip_committed,
            "lease_epoch": self.lease_epoch,
            "aborted": self.aborted,
            "rolled_forward": self.rolled_forward,
            "trimmed": self.trimmed,
            "bytes_copied": self.bytes_copied,
            "catchup_ops": self.catchup_ops,
            "retries": self.retries,
            "history": list(self.history),
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, record: dict[str, Any]) -> "MoveState":
        state = cls(
            move_id=record["move_id"],
            table=record["table"],
            partition_id=record["partition_id"],
            donor=record["donor"],
            recipient=record["recipient"],
        )
        for key in (
            "phase",
            "snapshot_lsn",
            "applied_lsn",
            "flip_committed",
            "lease_epoch",
            "aborted",
            "rolled_forward",
            "trimmed",
            "bytes_copied",
            "catchup_ops",
            "retries",
            "error",
        ):
            if key in record:
                setattr(state, key, record[key])
        state.history = list(record.get("history", ()))
        return state


@track_fields("_records")
class MoveJournal:
    """Append-only per-move phase journal (the crash-recovery source of
    truth — everything a restarted mover needs is in the latest record)."""

    def __init__(self) -> None:
        self._records: dict[str, list[dict[str, Any]]] = {}
        self._lock = threading.Lock()

    def record(self, state: MoveState) -> None:
        with self._lock:
            self._records.setdefault(state.move_id, []).append(state.to_dict())

    def entries(self, move_id: str) -> list[dict[str, Any]]:
        with self._lock:
            return [dict(r) for r in self._records.get(move_id, ())]

    def latest(self, move_id: str) -> dict[str, Any] | None:
        with self._lock:
            records = self._records.get(move_id)
            return dict(records[-1]) if records else None

    def move_ids(self) -> list[str]:
        with self._lock:
            return sorted(self._records)

    def open_moves(self) -> list[str]:
        """Moves whose latest journaled phase is not terminal — the set a
        restarted mover must resume (roll forward) or roll back."""
        with self._lock:
            return sorted(
                move_id
                for move_id, records in self._records.items()
                if records and records[-1]["phase"] not in (_DONE, _ABORTED)
            )


@track_fields("_moves")
class PartitionMover:
    """Runs the five-phase online migration protocol against a landscape.

    ``phase_hook`` (if given) is called with the :class:`MoveState` at
    every phase transition *before* the chaos seam fires — tests use it
    to run queries and commit writes mid-move, proving the donor keeps
    serving and the catch-up phase absorbs concurrent commits.
    """

    def __init__(
        self,
        cluster: Any,
        catalog: Any,
        broker: Any,
        data_nodes: dict[str, DataNode],
        *,
        clock: SimulatedClock | None = None,
        retry_policy: RetryPolicy | None = None,
        transfer_breaker: Any = None,
        chaos: Any = None,
        governor: Any = None,
        staleness_bound: int = 0,
        max_catchup_rounds: int = 8,
        drain_rounds: int = 4,
        drain_wait_seconds: float = 0.001,
        journal: MoveJournal | None = None,
        phase_hook: Callable[[MoveState], None] | None = None,
        membership: Any = None,
    ) -> None:
        self.cluster = cluster
        self.catalog = catalog
        self.broker = broker
        self.data_nodes = data_nodes
        self.clock = clock or SimulatedClock()
        self.retry_policy = retry_policy or RetryPolicy()
        self.transfer_breaker = transfer_breaker
        self.chaos = chaos
        self.governor = governor
        self.staleness_bound = staleness_bound
        self.max_catchup_rounds = max_catchup_rounds
        self.drain_rounds = drain_rounds
        self.drain_wait_seconds = drain_wait_seconds
        self.journal = journal or MoveJournal()
        self.phase_hook = phase_hook
        #: optional MembershipService — when the moved partition is under
        #: an ownership lease, the mover must acquire the next epoch for
        #: the recipient *before* the flip and revoke the donor's lease
        #: at commit, so a donor partitioned mid-move can never ack
        #: writes the recipient's epoch has superseded
        self.membership = membership
        self._moves: dict[str, MoveState] = {}
        self._lock = threading.Lock()
        self._sequence = 0

    # -- public API ---------------------------------------------------------

    def move(
        self,
        table: str,
        partition_id: int,
        donor: str,
        recipient: str,
        *,
        raise_on_abort: bool = False,
    ) -> MoveState:
        """Migrate one partition online; returns the final (terminal)
        :class:`MoveState`. A failure mid-protocol does not raise — it
        rolls back or forward per the journal and reports through
        ``state.aborted`` / ``state.error`` (``raise_on_abort`` upgrades
        a rollback to :class:`~repro.errors.MoveAbortedError`). Usage
        errors — unknown nodes, unowned partition, governor-degraded
        landscape — raise :class:`~repro.errors.MoveError` before any
        state changes."""
        state = self._begin(table.lower(), partition_id, donor, recipient)
        with obs.span(
            "soe.movement.move",
            table=state.table,
            partition=str(partition_id),
            donor=donor,
            recipient=recipient,
        ):
            try:
                self._snapshot_copy(state)
                self._catch_up(state)
                self._flip(state)
                self._drain(state)
                self._trim(state)
                self._finish(state, _DONE)
            except (SoeError, QosError) as exc:
                self._recover(state, exc)
        if state.aborted and raise_on_abort:
            raise MoveAbortedError(
                f"move {state.move_id} aborted: {state.error}"
            )
        return state

    def resume(self, move_id: str) -> MoveState:
        """Finish an interrupted move from its journal: roll forward if
        the flip committed, roll back otherwise. Deterministic — the
        decision is a pure function of the latest journal record."""
        record = self.journal.latest(move_id)
        if record is None:
            raise MoveError(f"no journal for move {move_id!r}")
        state = MoveState.from_dict(record)
        if state.done:
            return state
        with self._lock:
            self._moves[state.move_id] = state
        obs.count("soe.movement.resumes")
        if state.flip_committed:
            self._roll_forward(state)
        else:
            self._rollback(state, "resumed before flip commit")
        return state

    def recover_all(self) -> list[MoveState]:
        """Resume every open journaled move (a restarted mover's first
        act)."""
        return [self.resume(move_id) for move_id in self.journal.open_moves()]

    def moves(self) -> list[MoveState]:
        with self._lock:
            return [self._moves[k] for k in sorted(self._moves)]

    # -- protocol phases ----------------------------------------------------

    def _begin(
        self, table: str, partition_id: int, donor: str, recipient: str
    ) -> MoveState:
        if donor == recipient:
            raise MoveError(
                f"cannot move {table}#{partition_id} onto its own host"
            )
        if donor not in self.data_nodes:
            raise MoveError(f"unknown donor node {donor!r}")
        if recipient not in self.data_nodes:
            raise MoveError(f"unknown recipient node {recipient!r}")
        if self.governor is not None and self.governor.should_stop:
            obs.count("soe.movement.deferred")
            raise MoveError(
                f"move of {table}#{partition_id} deferred: "
                "resource governor reports degraded landscape"
            )
        donor_node = self.data_nodes[donor]
        if partition_id not in donor_node.owned_partitions(table):
            raise MoveError(f"{donor} does not own {table}#{partition_id}")
        if partition_id in self.data_nodes[recipient].owned_partitions(table):
            raise MoveError(f"{recipient} already owns {table}#{partition_id}")
        if donor not in self.catalog.nodes_of(table, partition_id):
            raise MoveError(
                f"catalog does not place {table}#{partition_id} on {donor}"
            )
        with self._lock:
            self._sequence += 1
            state = MoveState(
                move_id=f"move-{self._sequence:04d}-{table}#{partition_id}",
                table=table,
                partition_id=partition_id,
                donor=donor,
                recipient=recipient,
            )
            self._moves[state.move_id] = state
        self.journal.record(state)
        obs.count("soe.movement.started")
        return state

    def _phase(self, state: MoveState, phase: str) -> None:
        """One phase transition: journal it, let user work interleave,
        then give chaos its shot at killing a participant right here."""
        state.phase = phase
        state.history.append(phase)
        self.journal.record(state)
        obs.count("soe.movement.phases", phase=phase)
        if self.phase_hook is not None:
            self.phase_hook(state)
        if self.chaos is not None:
            self.chaos.on_partition_move(state.donor, state.recipient, phase)

    def _snapshot_copy(self, state: MoveState) -> None:
        self._phase(state, "snapshot_copy")
        donor_node = self.data_nodes[state.donor]
        clone, snapshot_lsn = donor_node.snapshot_partition(
            state.table, state.partition_id
        )
        state.snapshot_lsn = snapshot_lsn
        state.applied_lsn = snapshot_lsn
        state.bytes_copied = clone.size_bytes()
        if self.governor is not None:
            # the copy is real work: charge it so migrations degrade
            # before queries do (BudgetExceededError aborts the move)
            self.governor.charge(rows=len(clone), bytes_=state.bytes_copied)
        self._transfer(state, state.bytes_copied)
        state.staging = clone
        self.journal.record(state)

    def _catch_up(self, state: MoveState) -> None:
        self._phase(state, "catch_up")
        donor_node = self.data_nodes[state.donor]
        key_positions, partition_count = donor_node.ownership_meta(state.table)
        for _ in range(self.max_catchup_rounds):
            tail = self.broker.current_lsn
            if tail - state.applied_lsn <= self.staleness_bound:
                break
            round_rows = 0
            for address, operations in self.broker.read_since(state.applied_lsn):
                if address >= tail:
                    break
                round_rows += apply_to_partition(
                    state.staging, operations, key_positions, partition_count
                )
                state.applied_lsn = address + 1
            state.catchup_ops += round_rows
            obs.count("soe.movement.catchup_rounds")
            if self.governor is not None and round_rows:
                self.governor.charge(rows=round_rows)
        if self.broker.current_lsn - state.applied_lsn > self.staleness_bound:
            raise MoveError(
                f"catch-up did not converge within {self.max_catchup_rounds} "
                f"rounds (staleness "
                f"{self.broker.current_lsn - state.applied_lsn} > "
                f"bound {self.staleness_bound})"
            )
        self.journal.record(state)

    def _flip(self, state: MoveState) -> None:
        self._phase(state, "flip")
        fence = self._acquire_flip_lease(state)

        def commit() -> None:
            self.catalog.swap_placement(
                state.table,
                state.partition_id,
                state.donor,
                state.recipient,
                fence=fence,
            )
            # the durable decision bit: journaled the instant the catalog
            # swap lands, so recovery rolls the same way the catalog reads
            state.flip_committed = True
            self.journal.record(state)
            if self.membership is not None:
                # the acquire above already superseded the donor's epoch;
                # this drops the donor's *cached* token too (if the
                # revocation is deliverable) so a reachable donor stops
                # presenting it immediately rather than at next fence
                self.membership.revoke(
                    state.table, state.partition_id, state.donor
                )

        DataNode.transfer_ownership(
            self.data_nodes[state.donor],
            self.data_nodes[state.recipient],
            state.table,
            state.staging,
            partition_lsn=state.applied_lsn,
            retain_on_donor=True,
            commit=commit,
            fence=fence,
        )
        state.staging = None
        obs.count("soe.movement.flips")

    def _acquire_flip_lease(self, state: MoveState) -> Any:
        """Acquire the recipient's next-epoch lease *before* the flip
        touches any node or the catalog. On a leased partition this is
        the point of no return for the donor's epoch: once the new epoch
        exists, any write the donor acks under the old token is fenced.
        A refusal (unreachable holder with an unexpired lease —
        :class:`~repro.errors.MembershipError`) aborts the move pre-flip,
        which rolls back cleanly. Returns the fence token, or ``None``
        when the partition is not under lease management."""
        membership = self.membership
        if membership is None or not membership.leases.is_managed(
            state.table, state.partition_id
        ):
            return None
        lease = membership.grant(
            state.table, state.partition_id, state.recipient
        )
        state.lease_epoch = lease.epoch
        self.journal.record(state)
        return lease.token()

    def _drain(self, state: MoveState) -> None:
        self._phase(state, "drain")
        donor_node = self.data_nodes[state.donor]
        for _ in range(self.drain_rounds):
            if donor_node.pin_count(state.table, state.partition_id) == 0:
                return
            self.clock.advance(self.drain_wait_seconds)

    def _trim(self, state: MoveState) -> None:
        self._phase(state, "trim")
        self._trim_retained(state)

    def _trim_retained(self, state: MoveState) -> None:
        donor_node = self.data_nodes.get(state.donor)
        if donor_node is None:
            return
        try:
            state.trimmed = donor_node.drop_retained(
                state.table, state.partition_id
            )
        except SoeError:
            # still pinned — leave the retained copy; harmless (it is no
            # longer owned, so the log is not applied to it) and a later
            # trim pass or node restart frees it
            obs.count("soe.movement.trim_deferred")

    # -- transfer with retries ---------------------------------------------

    def _transfer(self, state: MoveState, payload_bytes: int) -> float:
        def send() -> float:
            self._check_alive(state.donor)
            self._check_alive(state.recipient)
            return self.cluster.transfer(state.donor, state.recipient, payload_bytes)

        def attempt() -> float:
            if self.transfer_breaker is not None:
                return self.transfer_breaker.call(send)
            return send()

        def on_retry(attempt_number: int, exc: Exception) -> None:
            state.retries += 1
            obs.count("soe.movement.transfer_retries")

        return self.retry_policy.call(attempt, clock=self.clock, on_retry=on_retry)

    def _check_alive(self, node_id: str) -> None:
        node = self.cluster.nodes.get(node_id)
        if node is not None and not node.alive:
            raise NodeUnavailableError(
                node_id, f"node {node_id} is down mid-move"
            )

    # -- recovery -----------------------------------------------------------

    def _recover(self, state: MoveState, exc: Exception) -> None:
        state.error = f"{type(exc).__name__}: {exc}"
        if state.flip_committed:
            self._roll_forward(state)
        else:
            self._rollback(state, state.error)

    def _rollback(self, state: MoveState, reason: str) -> None:
        """Pre-flip failure: the donor stays authoritative; any
        recipient-side staging state is garbage-collected. If the flip
        lease was already acquired for the recipient, re-seat it on the
        donor *first* so the recipient release below can be fenced with
        the donor's fresh epoch."""
        state.error = state.error or reason
        state.staging = None
        token = self._reseat_lease(state, state.donor)
        recipient_node = self.data_nodes.get(state.recipient)
        if (
            recipient_node is not None
            and state.partition_id in recipient_node.owned_partitions(state.table)
        ):
            # install happened but the catalog swap did not: undo it
            try:
                recipient_node.release_ownership(
                    state.table, state.partition_id, fence=token
                )
            except FencedError:
                # re-seating was deferred (donor unreachable with a live
                # lease) — leave the staged install for a later recovery
                # pass; the catalog never flipped, so it is not routable
                obs.count("soe.movement.release_deferred")
        state.aborted = True
        obs.count("soe.movement.rollbacks")
        self._finish(state, _ABORTED)

    def _roll_forward(self, state: MoveState) -> None:
        """Post-flip failure: the recipient is the owner; re-seat its
        lease if recovery is running without one, then finish the
        donor-side release and trim."""
        token = self._reseat_lease(state, state.recipient)
        donor_node = self.data_nodes.get(state.donor)
        if (
            donor_node is not None
            and state.partition_id in donor_node.owned_partitions(state.table)
        ):
            try:
                donor_node.release_ownership(
                    state.table, state.partition_id, retain_data=True,
                    fence=token,
                )
            except FencedError:
                obs.count("soe.movement.release_deferred")
        self._trim_retained(state)
        state.rolled_forward = True
        obs.count("soe.movement.roll_forwards")
        self._finish(state, _DONE)

    def _reseat_lease(self, state: MoveState, holder: str) -> Any:
        """Recovery helper: make ``holder`` (the side the journal says is
        authoritative) the valid lease holder, returning a usable fence
        token — or ``None`` when the partition is unleased or the
        acquire must wait out an unreachable holder's TTL (deferred, not
        forced; the next recovery pass retries)."""
        membership = self.membership
        if membership is None or not membership.leases.is_managed(
            state.table, state.partition_id
        ):
            return None
        try:
            lease = membership.ensure_holder(
                state.table, state.partition_id, holder
            )
        except MembershipError:
            obs.count("soe.movement.lease_reseat_deferred")
            return None
        if lease is not None:
            state.lease_epoch = lease.epoch
            self.journal.record(state)
        return membership.leases.token_for(state.table, state.partition_id)

    def _finish(self, state: MoveState, outcome: str) -> None:
        state.phase = outcome
        state.history.append(outcome)
        self.journal.record(state)
        obs.count("soe.movement.moves", outcome=outcome)
