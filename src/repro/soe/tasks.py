"""Task DAGs: the unit of distributed execution (§IV.B).

"The execution of distributed queries is controlled by a distributed query
coordinator service (v2dqp) which translates each query to a directed
acyclic graph of tasks. The tasks are being sent to the query service
instances where they are compiled and executed."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import CoordinationError


@dataclass(frozen=True)
class Filter:
    """A simple pushed-down predicate: column <op> value."""

    column: str
    op: str  # "=", "<>", "<", "<=", ">", ">="
    value: Any


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate: op in {count, sum, min, max, avg} over a column."""

    op: str
    column: str | None = None  # None only for count

    def __post_init__(self) -> None:
        if self.op not in ("count", "sum", "min", "max", "avg"):
            raise CoordinationError(f"unknown aggregate {self.op!r}")
        if self.op != "count" and self.column is None:
            raise CoordinationError(f"{self.op} needs a column")


@dataclass
class Task:
    """One node-assigned unit of work in the DAG."""

    task_id: int
    kind: str               # partial_aggregate | merge_aggregate | build_hash | join_partial | collect
    node_id: str
    params: dict[str, Any] = field(default_factory=dict)
    inputs: list[int] = field(default_factory=list)


@dataclass
class TaskDag:
    """The coordinator's plan: tasks plus dependency edges."""

    tasks: list[Task] = field(default_factory=list)

    def add(self, kind: str, node_id: str, params: dict[str, Any], inputs: list[int] | None = None) -> Task:
        task = Task(
            task_id=len(self.tasks),
            kind=kind,
            node_id=node_id,
            params=params,
            inputs=list(inputs or []),
        )
        self.tasks.append(task)
        return task

    def topological_order(self) -> list[Task]:
        """Tasks in dependency order (inputs first)."""
        indegree = {task.task_id: len(task.inputs) for task in self.tasks}
        dependents: dict[int, list[int]] = {task.task_id: [] for task in self.tasks}
        for task in self.tasks:
            for dependency in task.inputs:
                dependents[dependency].append(task.task_id)
        ready = [task_id for task_id, degree in indegree.items() if degree == 0]
        order: list[Task] = []
        while ready:
            current = ready.pop()
            order.append(self.tasks[current])
            for dependent in dependents[current]:
                indegree[dependent] -= 1
                if indegree[dependent] == 0:
                    ready.append(dependent)
        if len(order) != len(self.tasks):
            raise CoordinationError("task DAG has a cycle")
        return order

    def describe(self) -> str:
        lines = []
        for task in self.tasks:
            inputs = f" <- {task.inputs}" if task.inputs else ""
            lines.append(f"t{task.task_id} {task.kind}@{task.node_id}{inputs}")
        return "\n".join(lines)
