"""The SOE facade: deploy a whole scale-out landscape in one call.

Wires together every Figure 3 component — cluster, shared log, transaction
broker (v2transact), catalog + data discovery (v2catalog), discovery/auth
(v2disc&auth), query/data services (v2lqp), coordinator (v2dqp), cluster
manager + statistics (v2clustermgr / v2stats) — and exposes the user-level
operations: create table, bulk import (prepackaged partitions), insert
through the log, aggregate and join queries with strategy and consistency
choices.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import SoeError
from repro.soe.cluster import NetworkModel, SimulatedCluster
from repro.soe.partitions import hash_partition_rows
from repro.soe.replication import DataNode, make_delete, make_insert
from repro.soe.services.catalog_service import CatalogService, SoeTableMeta
from repro.soe.services.cluster_manager import (
    ClusterManager,
    ClusterStatisticsService,
)
from repro.soe.services.coordinator import (
    AggregateQuery,
    Coordinator,
    JoinQuery,
    PlanCost,
)
from repro.soe.services.discovery import AuthorizationService, DiscoveryService
from repro.soe.services.query_service import QueryService
from repro.soe.services.shared_log import SharedLog
from repro.soe.services.transaction_broker import TransactionBroker
from repro.soe.tasks import AggregateSpec, Filter
from repro.util.retry import RetryPolicy, SimulatedClock


class SoeEngine:
    """One deployed SOE landscape."""

    def __init__(
        self,
        node_count: int = 4,
        node_modes: Sequence[str] | str = "olap",
        log_stripes: int = 2,
        log_replication: int = 2,
        replication: int = 1,
        network: NetworkModel | None = None,
        log_store_factory: Any = None,
        chaos: Any = None,
        retry_policy: RetryPolicy | None = None,
        failover: bool = True,
        staleness_bound: int = 0,
        deadline_seconds: float | None = None,
        breaker_config: Any = None,
    ) -> None:
        if node_count < 1:
            raise SoeError("need at least one node")
        self.cluster = SimulatedCluster(network=network or NetworkModel())
        self.log = SharedLog(
            stripes=log_stripes,
            replication=log_replication,
            store_factory=log_store_factory,
        )
        #: optional repro.chaos.ChaosController; every retry/backoff in the
        #: landscape shares its simulated clock so recovery is replayable
        self.chaos = chaos
        self.clock = chaos.clock if chaos is not None else SimulatedClock()
        policy = retry_policy or RetryPolicy()
        #: shared by broker/coordinator and the movement factories below
        self._retry_policy = policy
        #: a repro.qos BreakerConfig arms circuit breakers on the two SOE
        #: overload seams: cluster transfer and shared-log append
        self.breakers: dict[str, Any] = {}
        if breaker_config is not None:
            from repro.qos.breaker import CircuitBreaker

            self.breakers["soe.transfer"] = CircuitBreaker(
                "soe.transfer", breaker_config, clock=self.clock
            )
            self.breakers["soe.log_append"] = CircuitBreaker(
                "soe.log_append", breaker_config, clock=self.clock
            )
        self.broker = TransactionBroker(
            self.log,
            retry_policy=policy,
            clock=self.clock,
            breaker=self.breakers.get("soe.log_append"),
        )
        self.catalog = CatalogService()
        self.discovery = DiscoveryService()
        #: installed by enable_membership(); None ⇒ legacy (unfenced) mode
        self.membership: Any = None
        self.auth = AuthorizationService()
        self.stats = ClusterStatisticsService(cluster=self.cluster)
        self.manager = ClusterManager(
            self.cluster, self.catalog, self.discovery, self.stats
        )
        self.replication = replication

        modes = (
            [node_modes] * node_count
            if isinstance(node_modes, str)
            else list(node_modes)
        )
        if len(modes) != node_count:
            raise SoeError("node_modes length must equal node_count")

        coordinator_node = self.cluster.add_node("coordinator")
        self.coordinator = Coordinator(
            node_id=coordinator_node.node_id,
            cluster=self.cluster,
            catalog=self.catalog,
            broker=self.broker,
            retry_policy=policy,
            clock=self.clock,
            failover=failover,
            staleness_bound=staleness_bound,
            deadline_seconds=deadline_seconds,
            transfer_breaker=self.breakers.get("soe.transfer"),
        )
        coordinator_node.host("v2dqp", self.coordinator)
        self.discovery.announce("v2dqp", coordinator_node.node_id)
        coordinator_node.host("v2transact", self.broker)
        self.discovery.announce("v2transact", coordinator_node.node_id)
        coordinator_node.host("v2catalog", self.catalog)
        self.discovery.announce("v2catalog", coordinator_node.node_id)
        coordinator_node.host("v2disc&auth", (self.discovery, self.auth))
        coordinator_node.host("v2clustermgr", self.manager)

        self.data_nodes: dict[str, DataNode] = {}
        for index in range(node_count):
            node = self.cluster.add_node(f"worker{index}")
            data_node = DataNode(node.node_id, self.broker, mode=modes[index])
            service = QueryService(node.node_id, data_node)
            self.manager.start_service(node.node_id, "v2lqp", service)
            self.coordinator.register_query_service(service)
            self.data_nodes[node.node_id] = data_node

        # dead-node leakage fix: the cluster tells discovery about
        # membership transitions, so kill() immediately withdraws every
        # announcement of the dead node and revive() restores them
        self.cluster.notify_membership(
            self.discovery.mark_failed, self.discovery.restore
        )

        if chaos is not None:
            chaos.install(cluster=self.cluster, log=self.log)

    # -- membership & fencing -----------------------------------------------------

    def enable_membership(
        self,
        *,
        ttl_seconds: float = 0.05,
        suspect_after: float = 0.02,
        dead_after: float = 0.06,
        heartbeat_interval: float = 0.01,
        enforce: bool = True,
        journal: Any = None,
    ) -> Any:
        """Turn on partition-tolerant membership for this landscape.

        Creates the :class:`~repro.soe.membership.MembershipService`
        (failure detector + epoch-numbered ownership leases), installs
        its :class:`~repro.soe.membership.FencingGuard` on every
        ownership-mutating seam — broker submits, shared-log appends,
        catalog placement swaps, data-node ownership changes and ingest
        — watches every worker, and grants epoch-1 leases for every
        already-placed partition. ``enforce=False`` builds the whole
        apparatus but leaves the guard disabled (the bench's split-brain
        arm). Call again after new tables load to bootstrap their
        leases, or use ``self.membership.bootstrap(table)`` directly.
        """
        from repro.soe.membership import MembershipService

        membership = self.membership
        if membership is None:
            membership = MembershipService(
                self.cluster,
                self.catalog,
                self.clock,
                coordinator=self.coordinator.node_id,
                ttl_seconds=ttl_seconds,
                suspect_after=suspect_after,
                dead_after=dead_after,
                heartbeat_interval=heartbeat_interval,
                enforce=enforce,
                journal=journal,
                discovery=self.discovery,
            )
            self.membership = membership
            self.broker.fencing = membership.guard
            self.log.fencing = membership.guard
            self.catalog.fencing = membership.guard
            for node_id, data_node in sorted(self.data_nodes.items()):
                data_node.fencing = membership.guard
                data_node.cluster = self.cluster
                data_node.gateway = self.coordinator.node_id
                membership.detector.watch(node_id)
        for table in self.catalog.tables():
            membership.bootstrap(table)
        return membership

    # -- DDL / load ---------------------------------------------------------------

    @property
    def worker_ids(self) -> list[str]:
        return sorted(self.data_nodes)

    def create_table(
        self,
        name: str,
        columns: Sequence[str],
        key_columns: Sequence[str],
        partition_count: int | None = None,
    ) -> SoeTableMeta:
        """Register a hash-partitioned SOE table."""
        if partition_count is None:
            partition_count = 2 * len(self.data_nodes)
        meta = SoeTableMeta(
            name=name.lower(),
            columns=[c.lower() for c in columns],
            key_columns=[c.lower() for c in key_columns],
            partition_count=partition_count,
        )
        self.catalog.register_table(meta)
        return meta

    def load(self, table: str, rows: Sequence[Sequence[Any]]) -> int:
        """Bulk import: build prepackaged partitions and distribute them
        round-robin (with ``replication`` replicas per partition)."""
        meta = self.catalog.table(table.lower())
        partitions = hash_partition_rows(
            rows, meta.columns, meta.key_positions, meta.partition_count, meta.name
        )
        workers = self.worker_ids
        for partition in partitions:
            for replica in range(self.replication):
                node_id = workers[(partition.partition_id + replica) % len(workers)]
                clone_payload = partition.to_payload()
                from repro.soe.partitions import PrepackagedPartition

                clone = PrepackagedPartition.from_payload(clone_payload)
                self.data_nodes[node_id].own(
                    meta.name, [clone], meta.key_positions, meta.partition_count
                )
                self.catalog.place_partition(meta.name, partition.partition_id, node_id)
        return len(rows)

    # -- writes through the log ---------------------------------------------------------

    def insert(self, table: str, rows: list[list[Any]], via: str | None = None) -> int:
        """Commit an insert transaction via the broker; returns its LSN.

        With membership enabled the write carries fence tokens: the
        front door (``via=None``) presents the coordinator's *current*
        lease view, while ``via=<worker>`` models a client whose write
        enters at that worker — the hop to the gateway is charged to the
        network (so a partitioned worker cannot even reach the broker)
        and the tokens presented are what that worker *believes* it
        holds, which is exactly where a healed zombie gets fenced."""
        name = table.lower()
        self.catalog.table(name)
        operation = make_insert(name, rows)
        if self.membership is None:
            return self.broker.submit([operation])
        if via is None:
            fence = self.membership.current_tokens(name)
        else:
            from repro.soe.cluster import approx_row_bytes

            payload = sum(approx_row_bytes(row) for row in rows)
            self.cluster.transfer(via, self.coordinator.node_id, payload)
            fence = self.membership.cached_tokens(via, name)
        return self.broker.submit([operation], fence=fence)

    def delete(self, table: str, column: str, value: Any) -> int:
        """Commit a delete-by-value transaction; returns its LSN."""
        name = table.lower()
        self.catalog.table(name)
        fence = (
            self.membership.current_tokens(name)
            if self.membership is not None
            else None
        )
        return self.broker.submit([make_delete(name, column, value)], fence=fence)

    def catch_up_all(self) -> int:
        """Force every OLAP node to apply the full log."""
        return sum(
            node.catch_up()
            for node in self.data_nodes.values()
            if node.mode == "olap"
        )

    # -- queries ---------------------------------------------------------------------------

    def aggregate(
        self,
        table: str,
        group_by: Sequence[str] = (),
        aggregates: Sequence[tuple[str, str | None]] = (("count", None),),
        filters: Sequence[tuple[str, str, Any]] = (),
        consistency: str = "eventual",
    ) -> tuple[list[list[Any]], PlanCost]:
        query = AggregateQuery(
            table=table.lower(),
            group_by=tuple(c.lower() for c in group_by),
            aggregates=tuple(AggregateSpec(op, col) for op, col in aggregates),
            filters=tuple(Filter(*f) for f in filters),
            consistency=consistency,
        )
        return self.coordinator.run_aggregate(query)

    def join(
        self,
        fact_table: str,
        dim_table: str,
        fact_key: str,
        dim_key: str,
        group_column: str,
        aggregates: Sequence[tuple[str, str | None]],
        strategy: str = "auto",
        consistency: str = "eventual",
    ) -> tuple[list[list[Any]], PlanCost]:
        query = JoinQuery(
            fact_table=fact_table.lower(),
            dim_table=dim_table.lower(),
            fact_key=fact_key.lower(),
            dim_key=dim_key.lower(),
            group_column=group_column.lower(),
            aggregates=tuple(AggregateSpec(op, col) for op, col in aggregates),
            strategy=strategy,
            consistency=consistency,
        )
        return self.coordinator.run_join(query)

    # -- online data movement -----------------------------------------------------------------

    def make_mover(self, governor: Any = None, **kwargs: Any) -> Any:
        """A :class:`~repro.soe.movement.PartitionMover` wired to this
        landscape (shared clock, retry policy, transfer breaker, chaos)."""
        from repro.soe.movement import PartitionMover

        return PartitionMover(
            cluster=self.cluster,
            catalog=self.catalog,
            broker=self.broker,
            data_nodes=self.data_nodes,
            clock=self.clock,
            retry_policy=self._retry_policy,
            transfer_breaker=self.breakers.get("soe.transfer"),
            chaos=self.chaos,
            governor=governor,
            membership=kwargs.pop("membership", self.membership),
            **kwargs,
        )

    def make_rebalancer(self, mover: Any = None, **kwargs: Any) -> Any:
        """An :class:`~repro.soe.movement.AutoRebalancer` consuming this
        landscape's v2stats hotspot signal."""
        from repro.soe.movement import AutoRebalancer

        return AutoRebalancer(
            mover=mover or self.make_mover(),
            stats=self.stats,
            catalog=self.catalog,
            cluster=self.cluster,
            **kwargs,
        )

    # -- monitoring ---------------------------------------------------------------------------

    def statistics(self) -> dict[str, Any]:
        """The landscape's monitoring snapshot."""
        return {
            "nodes": len(self.cluster.nodes),
            "log_tail": self.log.tail,
            "log_stripes": self.log.stripe_lengths(),
            "transactions": self.broker.transactions,
            "network": self.cluster.stats.snapshot(),
            "stats": self.stats.snapshot(),
            "staleness": {
                node_id: node.staleness() for node_id, node in self.data_nodes.items()
            },
        }
