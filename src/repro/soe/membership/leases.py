"""Epoch-fenced ownership leases for the scale-out landscape.

The shared log already fences *log writers* during reconfiguration with
its seal/epoch discipline (``SharedLog.reconfigure``). This module
applies the same seal-before-write idea to *partition ownership*: the
:class:`LeaseManager` issues epoch-numbered leases per ``(table,
partition)``, and every ownership-mutating seam (``DataNode`` writes and
transfer, ``CatalogService.swap_placement``, ``TransactionBroker`` /
``SharedLog.append``, the ``PartitionMover`` flip) validates a
:class:`FenceToken` against the current lease before touching state.

Acquiring a lease **is** the seal: ``acquire`` bumps the partition's
epoch and instantly invalidates every token minted at an earlier epoch,
so a zombie owner — alive, serving, but partitioned away from the
coordinator — gets a non-retryable :class:`~repro.errors.FencedError`
instead of corrupting state. Epochs are monotone per partition and
survive revocation and expiry, so a token can never be resurrected.

Every grant/renew/revoke/expire is journaled (:class:`LeaseJournal`,
the ``MoveJournal`` idiom) so a view change replays deterministically:
``LeaseManager.recover(journal, ...)`` folds the journal back into the
exact lease table, and :meth:`LeaseManager.exactly_one_holder_violations`
checks the Jepsen-style invariant — at most one grant per (table,
partition, epoch) — over everything that ever happened.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Iterable

from repro import obs
from repro.analysis.racecheck import track_fields
from repro.errors import FencedError, LeaseExpiredError, MembershipError
from repro.util.retry import SimulatedClock


@dataclass(frozen=True)
class FenceToken:
    """The capability a lease-holder presents on every ownership-mutating
    path: compared by value against the current lease — table, partition,
    holder, and (crucially) epoch must all match."""

    table: str
    partition_id: int
    holder: str
    epoch: int

    def describe(self) -> str:
        return f"{self.table}#{self.partition_id}@e{self.epoch}:{self.holder}"


@dataclass
class Lease:
    """One epoch-numbered ownership grant with a TTL on the simulated
    clock. ``revoked`` is a one-way bit; supersession is expressed by a
    *newer* lease at a higher epoch, never by mutating the old one."""

    table: str
    partition_id: int
    holder: str
    epoch: int
    granted_at: float
    expires_at: float
    revoked: bool = False

    def token(self) -> FenceToken:
        return FenceToken(self.table, self.partition_id, self.holder, self.epoch)

    def expired(self, now: float) -> bool:
        return now > self.expires_at

    def to_dict(self) -> dict[str, Any]:
        return {
            "table": self.table,
            "partition_id": self.partition_id,
            "holder": self.holder,
            "epoch": self.epoch,
            "granted_at": self.granted_at,
            "expires_at": self.expires_at,
            "revoked": self.revoked,
        }


def _key(table: str, partition_id: int) -> str:
    return f"{table}#{partition_id}"


class LeaseJournal:
    """Append-only lease event journal (the ``MoveJournal`` idiom): the
    crash-recovery source of truth for the membership view. Events are
    plain dicts so a journal can be printed, diffed, and replayed."""

    def __init__(self) -> None:
        self._records: dict[str, list[dict[str, Any]]] = {}
        self._lock = threading.Lock()

    def record(self, event: str, lease: Lease, at: float) -> None:
        entry = dict(lease.to_dict(), event=event, at=at)
        with self._lock:
            self._records.setdefault(
                _key(lease.table, lease.partition_id), []
            ).append(entry)

    def entries(self, table: str, partition_id: int) -> list[dict[str, Any]]:
        with self._lock:
            return [dict(r) for r in self._records.get(_key(table, partition_id), ())]

    def keys(self) -> list[str]:
        with self._lock:
            return sorted(self._records)

    def all_entries(self) -> list[dict[str, Any]]:
        with self._lock:
            return [
                dict(record)
                for key in sorted(self._records)
                for record in self._records[key]
            ]


@track_fields("_leases")
class LeaseManager:
    """Issues, renews, revokes, validates, and recovers ownership leases.

    Thread-safe: the flip path (mover) races holder renews/validates in
    the schedcheck ``lease_flip_fencing`` harness, so every state
    transition happens under one lock and epochs are read-modify-written
    atomically.
    """

    def __init__(
        self,
        clock: SimulatedClock | None = None,
        *,
        ttl_seconds: float = 1.0,
        journal: LeaseJournal | None = None,
    ) -> None:
        if ttl_seconds <= 0:
            raise MembershipError("lease ttl_seconds must be > 0")
        self.clock = clock or SimulatedClock()
        self.ttl_seconds = ttl_seconds
        self.journal = journal or LeaseJournal()
        self._leases: dict[tuple[str, int], Lease] = {}
        #: last epoch ever granted per partition — survives revoke/expiry
        #: so epochs are monotone and stale tokens stay stale forever
        self._epochs: dict[tuple[str, int], int] = {}
        self._lock = threading.Lock()

    # -- grants -------------------------------------------------------------

    def grant(
        self,
        table: str,
        partition_id: int,
        holder: str,
        *,
        ttl_seconds: float | None = None,
    ) -> Lease:
        """Grant ``holder`` the next-epoch lease. A grant *supersedes*:
        like sealing a log segment, it instantly fences every token of
        the previous holder — which is exactly why callers coordinating
        with an unreachable holder must wait out its TTL first (see
        ``MembershipService.grant``)."""
        ttl = self.ttl_seconds if ttl_seconds is None else ttl_seconds
        now = self.clock.now
        with self._lock:
            epoch = self._epochs.get((table, partition_id), 0) + 1
            lease = Lease(
                table=table,
                partition_id=partition_id,
                holder=holder,
                epoch=epoch,
                granted_at=now,
                expires_at=now + ttl,
            )
            self._epochs[(table, partition_id)] = epoch
            self._leases[(table, partition_id)] = lease
            self.journal.record("grant", lease, now)
        obs.count("soe.membership.lease", op="grant")
        return lease

    def renew(self, token: FenceToken, *, ttl_seconds: float | None = None) -> Lease:
        """Extend the holder's TTL. Requires a *currently valid* token:
        a superseded or expired holder cannot renew its way back in — it
        must re-acquire (a new epoch, a new decision)."""
        ttl = self.ttl_seconds if ttl_seconds is None else ttl_seconds
        now = self.clock.now
        with self._lock:
            self._validate_locked(token, now)
            lease = self._leases[(token.table, token.partition_id)]
            renewed = Lease(
                table=lease.table,
                partition_id=lease.partition_id,
                holder=lease.holder,
                epoch=lease.epoch,
                granted_at=lease.granted_at,
                expires_at=now + ttl,
            )
            self._leases[(token.table, token.partition_id)] = renewed
            self.journal.record("renew", renewed, now)
        obs.count("soe.membership.lease", op="renew")
        return renewed

    def revoke(self, table: str, partition_id: int, holder: str) -> bool:
        """Revoke ``holder``'s lease if it is still the current holder
        (e.g. the donor at flip commit). Returns False — and journals
        nothing — if a newer epoch already superseded it."""
        now = self.clock.now
        with self._lock:
            lease = self._leases.get((table, partition_id))
            if lease is None or lease.holder != holder or lease.revoked:
                return False
            revoked = Lease(
                table=lease.table,
                partition_id=lease.partition_id,
                holder=lease.holder,
                epoch=lease.epoch,
                granted_at=lease.granted_at,
                expires_at=lease.expires_at,
                revoked=True,
            )
            self._leases[(table, partition_id)] = revoked
            self.journal.record("revoke", revoked, now)
        obs.count("soe.membership.lease", op="revoke")
        return True

    def expire_sweep(self) -> list[Lease]:
        """Journal an ``expire`` event for every lease whose TTL elapsed
        (validation already rejects them; the sweep makes expiry visible
        to the journal and the invariant checker)."""
        now = self.clock.now
        swept: list[Lease] = []
        with self._lock:
            for key, lease in sorted(self._leases.items()):
                if not lease.revoked and lease.expired(now):
                    revoked = Lease(
                        table=lease.table,
                        partition_id=lease.partition_id,
                        holder=lease.holder,
                        epoch=lease.epoch,
                        granted_at=lease.granted_at,
                        expires_at=lease.expires_at,
                        revoked=True,
                    )
                    self._leases[key] = revoked
                    self.journal.record("expire", revoked, now)
                    swept.append(revoked)
        for _ in swept:
            obs.count("soe.membership.lease", op="expire")
        return swept

    # -- reads --------------------------------------------------------------

    def current(self, table: str, partition_id: int) -> Lease | None:
        """The latest lease record for the partition (may be revoked or
        expired — use :meth:`holder` for the *valid* holder)."""
        with self._lock:
            return self._leases.get((table, partition_id))

    def holder(self, table: str, partition_id: int) -> str | None:
        """The holder of the currently *valid* (unrevoked, unexpired)
        lease, or None."""
        now = self.clock.now
        with self._lock:
            lease = self._leases.get((table, partition_id))
            if lease is None or lease.revoked or lease.expired(now):
                return None
            return lease.holder

    def token_for(self, table: str, partition_id: int) -> FenceToken | None:
        """The current valid holder's token (the front door always sees
        the live view), or None."""
        now = self.clock.now
        with self._lock:
            lease = self._leases.get((table, partition_id))
            if lease is None or lease.revoked or lease.expired(now):
                return None
            return lease.token()

    def leased_partitions(self, table: str) -> list[int]:
        """Partition ids of ``table`` that have ever been leased."""
        with self._lock:
            return sorted(pid for (t, pid) in self._leases if t == table)

    def is_managed(self, table: str, partition_id: int) -> bool:
        with self._lock:
            return (table, partition_id) in self._leases

    # -- validation ---------------------------------------------------------

    def validate(self, token: FenceToken) -> None:
        """The fencing check: raise :class:`FencedError` unless ``token``
        matches the current lease at the current epoch, unrevoked and
        unexpired. Non-retryable by construction."""
        self._check(token, self.clock.now)

    def _check(self, token: FenceToken, now: float) -> None:
        with self._lock:
            self._validate_locked(token, now)

    def _validate_locked(self, token: FenceToken, now: float) -> None:
        lease = self._leases.get((token.table, token.partition_id))
        if lease is None:
            raise FencedError(
                f"no lease exists for {token.describe()} (unmanaged partition?)"
            )
        if lease.epoch != token.epoch or lease.holder != token.holder:
            raise FencedError(
                f"stale fence token {token.describe()}: current lease is "
                f"epoch {lease.epoch} held by {lease.holder!r}"
            )
        if lease.revoked:
            raise FencedError(f"lease for {token.describe()} was revoked")
        if lease.expired(now):
            raise LeaseExpiredError(
                f"lease for {token.describe()} expired at "
                f"t={lease.expires_at:.6f} (now t={now:.6f})"
            )

    # -- recovery & invariants ---------------------------------------------

    @classmethod
    def recover(
        cls,
        journal: LeaseJournal,
        clock: SimulatedClock | None = None,
        *,
        ttl_seconds: float = 1.0,
    ) -> "LeaseManager":
        """Rebuild the lease table by folding the journal, exactly like
        ``MoveJournal`` recovery: the journal is the source of truth, so
        two recoveries from the same journal yield identical views."""
        manager = cls(clock=clock, ttl_seconds=ttl_seconds, journal=LeaseJournal())
        for entry in journal.all_entries():
            lease = Lease(
                table=entry["table"],
                partition_id=entry["partition_id"],
                holder=entry["holder"],
                epoch=entry["epoch"],
                granted_at=entry["granted_at"],
                expires_at=entry["expires_at"],
                revoked=entry["revoked"],
            )
            key = (lease.table, lease.partition_id)
            with manager._lock:
                current = manager._leases.get(key)
                if current is None or lease.epoch >= current.epoch:
                    manager._leases[key] = lease
                manager._epochs[key] = max(
                    manager._epochs.get(key, 0), lease.epoch
                )
                manager.journal.record(entry["event"], lease, entry["at"])
        return manager

    def exactly_one_holder_violations(self) -> list[str]:
        """The Jepsen invariant, checked over the full journal: for every
        (table, partition, epoch) there is exactly one grant, and grants
        within a partition carry strictly increasing epochs. Returns
        human-readable violations (empty == invariant holds)."""
        violations: list[str] = []
        grants: dict[tuple[str, int, int], list[str]] = {}
        last_epoch: dict[tuple[str, int], int] = {}
        for entry in self.journal.all_entries():
            if entry["event"] != "grant":
                continue
            key = (entry["table"], entry["partition_id"], entry["epoch"])
            grants.setdefault(key, []).append(entry["holder"])
            pkey = (entry["table"], entry["partition_id"])
            if entry["epoch"] <= last_epoch.get(pkey, 0):
                violations.append(
                    f"non-monotone epoch {entry['epoch']} granted for "
                    f"{pkey[0]}#{pkey[1]} after epoch {last_epoch[pkey]}"
                )
            last_epoch[pkey] = max(last_epoch.get(pkey, 0), entry["epoch"])
        for (table, pid, epoch), holders in sorted(grants.items()):
            if len(holders) > 1:
                violations.append(
                    f"{len(holders)} holders granted for {table}#{pid} at "
                    f"epoch {epoch}: {holders}"
                )
        return violations


class FencingGuard:
    """The shared validation seam installed on ``DataNode``,
    ``CatalogService``, ``TransactionBroker``, and ``SharedLog``.

    A guard with ``enabled=False`` passes everything — that is bench
    E29's unfenced arm (today's behaviour, kept measurable). A partition
    that has never been leased also passes, so legacy paths (bulk load,
    offline moves without membership) keep working unchanged.
    """

    def __init__(
        self,
        leases: LeaseManager,
        *,
        catalog: Any = None,
        enabled: bool = True,
    ) -> None:
        self.leases = leases
        self.catalog = catalog
        self.enabled = enabled

    @staticmethod
    def _tokens(fence: Any) -> tuple[FenceToken, ...]:
        if fence is None:
            return ()
        if isinstance(fence, FenceToken):
            return (fence,)
        return tuple(fence)

    def _token_for(
        self, tokens: Iterable[FenceToken], table: str, partition_id: int
    ) -> FenceToken | None:
        for token in tokens:
            if token.table == table and token.partition_id == partition_id:
                return token
        return None

    def check_partition(self, table: str, partition_id: int, fence: Any) -> None:
        """Validate one ownership mutation (install/release/swap) against
        the partition's lease; unleased partitions pass."""
        if not self.enabled or not self.leases.is_managed(table, partition_id):
            return
        token = self._token_for(self._tokens(fence), table, partition_id)
        if token is None:
            obs.count("soe.membership.fenced", reason="missing_token")
            raise FencedError(
                f"unfenced ownership mutation on leased {table}#{partition_id}"
            )
        try:
            self.leases.validate(token)
        except FencedError:
            obs.count("soe.membership.fenced", reason="stale_token")
            raise

    def _routed_partitions(self, operation: dict[str, Any], table: str) -> list[int]:
        """Partitions a broker/log operation touches: row-routed when the
        catalog can route, otherwise conservatively every leased
        partition of the table."""
        leased = self.leases.leased_partitions(table)
        if not leased:
            return []
        if (
            self.catalog is not None
            and operation.get("op") == "insert"
            and operation.get("rows")
        ):
            try:
                meta = self.catalog.table(table)
                from repro.soe.partitions import route_row

                return sorted(
                    {
                        route_row(row, meta.key_positions, meta.partition_count)
                        for row in operation["rows"]
                    }
                )
            except Exception:
                # unroutable rows / unregistered table: fall back to the
                # conservative "every leased partition" check
                obs.count("soe.membership.route_fallback")
                return leased
        return leased

    def check_write(self, operation: dict[str, Any], fence: Any) -> None:
        """Validate one logical write (broker submit / log append op)
        against the leases of every partition it routes to."""
        if not self.enabled:
            return
        table = operation.get("table")
        if not table:
            return
        tokens = self._tokens(fence)
        for partition_id in self._routed_partitions(operation, table):
            token = self._token_for(tokens, table, partition_id)
            if token is None:
                obs.count("soe.membership.fenced", reason="missing_token")
                raise FencedError(
                    f"unfenced write routed to leased {table}#{partition_id}"
                )
            try:
                self.leases.validate(token)
            except FencedError:
                obs.count("soe.membership.fenced", reason="stale_token")
                raise

    def check_append(self, payload: Any, fence: Any) -> None:
        """Validate a shared-log payload (defence in depth below the
        broker: a zombie appending directly to the log is still fenced)."""
        if not self.enabled or not isinstance(payload, dict):
            return
        for operation in payload.get("ops", ()):
            if isinstance(operation, dict):
                self.check_write(operation, fence)
