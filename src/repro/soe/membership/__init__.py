"""repro.soe.membership — partition-tolerant membership and fencing.

The SOE's answer to gray failures: a heartbeat
:class:`FailureDetector` fed by per-link reachability (not the
crash-stop ``alive`` bit), a :class:`LeaseManager` issuing
epoch-numbered ownership leases per partition (journaled like
``MoveJournal`` for deterministic view-change recovery), and a
:class:`FencingGuard` validating :class:`FenceToken` s on every
ownership-mutating seam — ``DataNode`` writes/transfer,
``CatalogService.swap_placement``, ``TransactionBroker`` /
``SharedLog.append``, and the ``PartitionMover`` flip. A stale-epoch
writer gets a non-retryable :class:`~repro.errors.FencedError` instead
of corrupting state; bench E29 measures the difference.

Wiring for a full landscape lives in :class:`MembershipService`
(``SoeEngine.enable_membership()``): detector verdicts drive discovery
withdraw/restore and lease fail-over, and per-node token caches model
the stale view a partitioned node keeps serving with.
"""

from repro.soe.membership.detector import (
    ALIVE,
    DEAD,
    SUSPECT,
    FailureDetector,
    Verdict,
)
from repro.soe.membership.leases import (
    FenceToken,
    FencingGuard,
    Lease,
    LeaseJournal,
    LeaseManager,
)
from repro.soe.membership.service import MembershipService

__all__ = [
    "ALIVE",
    "DEAD",
    "SUSPECT",
    "FailureDetector",
    "FenceToken",
    "FencingGuard",
    "Lease",
    "LeaseJournal",
    "LeaseManager",
    "MembershipService",
    "Verdict",
]
