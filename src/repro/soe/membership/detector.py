"""Heartbeat-driven failure detection on the simulated clock.

The chaos layer's crash-stop model flips a globally-consistent
``Node.alive`` bit — every observer agrees instantly, which is exactly
what real failure detection never gets. The :class:`FailureDetector`
instead *probes*: each tick it round-trips a heartbeat over
``SimulatedCluster.transfer`` from its origin node to every watched
node, so it is fed by per-link reachability (the asymmetric partition
matrix) and by chaos drop faults, not by the alive bit. A node that is
up but unreachable — the gray failure — looks exactly like a dead one,
which is the honest view a coordinator actually has.

Verdicts follow the classic timeout ladder on ``SimulatedClock``:

* ``alive``   — heard within ``suspect_after`` seconds,
* ``suspect`` — silent for ``suspect_after`` but not yet ``dead_after``,
* ``dead``    — silent for ``dead_after`` seconds.

Transitions are recorded (and counted into ``soe.membership.verdicts``)
and routed to service discovery: a ``dead`` verdict withdraws the node's
announcements (``DiscoveryService.mark_failed``), a recovery re-announces
them (``restore``). View changes (lease transfer off a dead holder) are
the :class:`~repro.soe.membership.service.MembershipService`'s job —
the detector only decides *who is silent*, deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro import obs
from repro.errors import MembershipError, TransferDroppedError
from repro.util.retry import SimulatedClock

ALIVE = "alive"
SUSPECT = "suspect"
DEAD = "dead"

#: heartbeat payload size charged to the network model per probe leg
HEARTBEAT_BYTES = 32


@dataclass(frozen=True)
class Verdict:
    """One detector state transition."""

    node_id: str
    previous: str
    state: str
    at: float
    silence: float

    def describe(self) -> str:
        return (
            f"{self.node_id}: {self.previous} -> {self.state} "
            f"t={self.at:.6f} silent={self.silence:.6f}s"
        )


class FailureDetector:
    """Probes watched nodes from ``origin`` and keeps a per-node
    alive/suspect/dead state machine on the simulated clock."""

    def __init__(
        self,
        cluster: Any,
        clock: SimulatedClock,
        *,
        origin: str,
        suspect_after: float = 0.02,
        dead_after: float = 0.06,
        interval: float = 0.01,
        discovery: Any = None,
    ) -> None:
        if not 0 < suspect_after < dead_after:
            raise MembershipError(
                "need 0 < suspect_after < dead_after for a monotone ladder"
            )
        if interval <= 0:
            raise MembershipError("heartbeat interval must be > 0")
        self.cluster = cluster
        self.clock = clock
        self.origin = origin
        self.suspect_after = suspect_after
        self.dead_after = dead_after
        self.interval = interval
        self.discovery = discovery
        self._last_heard: dict[str, float] = {}
        self._state: dict[str, str] = {}
        self.verdicts: list[Verdict] = []

    # -- wiring -------------------------------------------------------------

    def watch(self, node_id: str) -> None:
        """Start probing ``node_id`` (initially alive, heard just now)."""
        self.cluster.node(node_id)
        self._last_heard.setdefault(node_id, self.clock.now)
        self._state.setdefault(node_id, ALIVE)

    def watched(self) -> list[str]:
        return sorted(self._state)

    def state(self, node_id: str) -> str:
        try:
            return self._state[node_id]
        except KeyError:
            raise MembershipError(f"node {node_id!r} is not watched") from None

    def dead_nodes(self) -> list[str]:
        return sorted(n for n, s in self._state.items() if s == DEAD)

    # -- probing ------------------------------------------------------------

    def probe(self, node_id: str) -> bool:
        """One heartbeat round trip. Fails on a dead node, a cut link in
        either direction, or a chaos-dropped heartbeat (the gray cases
        that make a detector necessary)."""
        node = self.cluster.nodes.get(node_id)
        if node is None or not node.alive:
            return False
        try:
            self.cluster.transfer(self.origin, node_id, HEARTBEAT_BYTES)
            self.cluster.transfer(node_id, self.origin, HEARTBEAT_BYTES)
        except TransferDroppedError:
            return False
        return True

    def tick(self, advance: float | None = None) -> list[Verdict]:
        """Advance the clock one heartbeat interval (or ``advance``
        seconds), probe every watched node in sorted order, and return
        the verdict transitions this tick produced."""
        self.clock.advance(self.interval if advance is None else advance)
        now = self.clock.now
        transitions: list[Verdict] = []
        for node_id in sorted(self._state):
            if self.probe(node_id):
                self._last_heard[node_id] = now
                new_state = ALIVE
            else:
                silence = now - self._last_heard[node_id]
                if silence >= self.dead_after:
                    new_state = DEAD
                elif silence >= self.suspect_after:
                    new_state = SUSPECT
                else:
                    new_state = self._state[node_id]
            previous = self._state[node_id]
            if new_state != previous:
                self._state[node_id] = new_state
                verdict = Verdict(
                    node_id=node_id,
                    previous=previous,
                    state=new_state,
                    at=now,
                    silence=now - self._last_heard[node_id],
                )
                self.verdicts.append(verdict)
                transitions.append(verdict)
                obs.count(
                    "soe.membership.verdicts", node=node_id, state=new_state
                )
                if self.discovery is not None:
                    if new_state == DEAD:
                        self.discovery.mark_failed(node_id)
                    elif previous == DEAD:
                        self.discovery.restore(node_id)
        return transitions
