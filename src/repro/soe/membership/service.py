"""The membership control loop: detector verdicts → lease view changes.

:class:`MembershipService` is the coordinator-side bundle that makes the
pieces act like one protocol:

* a :class:`~repro.soe.membership.detector.FailureDetector` probing the
  workers over real (reachability-gated) transfers,
* a :class:`~repro.soe.membership.leases.LeaseManager` holding the
  epoch-numbered ownership view, journaled for deterministic recovery,
* a :class:`~repro.soe.membership.leases.FencingGuard` installed on
  every ownership-mutating seam, and
* per-node **token caches** modelling what each node *believes* it
  holds. Grants, revokes, and renews propagate to a node's cache only
  while the node is reachable from the coordinator — an isolated node
  keeps serving with the tokens it last heard about. That stale cache is
  the zombie, and the reason fencing (not memory) has to be the gate.

The safety rule lives in :meth:`grant`: a new-epoch lease over a
*still-valid* lease of an **unreachable** holder is refused until the
old lease's TTL elapses — the zombie can count on its lease exactly as
long as the coordinator must wait, the classic lease bargain. A
reachable holder can be superseded immediately (revocation is
deliverable). :meth:`step` runs one membership tick: probe, sweep
expiries, renew reachable holders, and fail leases of dead holders over
to surviving catalog replicas.
"""

from __future__ import annotations

from typing import Any

from repro import obs
from repro.errors import CoordinationError, MembershipError
from repro.soe.membership.detector import DEAD, FailureDetector
from repro.soe.membership.leases import (
    FenceToken,
    FencingGuard,
    Lease,
    LeaseJournal,
    LeaseManager,
)
from repro.util.retry import SimulatedClock


class MembershipService:
    """Coordinator-side membership: failure detection, lease view
    changes, fencing-guard installation, and node-visible token caches."""

    def __init__(
        self,
        cluster: Any,
        catalog: Any,
        clock: SimulatedClock,
        *,
        coordinator: str = "coordinator",
        ttl_seconds: float = 0.05,
        suspect_after: float = 0.02,
        dead_after: float = 0.06,
        heartbeat_interval: float = 0.01,
        enforce: bool = True,
        journal: LeaseJournal | None = None,
        discovery: Any = None,
    ) -> None:
        self.cluster = cluster
        self.catalog = catalog
        self.clock = clock
        self.coordinator = coordinator
        self.leases = LeaseManager(
            clock=clock, ttl_seconds=ttl_seconds, journal=journal
        )
        self.detector = FailureDetector(
            cluster,
            clock,
            origin=coordinator,
            suspect_after=suspect_after,
            dead_after=dead_after,
            interval=heartbeat_interval,
            discovery=discovery,
        )
        self.guard = FencingGuard(self.leases, catalog=catalog, enabled=enforce)
        #: node id -> {(table, partition): the token the node believes in}
        self._node_tokens: dict[str, dict[tuple[str, int], FenceToken]] = {}

    # -- reachability-aware token propagation -------------------------------

    def reachable(self, node_id: str) -> bool:
        """Coordinator <-> node round trip possible right now?"""
        return self.cluster.reachable(
            self.coordinator, node_id
        ) and self.cluster.reachable(node_id, self.coordinator)

    def _push_token(self, lease: Lease) -> None:
        if self.reachable(lease.holder):
            self._node_tokens.setdefault(lease.holder, {})[
                (lease.table, lease.partition_id)
            ] = lease.token()

    def _drop_token(self, node_id: str, table: str, partition_id: int) -> None:
        if self.reachable(node_id):
            self._node_tokens.get(node_id, {}).pop((table, partition_id), None)

    def cached_tokens(self, node_id: str, table: str | None = None) -> tuple[FenceToken, ...]:
        """What ``node_id`` believes it holds — possibly stale if the
        node has been partitioned away. This is what a node presents on
        its own write paths."""
        cache = self._node_tokens.get(node_id, {})
        return tuple(
            token
            for (t, _pid), token in sorted(cache.items())
            if table is None or t == table
        )

    def current_tokens(self, table: str) -> tuple[FenceToken, ...]:
        """Fresh tokens of the current valid holders (the front-door
        view: the coordinator always routes by the live lease table)."""
        tokens = []
        for partition_id in self.leases.leased_partitions(table):
            token = self.leases.token_for(table, partition_id)
            if token is not None:
                tokens.append(token)
        return tuple(tokens)

    # -- lease operations ---------------------------------------------------

    def bootstrap(self, table: str) -> list[Lease]:
        """Grant epoch-1 leases for every placed partition of ``table``
        to its deterministic primary replica and seed the holders'
        caches. Idempotent per partition."""
        granted: list[Lease] = []
        for partition_id, replicas in sorted(self.catalog.placement_of(table).items()):
            if self.leases.is_managed(table, partition_id):
                continue
            primary = replicas[partition_id % len(replicas)]
            lease = self.leases.grant(table, partition_id, primary)
            self._push_token(lease)
            granted.append(lease)
        return granted

    def grant(self, table: str, partition_id: int, holder: str) -> Lease:
        """Grant ``holder`` the next-epoch lease (the mover's
        before-the-flip step, and the view-change primitive).

        Refuses — ``MembershipError`` — while the current lease is still
        valid and its holder is unreachable: fencing an owner that may
        still be serving under an unexpired lease is exactly the
        split-brain this module exists to prevent. Wait out the TTL.
        """
        current = self.leases.current(table, partition_id)
        if (
            current is not None
            and current.holder != holder
            and not current.revoked
            and not current.expired(self.clock.now)
            and not self.reachable(current.holder)
        ):
            raise MembershipError(
                f"cannot fence unreachable holder {current.holder!r} of "
                f"{table}#{partition_id} before its lease expires at "
                f"t={current.expires_at:.6f} (now t={self.clock.now:.6f})"
            )
        previous_holder = current.holder if current is not None else None
        lease = self.leases.grant(table, partition_id, holder)
        self._push_token(lease)
        if previous_holder is not None and previous_holder != holder:
            # the superseded holder learns only if revocation is deliverable;
            # otherwise its cache keeps the stale token — the zombie
            self._drop_token(previous_holder, table, partition_id)
        return lease

    def ensure_holder(self, table: str, partition_id: int, holder: str) -> Lease | None:
        """Roll-forward/rollback helper: make ``holder`` the valid
        holder, acquiring only if it is not already."""
        if self.leases.holder(table, partition_id) == holder:
            return None
        return self.grant(table, partition_id, holder)

    def revoke(self, table: str, partition_id: int, holder: str) -> bool:
        """Revoke ``holder``'s lease (the donor at flip commit) and drop
        its cached token if the revocation is deliverable."""
        revoked = self.leases.revoke(table, partition_id, holder)
        self._drop_token(holder, table, partition_id)
        return revoked

    def holder(self, table: str, partition_id: int) -> str | None:
        return self.leases.holder(table, partition_id)

    # -- the control loop ---------------------------------------------------

    def _renew_reachable(self) -> int:
        """Manager-side auto-renew for reachable holders (stands in for
        each node's heartbeat-piggybacked renewals); an isolated holder
        cannot renew, so its lease — and its zombie window — expires."""
        renewed = 0
        for node_id in sorted(self._node_tokens):
            if not self.reachable(node_id):
                continue
            for key in sorted(self._node_tokens[node_id]):
                table, partition_id = key
                lease = self.leases.current(table, partition_id)
                if (
                    lease is not None
                    and lease.holder == node_id
                    and not lease.revoked
                    and not lease.expired(self.clock.now)
                ):
                    fresh = self.leases.renew(lease.token())
                    self._node_tokens[node_id][key] = fresh.token()
                    renewed += 1
        return renewed

    def _fail_over_dead(self) -> list[Lease]:
        """Move leases off dead-verdict holders onto surviving catalog
        replicas — deferred (not forced) while :meth:`grant`'s TTL rule
        says the old holder might still believe its lease."""
        changed: list[Lease] = []
        dead = set(self.detector.dead_nodes())
        if not dead:
            return changed
        for key in sorted(self.leases.journal.keys()):
            table, _, pid_text = key.partition("#")
            partition_id = int(pid_text)
            lease = self.leases.current(table, partition_id)
            # a revoked/expired record still fails over (the sweep marks
            # expiry as revoked before this runs); grant()'s TTL rule
            # below is what defers while the old holder might still serve
            if lease is None or lease.holder not in dead:
                continue
            try:
                replicas = self.catalog.nodes_of(table, partition_id)
            except CoordinationError:
                continue  # placement gone (dropped table); nothing to seat
            survivors = [
                node
                for node in replicas
                if node not in dead and self.reachable(node)
            ]
            if not survivors:
                continue
            try:
                changed.append(self.grant(table, partition_id, survivors[0]))
            except MembershipError:
                continue  # old holder's TTL not out yet; retry next tick
        for lease in changed:
            obs.count("soe.membership.failover")
        return changed

    def _reseat_vacant(self) -> list[Lease]:
        """Re-grant managed partitions whose lease has lapsed with no
        successor (expired or revoked) to a reachable catalog replica,
        preferring the previous holder. This is the liveness half of the
        lease bargain: once the TTL the zombie was promised has run out,
        the partition must become writable again — otherwise fencing
        degrades into permanent unavailability."""
        changed: list[Lease] = []
        for key in sorted(self.leases.journal.keys()):
            table, _, pid_text = key.partition("#")
            partition_id = int(pid_text)
            if not self.leases.is_managed(table, partition_id):
                continue
            if self.leases.holder(table, partition_id) is not None:
                continue
            try:
                replicas = self.catalog.nodes_of(table, partition_id)
            except CoordinationError:
                continue  # placement gone (dropped table); nothing to seat
            previous = self.leases.current(table, partition_id)
            candidates = list(replicas)
            if previous is not None and previous.holder in candidates:
                candidates.remove(previous.holder)
                candidates.insert(0, previous.holder)
            for node in candidates:
                if self.reachable(node):
                    changed.append(self.grant(table, partition_id, node))
                    break
        for _ in changed:
            obs.count("soe.membership.reseat")
        return changed

    def step(self, advance: float | None = None) -> dict[str, Any]:
        """One membership tick: probe, sweep expired leases, renew
        reachable holders, fail over dead ones, and re-seat vacant
        leases. Deterministic for a fixed schedule — everything runs in
        sorted order on the simulated clock."""
        verdicts = self.detector.tick(advance)
        expired = self.leases.expire_sweep()
        renewed = self._renew_reachable()
        failed_over = self._fail_over_dead()
        reseated = self._reseat_vacant()
        return {
            "verdicts": verdicts,
            "expired": expired,
            "renewed": renewed,
            "failed_over": failed_over,
            "reseated": reseated,
        }

    # -- invariants ----------------------------------------------------------

    def check_invariants(self) -> list[str]:
        """Jepsen-style safety over everything journaled so far."""
        return self.leases.exactly_one_holder_violations()


__all__ = ["MembershipService", "DEAD"]
