"""Export the qos.* metric surface of a seeded overload run as JSON.

CI's ``qos`` job runs this once per ``REPRO_CHAOS_SEED`` and uploads the
result as a build artifact, so a regression in shed/degraded/breaker
behaviour is diffable across commits: identical seed → identical file.

Usage: ``PYTHONPATH=src python tools/export_qos_metrics.py [out.json]``
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(_REPO_ROOT / "src"))
sys.path.insert(0, str(_REPO_ROOT))

from repro import obs  # noqa: E402
from repro.errors import (  # noqa: E402
    AdmissionRejectedError,
    BudgetExceededError,
    RemoteSourceUnavailableError,
)
from repro.qos import (  # noqa: E402
    AdmissionConfig,
    AdmissionController,
    BoundedBuffer,
    BreakerConfig,
    CircuitBreaker,
    QueryBudget,
    ResourceGovernor,
)
from repro.util.retry import SimulatedClock  # noqa: E402

SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))


def exercise() -> dict:
    """One deterministic pass over every qos primitive."""
    obs.reset()
    obs.enable()
    clock = SimulatedClock()

    admission = AdmissionController(
        AdmissionConfig(queue_depth=4), clock=clock
    )
    shed = 0
    for index in range(24 + SEED % 5):
        query_class = ("oltp", "olap", "olap", "background")[index % 4]
        try:
            admission.submit(query_class)
        except AdmissionRejectedError:
            shed += 1
        if index % 3 == 0:
            admission.run_all(limit=1)
    admission.run_all()

    governor = ResourceGovernor(QueryBudget(soft_rows=10, hard_rows=50), clock=clock)
    governor.charge(rows=12)
    try:
        ResourceGovernor(QueryBudget(hard_rows=1), clock=clock).charge(rows=2)
    except BudgetExceededError:
        pass

    breaker = CircuitBreaker(
        "export.seam",
        BreakerConfig(min_calls=2, window=4, cooldown_seconds=5.0),
        clock=clock,
    )

    def down():
        raise RemoteSourceUnavailableError("down")

    for _ in range(3):
        try:
            breaker.call(down)
        except Exception:
            pass
    clock.advance(5.0)
    breaker.call(lambda: "ok")

    buffer = BoundedBuffer("export.buffer", 4, policy="drop_oldest")
    for item in range(10 + SEED % 3):
        buffer.offer(item)
    buffer.drain()

    assert admission.conserved()
    counters = {
        key: series["value"]
        for key, series in sorted(obs.metrics_dump().items())
        if series.get("type") == "counter" and key.startswith("qos.")
    }
    return {
        "seed": SEED,
        "counters": counters,
        "admission": admission.counts(),
        "breaker": breaker.snapshot(),
        "buffer": buffer.snapshot(),
        "governor": governor.snapshot(),
    }


def main() -> None:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("qos-metrics.json")
    payload = exercise()
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out} ({len(payload['counters'])} qos counters, seed={SEED})")


def test_export_is_deterministic(tmp_path=None):
    assert exercise() == exercise()


if __name__ == "__main__":
    main()
