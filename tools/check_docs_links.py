#!/usr/bin/env python3
"""Verify that every relative markdown link in the repo's docs resolves.

Scans the top-level ``*.md`` files and everything under ``docs/`` for
``[text](target)`` links, skips externals (``http(s)://``, ``mailto:``)
and checks that

* relative file targets exist (with ``#fragment`` suffixes stripped), and
* anchors — both in-page ``#fragment`` links and cross-file
  ``other.md#fragment`` links — name a real heading in the target
  markdown file, using GitHub's heading slugification.

Exit status: 0 when everything resolves, 1 otherwise (one line per
broken link). Used by CI's docs job; run locally with::

    python tools/check_docs_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: inline markdown links; deliberately simple — no nested parentheses
LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")

HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")

#: inline formatting stripped from heading text before slugification
FORMATTING = re.compile(r"[`*_]|\[|\]\([^)]*\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:")


def doc_files() -> list[Path]:
    files = sorted(REPO_ROOT.glob("*.md"))
    files += sorted((REPO_ROOT / "docs").rglob("*.md"))
    return files


def slugify(heading: str) -> str:
    """GitHub's anchor id for a heading: lowercase, spaces to dashes,
    everything but alphanumerics/dash/underscore dropped."""
    text = FORMATTING.sub("", heading).strip().lower()
    out = []
    for ch in text:
        if ch.isalnum() or ch in "-_":
            out.append(ch)
        elif ch == " ":
            out.append("-")
    return "".join(out)


def anchors_of(path: Path) -> set[str]:
    """Every heading anchor a markdown file exposes (with GitHub's
    ``-1``/``-2`` suffixes for duplicate headings)."""
    anchors: set[str] = set()
    seen: dict[str, int] = {}
    fenced = False
    for line in path.read_text().splitlines():
        if line.lstrip().startswith("```"):
            fenced = not fenced
            continue
        if fenced:
            continue
        match = HEADING.match(line)
        if not match:
            continue
        slug = slugify(match.group(2))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        anchors.add(slug if count == 0 else f"{slug}-{count}")
    return anchors


_ANCHOR_CACHE: dict[Path, set[str]] = {}


def cached_anchors(path: Path) -> set[str]:
    if path not in _ANCHOR_CACHE:
        _ANCHOR_CACHE[path] = anchors_of(path)
    return _ANCHOR_CACHE[path]


def broken_links(path: Path) -> list[tuple[int, str, str]]:
    broken: list[tuple[int, str, str]] = []
    for line_number, line in enumerate(path.read_text().splitlines(), start=1):
        for target in LINK.findall(line):
            if target.startswith(SKIP_PREFIXES):
                continue
            relative, _, fragment = target.partition("#")
            resolved = (path.parent / relative).resolve() if relative else path
            if not resolved.exists():
                broken.append((line_number, target, "missing file"))
                continue
            if fragment and resolved.suffix.lower() == ".md":
                if fragment not in cached_anchors(resolved):
                    broken.append((line_number, target, "dangling anchor"))
    return broken


def main() -> int:
    failures = 0
    checked = 0
    for path in doc_files():
        checked += 1
        for line_number, target, reason in broken_links(path):
            failures += 1
            print(
                f"{path.relative_to(REPO_ROOT)}:{line_number}: "
                f"{reason} -> {target}"
            )
    if failures:
        print(f"{failures} broken link(s) across {checked} file(s)")
        return 1
    print(f"all links and anchors resolve ({checked} markdown file(s) checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
