#!/usr/bin/env python3
"""Verify that every relative markdown link in the repo's docs resolves.

Scans the top-level ``*.md`` files and everything under ``docs/`` for
``[text](target)`` links, skips externals (``http(s)://``, ``mailto:``)
and pure in-page anchors, strips ``#fragment`` suffixes, and checks the
remaining paths exist relative to the file containing the link.

Exit status: 0 when everything resolves, 1 otherwise (one line per
broken link). Used by CI's docs job; run locally with::

    python tools/check_docs_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: inline markdown links; deliberately simple — no nested parentheses
LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:")


def doc_files() -> list[Path]:
    files = sorted(REPO_ROOT.glob("*.md"))
    files += sorted((REPO_ROOT / "docs").rglob("*.md"))
    return files


def broken_links(path: Path) -> list[tuple[int, str]]:
    broken: list[tuple[int, str]] = []
    for line_number, line in enumerate(path.read_text().splitlines(), start=1):
        for target in LINK.findall(line):
            if target.startswith(SKIP_PREFIXES) or target.startswith("#"):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (path.parent / relative).resolve()
            if not resolved.exists():
                broken.append((line_number, target))
    return broken


def main() -> int:
    failures = 0
    checked = 0
    for path in doc_files():
        checked += 1
        for line_number, target in broken_links(path):
            failures += 1
            print(
                f"{path.relative_to(REPO_ROOT)}:{line_number}: "
                f"broken link -> {target}"
            )
    if failures:
        print(f"{failures} broken link(s) across {checked} file(s)")
        return 1
    print(f"all links resolve ({checked} markdown file(s) checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
