"""Linter core: findings, file context, the rule registry, the driver.

Every rule is an :class:`ast.NodeVisitor` subclass registered with
:func:`register`; the driver parses each file once and runs every
applicable rule over the same tree. Findings carry a *symbol* (the
enclosing ``Class.method``) so baseline entries stay stable when
unrelated edits shift line numbers.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Type

#: inline suppression syntax: a line comment of the form
#: ``repro: allow(RA103)`` or ``repro: allow(RA101, RA104)`` (hash-prefixed)
#: — a rule may also be named by its slug, e.g. ``allow(unbounded-queue)``
_SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow\(([A-Za-z0-9,\s_-]+)\)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str
    path: str        # posix, relative to the analysis root's parent
    line: int
    message: str
    symbol: str = ""  # enclosing Class.method, for stable baseline keys

    @property
    def key(self) -> tuple[str, str, str, str]:
        """Line-number-free identity used for baseline matching."""
        return (self.code, self.path, self.symbol, self.message)

    def render(self) -> str:
        where = f"{self.path}:{self.line}"
        sym = f" [{self.symbol}]" if self.symbol else ""
        return f"{where}: {self.code}{sym}: {self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
        }


class FileContext:
    """Everything a rule needs to know about the file under analysis."""

    def __init__(self, rel_path: str, source: str) -> None:
        self.rel_path = rel_path.replace(os.sep, "/")
        self.source = source
        self.findings: list[Finding] = []
        #: findings an inline ``allow`` swallowed — kept for the
        #: suppression audit (``--suppression-report``)
        self.suppressed: list[Finding] = []
        self._suppressions = self._parse_suppressions(source)
        #: line → allow-tokens that actually suppressed a finding there
        self._used_suppressions: dict[int, set[str]] = {}

    @staticmethod
    def _parse_suppressions(source: str) -> dict[int, set[str]]:
        """Map line number → codes/slugs allowed on that line.

        Tokenize-driven so only real ``#`` comments count — a docstring
        *describing* the ``repro: allow(...)`` syntax must not suppress
        anything. Malformed source (which :func:`analyze_source` reports
        as RA000 anyway) falls back to a plain line scan.
        """
        allowed: dict[int, set[str]] = {}
        try:
            for tok in tokenize.generate_tokens(io.StringIO(source).readline):
                if tok.type != tokenize.COMMENT:
                    continue
                match = _SUPPRESS_RE.search(tok.string)
                if match:
                    codes = {c.strip() for c in match.group(1).split(",") if c.strip()}
                    allowed.setdefault(tok.start[0], set()).update(codes)
        except (tokenize.TokenError, IndentationError, SyntaxError):
            for lineno, line in enumerate(source.splitlines(), start=1):
                match = _SUPPRESS_RE.search(line)
                if match:
                    codes = {c.strip() for c in match.group(1).split(",") if c.strip()}
                    allowed[lineno] = codes
        return allowed

    def is_suppressed(self, code: str, line: int, rule_name: str = "") -> bool:
        allowed = self._suppressions.get(line, ())
        return code in allowed or (bool(rule_name) and rule_name in allowed)

    def add(
        self,
        code: str,
        node: ast.AST,
        message: str,
        symbol: str = "",
        rule_name: str = "",
    ) -> None:
        line = getattr(node, "lineno", 0)
        allowed = self._suppressions.get(line)
        if allowed and (code in allowed or (rule_name and rule_name in allowed)):
            used = self._used_suppressions.setdefault(line, set())
            used.update({code, rule_name} & allowed)
            self.suppressed.append(Finding(code, self.rel_path, line, message, symbol))
            return
        self.findings.append(Finding(code, self.rel_path, line, message, symbol))

    def stale_suppressions(self) -> list[tuple[int, str]]:
        """``(line, token)`` pairs whose ``allow`` swallowed nothing this
        run — candidates for deletion (the guarded code was fixed, the
        rule changed, or the token was misspelled)."""
        stale: list[tuple[int, str]] = []
        for line, tokens in sorted(self._suppressions.items()):
            used = self._used_suppressions.get(line, set())
            stale.extend((line, token) for token in sorted(tokens - used))
        return stale


class Rule(ast.NodeVisitor):
    """Base class: one invariant, one code, one visitor.

    Subclasses set ``code``/``name``/``description`` and implement the
    usual ``visit_*`` methods, reporting through :meth:`report`. The
    driver instantiates a fresh rule per file.
    """

    code: str = "RA000"
    name: str = ""
    description: str = ""
    #: substrings, any of which must appear in the file's source for the
    #: rule to possibly fire — the driver skips the whole traversal
    #: otherwise. Only set tokens a finding *requires* (e.g. RA102 needs
    #: ``acquire`` in the text); an empty tuple means "always run".
    source_prefilter: tuple[str, ...] = ()

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self._symbol_stack: list[str] = []

    # constants are leaves and no rule inspects them via visit_Constant;
    # skipping the NodeVisitor deprecation shim saves a full dispatch per
    # literal (tens of thousands per tree)
    def visit_Constant(self, node: ast.Constant) -> None:
        pass

    # -- scoping -------------------------------------------------------------

    @classmethod
    def applies_to(cls, rel_path: str) -> bool:
        """Override to scope a rule to part of the tree."""
        return True

    # -- reporting -----------------------------------------------------------

    @property
    def symbol(self) -> str:
        return ".".join(self._symbol_stack)

    def report(self, node: ast.AST, message: str) -> None:
        self.ctx.add(self.code, node, message, self.symbol, rule_name=self.name)

    # -- symbol tracking (shared by every rule) ------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._symbol_stack.append(node.name)
        self.generic_visit(node)
        self._symbol_stack.pop()

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._symbol_stack.append(node.name)
        self.generic_visit(node)
        self._symbol_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)


_REGISTRY: dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if rule_cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule_cls.code}")
    _REGISTRY[rule_cls.code] = rule_cls
    return rule_cls


def all_rules() -> dict[str, Type[Rule]]:
    """code → rule class, importing the built-in rules on first use."""
    import tools.analyze.rules  # noqa: F401  (registers on import)

    return dict(sorted(_REGISTRY.items()))


# --------------------------------------------------------------------------
# driver
# --------------------------------------------------------------------------


def _run_rules(ctx: FileContext, select: Iterable[str] | None = None) -> None:
    """Run the (optionally filtered) rule set over a prepared context."""
    rules = all_rules()
    if select is not None:
        wanted = set(select)
        unknown = wanted - rules.keys()
        if unknown:
            raise ValueError(f"unknown rule codes: {sorted(unknown)}")
        rules = {code: cls for code, cls in rules.items() if code in wanted}
    try:
        tree = ast.parse(ctx.source)
    except SyntaxError as exc:
        ctx.findings.append(
            Finding("RA000", ctx.rel_path, exc.lineno or 0, f"syntax error: {exc.msg}")
        )
        return
    for rule_cls in rules.values():
        if not rule_cls.applies_to(ctx.rel_path):
            continue
        if rule_cls.source_prefilter and not any(
            token in ctx.source for token in rule_cls.source_prefilter
        ):
            continue
        rule_cls(ctx).visit(tree)


def analyze_source(
    source: str,
    rel_path: str = "<memory>.py",
    select: Iterable[str] | None = None,
) -> list[Finding]:
    """Run the (optionally filtered) rule set over one source string."""
    ctx = FileContext(rel_path, source)
    _run_rules(ctx, select)
    return sorted(ctx.findings, key=lambda f: (f.path, f.line, f.code))


def iter_python_files(root: Path) -> Iterator[Path]:
    if root.is_file():
        yield root
        return
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        yield path


def analyze_paths(
    paths: Iterable[str | Path],
    select: Iterable[str] | None = None,
) -> list[Finding]:
    """Analyze files/trees. Finding paths are the given roots plus the
    path below them (``src`` yields ``src/repro/...``) — invoke from the
    repository root so baseline entries stay machine-independent."""
    findings: list[Finding] = []
    for raw in paths:
        for file_path in iter_python_files(Path(raw)):
            source = file_path.read_text(encoding="utf-8")
            findings.extend(analyze_source(source, file_path.as_posix(), select))
    return sorted(findings, key=lambda f: (f.path, f.line, f.code))


def audit_suppressions(
    paths: Iterable[str | Path],
    select: Iterable[str] | None = None,
) -> list[tuple[str, int, str]]:
    """Stale inline suppressions: ``(path, line, token)`` for every
    ``# repro: allow(...)`` token that suppressed no finding when the
    full rule set ran. These are dead weight — the guarded code was
    fixed, the rule moved, or the token was misspelled — and each one
    would silently swallow a *future* finding on its line."""
    stale: list[tuple[str, int, str]] = []
    for raw in paths:
        for file_path in iter_python_files(Path(raw)):
            source = file_path.read_text(encoding="utf-8")
            ctx = FileContext(file_path.as_posix(), source)
            _run_rules(ctx, select)
            stale.extend(
                (ctx.rel_path, line, token)
                for line, token in ctx.stale_suppressions()
            )
    return stale
