"""CLI: ``python -m tools.analyze src`` — lint the tree, exit 1 on new findings.

Options::

    python -m tools.analyze src                      # text report, default baseline
    python -m tools.analyze src --json               # machine-readable
    python -m tools.analyze src --select RA101,RA103 # subset of rules
    python -m tools.analyze src --write-baseline     # accept current findings
    python -m tools.analyze --list-rules
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from tools.analyze.baseline import Baseline
from tools.analyze.core import all_rules, analyze_paths
from tools.analyze.reporters import render_json, render_text

_DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.analyze",
        description="Project-invariant linter (rules RA101–RA106).",
    )
    parser.add_argument("paths", nargs="*", help="files or trees to analyze (e.g. src)")
    parser.add_argument("--json", action="store_true", help="emit a JSON report")
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--baseline", default=str(_DEFAULT_BASELINE), metavar="PATH",
        help="baseline JSON of accepted findings (default: tools/analyze/baseline.json)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true", help="ignore the baseline entirely"
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="accept all current findings into the baseline file and exit 0",
    )
    parser.add_argument("--list-rules", action="store_true", help="print the rule table")
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, rule_cls in all_rules().items():
            print(f"{code}  {rule_cls.name:34s} {rule_cls.description}")
        return 0
    if not args.paths:
        parser.error("no paths given (try: python -m tools.analyze src)")

    select = [c.strip() for c in args.select.split(",")] if args.select else None
    findings = analyze_paths(args.paths, select)

    if args.write_baseline:
        Baseline.from_findings(findings, justification="accepted by --write-baseline").write(
            args.baseline
        )
        print(f"wrote {len(findings)} finding(s) to {args.baseline}")
        return 0

    baseline = Baseline() if args.no_baseline else Baseline.load(args.baseline)
    new, baselined, stale = baseline.split(findings)
    report = render_json(new, baselined, stale) if args.json else render_text(new, baselined, stale)
    print(report)
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
