"""CLI: ``python -m tools.analyze src`` — lint the tree, exit 1 on new findings.

Options::

    python -m tools.analyze src                      # text report, default baseline
    python -m tools.analyze src --json               # machine-readable
    python -m tools.analyze src --select RA101,RA103 # subset of rules
    python -m tools.analyze src --changed            # only files differing from merge-base
    python -m tools.analyze src --write-baseline     # accept current findings
    python -m tools.analyze src --baseline-prune     # drop stale baseline entries
    python -m tools.analyze src --suppression-report # list stale inline allows
    python -m tools.analyze src --sarif out.sarif    # also write a SARIF report
    python -m tools.analyze --plan-corpus            # verify a generated plan corpus
    python -m tools.analyze --list-rules
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

from tools.analyze.baseline import Baseline
from tools.analyze.core import all_rules, analyze_paths, audit_suppressions
from tools.analyze.reporters import render_json, render_sarif, render_text

_DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"

#: refs tried, in order, as the diff base for --changed
_MERGE_BASE_REFS = ("origin/main", "main", "origin/master", "master")


def _git(*args: str) -> list[str]:
    out = subprocess.run(
        ["git", *args], capture_output=True, text=True, check=True, timeout=30
    ).stdout
    return [line.strip() for line in out.splitlines() if line.strip()]


def changed_python_files(roots: list[str]) -> list[str] | None:
    """Python files under ``roots`` that differ from the merge-base with the
    main branch, plus untracked ones. Returns None when git state can't be
    determined (caller falls back to a full run)."""
    base = None
    for ref in _MERGE_BASE_REFS:
        try:
            base = _git("merge-base", ref, "HEAD")[0]
            break
        except (subprocess.CalledProcessError, subprocess.TimeoutExpired, OSError, IndexError):
            continue
    if base is None:
        return None
    try:
        candidates = set(_git("diff", "--name-only", base))
        candidates |= set(_git("ls-files", "--others", "--exclude-standard"))
    except (subprocess.CalledProcessError, subprocess.TimeoutExpired, OSError):
        return None
    root_paths = [Path(r) for r in roots]
    selected = []
    for name in sorted(candidates):
        path = Path(name)
        if path.suffix != ".py" or not path.exists():
            continue
        if any(root == path or root in path.parents for root in root_paths):
            selected.append(name)
    return selected


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.analyze",
        description="Project-invariant linter (rules RA101–RA116).",
    )
    parser.add_argument("paths", nargs="*", help="files or trees to analyze (e.g. src)")
    parser.add_argument("--json", action="store_true", help="emit a JSON report")
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--baseline", default=str(_DEFAULT_BASELINE), metavar="PATH",
        help="baseline JSON of accepted findings (default: tools/analyze/baseline.json)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true", help="ignore the baseline entirely"
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="accept all current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--changed", action="store_true",
        help="lint only files differing from the merge-base with main "
        "(plus untracked files) — the fast pre-commit mode",
    )
    parser.add_argument(
        "--baseline-prune", action="store_true",
        help="analyze, drop baseline entries no current finding matches, "
        "rewrite the baseline, and exit 0",
    )
    parser.add_argument(
        "--suppression-report", action="store_true",
        help="list inline `# repro: allow(...)` tokens that no longer "
        "suppress any finding (candidates for deletion); exit 1 if any",
    )
    parser.add_argument(
        "--sarif", default=None, metavar="PATH",
        help="additionally write a SARIF 2.1.0 report (GitHub code scanning)",
    )
    parser.add_argument(
        "--plan-corpus", action="store_true",
        help="plan a seeded query corpus and verify every plan, cache "
        "entry, and binding with repro.analysis.plancheck",
    )
    parser.add_argument(
        "--corpus-count", type=int, default=300, metavar="N",
        help="queries in the --plan-corpus run (default: 300)",
    )
    parser.add_argument(
        "--corpus-seed", type=int, default=0, metavar="SEED",
        help="seed for the --plan-corpus generator (default: 0)",
    )
    parser.add_argument("--list-rules", action="store_true", help="print the rule table")
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, rule_cls in all_rules().items():
            print(f"{code}  {rule_cls.name:34s} {rule_cls.description}")
        return 0
    if args.plan_corpus:
        from tools.analyze.plancorpus import run_plan_corpus

        return run_plan_corpus(count=args.corpus_count, seed=args.corpus_seed)
    if not args.paths:
        parser.error("no paths given (try: python -m tools.analyze src)")
    if args.changed and (args.baseline_prune or args.write_baseline):
        parser.error("--changed cannot be combined with baseline rewriting "
                     "(prune/write need findings for the whole tree)")

    paths: list[str] = list(args.paths)
    if args.changed:
        changed = changed_python_files(paths)
        if changed is None:
            print(
                "analyze: --changed could not determine a merge base; "
                "falling back to a full run",
                file=sys.stderr,
            )
        else:
            if not changed:
                print("no changed python files")
                return 0
            paths = changed

    select = [c.strip() for c in args.select.split(",")] if args.select else None

    if args.suppression_report:
        stale_allows = audit_suppressions(paths, select)
        if not stale_allows:
            print("no stale suppressions")
            return 0
        for rel_path, line, token in stale_allows:
            print(
                f"{rel_path}:{line}: stale suppression allow({token}) — "
                "it suppressed nothing; delete it or fix the token"
            )
        print(f"{len(stale_allows)} stale suppression(s)")
        return 1

    findings = analyze_paths(paths, select)

    if args.write_baseline:
        Baseline.from_findings(findings, justification="accepted by --write-baseline").write(
            args.baseline
        )
        print(f"wrote {len(findings)} finding(s) to {args.baseline}")
        return 0

    baseline = Baseline() if args.no_baseline else Baseline.load(args.baseline)
    new, baselined, stale = baseline.split(findings)

    if args.baseline_prune:
        # an entry is dead if no current finding matches it OR its file is
        # gone entirely (deleted/renamed modules would otherwise pin
        # accepted findings forever)
        dead = set(stale)
        dead.update(key for key in baseline.entries if not Path(key[1]).exists())
        for key in dead:
            del baseline.entries[key]
        baseline.write(args.baseline)
        print(
            f"pruned {len(dead)} stale entr{'y' if len(dead) == 1 else 'ies'}; "
            f"{len(baseline.entries)} remain in {args.baseline}"
        )
        return 0

    if args.sarif:
        Path(args.sarif).write_text(
            render_sarif(new, baselined, stale) + "\n", encoding="utf-8"
        )
    report = render_json(new, baselined, stale) if args.json else render_text(new, baselined, stale)
    print(report)
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
