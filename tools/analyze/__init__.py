"""``tools.analyze`` — project-invariant static analysis for the reproduction.

A small, dependency-free AST linter that checks the invariants this
codebase relies on but that no off-the-shelf tool knows about:

* wall-clock reads must go through :mod:`repro.obs` (RA101),
* ``threading.Lock`` objects are used via ``with`` (RA102),
* private containers of lock-owning classes in the SOE concurrency layer
  are mutated only under their lock (RA103),
* broad ``except`` blocks either re-raise or log (RA104),
* no mutable default arguments (RA105),
* metric registration happens at module scope, hot paths use the
  ``obs.count``/``obs.observe`` helpers (RA106).

Run it as ``python -m tools.analyze src``. Findings can be suppressed
inline with ``# repro: allow(RA103)`` or accepted wholesale in
``tools/analyze/baseline.json``; anything new fails the run (and CI).

The dynamic half of the story — the lock-order sanitizer that runs the
test suite under ``REPRO_LOCKCHECK=1`` — lives in
:mod:`repro.analysis.lockcheck` so it ships with the package.
"""

from tools.analyze.core import Finding, FileContext, Rule, all_rules, analyze_paths, analyze_source
from tools.analyze.baseline import Baseline

__all__ = [
    "Baseline",
    "FileContext",
    "Finding",
    "Rule",
    "all_rules",
    "analyze_paths",
    "analyze_source",
]
