"""``python -m tools.analyze --plan-corpus`` — verify a generated plan corpus.

Breadth gate for :mod:`repro.analysis.plancheck`: a seeded query
generator (:mod:`repro.workloads.querygen`) produces a few hundred
query shapes over the synthetic ERP schema; every one is planned, the
plan is verified, the would-be cache entry is verified, and — when a
literal-perturbed variant of the query hits the same fingerprint — the
cache-hit binding is verified too. Any finding is a build failure.

This runs the *runtime* verifier from the *static* lint driver so one
command (`python -m tools.analyze --plan-corpus src`) gates both
halves in CI.
"""

from __future__ import annotations

import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent.parent
_SRC = _REPO_ROOT / "src"


def run_plan_corpus(count: int = 300, seed: int = 0) -> int:
    """Plan, cache, rebind, and verify ``count`` generated queries.

    Returns a process exit code: 0 when the whole corpus verifies clean.
    """
    if str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

    from repro.analysis import plancheck
    from repro.core.database import Database
    from repro.errors import PlanError
    from repro.sql import ast, plancache
    from repro.sql.parser import parse
    from repro.sql.planner import plan_select
    from repro.workloads import querygen

    database = Database()
    for statement in querygen.ddl():
        database.execute(statement)

    failures = 0
    plans = entries = bindings = skipped = 0
    for index, sql in enumerate(querygen.generate_queries(count, seed=seed)):
        statement = parse(sql)
        plan = plan_select(statement, database.catalog, feedback=database.feedback)
        findings = plancheck.verify_plan(plan, database.catalog)
        plans += 1

        key = plancache.fingerprint(statement)
        entry = plancache.PlanEntry(
            plan=plan,
            slots=plancache.collect_literals(statement),
            tables=plancache.plan_tables(plan.root),
            versions=database.feedback.versions(plancache.plan_tables(plan.root)),
        )
        entry_findings = plancheck.verify_entry(entry, statement, key, database.catalog)
        entries += 1
        # `SELECT x+1 ... ORDER BY x+1` legitimately produces an entry the
        # cache must refuse (the order-by literal is planned away); that
        # refusal is the verifier working, not a corpus failure — but any
        # schema/estimate/charge finding is.
        hard = findings + [f for f in entry_findings if f.check != "cache"]
        cacheable = not entry_findings

        if cacheable:
            entry.seal = plancheck.entry_seal(entry)
            perturbed_sql = querygen.perturb_literals(sql, seed=seed + index)
            try:
                perturbed = parse(perturbed_sql)
            except PlanError:
                perturbed = None
            if perturbed is not None and plancache.fingerprint(perturbed) == key:
                bound = plancache.instantiate(entry, perturbed)
                if bound is not None:
                    hard += plancheck.verify_binding(entry, bound, perturbed)
                    bindings += 1
            else:
                skipped += 1

        if hard:
            failures += len(hard)
            print(f"FAIL [{index}] {sql}")
            for finding in hard:
                print(f"    {finding}")

    print(
        f"plan corpus: {plans} plans, {entries} entries, {bindings} bindings "
        f"verified ({skipped} perturbations shifted fingerprint), "
        f"{failures} finding(s)"
    )
    return 1 if failures else 0
