"""Finding reporters: human text and machine JSON."""

from __future__ import annotations

import json
from collections import Counter

from tools.analyze.core import Finding


def render_text(
    new: list[Finding],
    baselined: list[Finding],
    stale: list[tuple],
) -> str:
    """The default CLI report: one finding per line plus a summary."""
    lines = [finding.render() for finding in new]
    summary = Counter(finding.code for finding in new)
    if new:
        per_code = ", ".join(f"{code}×{count}" for code, count in sorted(summary.items()))
        lines.append("")
        lines.append(f"{len(new)} finding(s): {per_code}")
    else:
        lines.append("no new findings")
    if baselined:
        lines.append(f"{len(baselined)} pre-existing finding(s) accepted by the baseline")
    if stale:
        lines.append(
            f"warning: {len(stale)} stale baseline entr{'y' if len(stale) == 1 else 'ies'} "
            "no longer match any finding — prune with --write-baseline"
        )
    return "\n".join(lines)


def render_json(
    new: list[Finding],
    baselined: list[Finding],
    stale: list[tuple],
) -> str:
    payload = {
        "new": [finding.as_dict() for finding in new],
        "baselined": [finding.as_dict() for finding in baselined],
        "stale_baseline_keys": [list(key) for key in stale],
        "exit_code": 1 if new else 0,
    }
    return json.dumps(payload, indent=2)
