"""Finding reporters: human text, machine JSON, and SARIF for CI."""

from __future__ import annotations

import json
from collections import Counter

from tools.analyze.core import Finding, all_rules


def render_text(
    new: list[Finding],
    baselined: list[Finding],
    stale: list[tuple],
) -> str:
    """The default CLI report: one finding per line plus a summary."""
    lines = [finding.render() for finding in new]
    summary = Counter(finding.code for finding in new)
    if new:
        per_code = ", ".join(f"{code}×{count}" for code, count in sorted(summary.items()))
        lines.append("")
        lines.append(f"{len(new)} finding(s): {per_code}")
    else:
        lines.append("no new findings")
    if baselined:
        lines.append(f"{len(baselined)} pre-existing finding(s) accepted by the baseline")
    if stale:
        lines.append(
            f"warning: {len(stale)} stale baseline entr{'y' if len(stale) == 1 else 'ies'} "
            "no longer match any finding — prune with --write-baseline"
        )
    return "\n".join(lines)


def render_json(
    new: list[Finding],
    baselined: list[Finding],
    stale: list[tuple],
) -> str:
    payload = {
        "new": [finding.as_dict() for finding in new],
        "baselined": [finding.as_dict() for finding in baselined],
        "stale_baseline_keys": [list(key) for key in stale],
        "exit_code": 1 if new else 0,
    }
    return json.dumps(payload, indent=2)


def render_sarif(
    new: list[Finding],
    baselined: list[Finding],
    stale: list[tuple],
) -> str:
    """SARIF 2.1.0 — the format GitHub code scanning ingests, so findings
    surface as PR annotations. New findings report at ``warning`` level;
    baselined ones are included as ``note`` so the dashboard still shows
    the accepted debt (``stale`` keys have no location and are omitted).
    """
    rules_meta = [
        {
            "id": code,
            "name": rule_cls.name,
            "shortDescription": {"text": rule_cls.description},
            "defaultConfiguration": {"level": "warning"},
        }
        for code, rule_cls in sorted(all_rules().items())
    ]

    def result(finding: Finding, level: str) -> dict:
        return {
            "ruleId": finding.code,
            "level": level,
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {"startLine": max(finding.line, 1)},
                    },
                    "logicalLocations": (
                        [{"fullyQualifiedName": finding.symbol}]
                        if finding.symbol
                        else []
                    ),
                }
            ],
        }

    payload = {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "tools.analyze",
                        "rules": rules_meta,
                    }
                },
                "results": [result(finding, "warning") for finding in new]
                + [result(finding, "note") for finding in baselined],
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
