"""Baseline file handling: accepted pre-existing findings.

The baseline is a checked-in JSON list of finding identities (code,
path, symbol, message — no line numbers, so unrelated edits don't churn
it). ``python -m tools.analyze src`` fails only on findings *not* in the
baseline; ``--write-baseline`` regenerates it. An empty baseline is the
goal state: every entry should carry a ``justification``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from tools.analyze.core import Finding

_VERSION = 1


@dataclass
class Baseline:
    """Accepted findings, keyed like :attr:`Finding.key`."""

    entries: dict[tuple[str, str, str, str], str] = field(default_factory=dict)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        path = Path(path)
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        entries = {}
        for item in data.get("findings", []):
            key = (item["code"], item["path"], item.get("symbol", ""), item["message"])
            entries[key] = item.get("justification", "")
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: list[Finding], justification: str = "") -> "Baseline":
        return cls({finding.key: justification for finding in findings})

    def write(self, path: str | Path) -> None:
        items = [
            {
                "code": code,
                "path": rel_path,
                "symbol": symbol,
                "message": message,
                "justification": justification,
            }
            for (code, rel_path, symbol, message), justification in sorted(self.entries.items())
        ]
        payload = {"version": _VERSION, "findings": items}
        # sorted keys keep the checked-in file byte-stable across rewrites
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    def split(self, findings: list[Finding]) -> tuple[list[Finding], list[Finding], list[tuple]]:
        """Partition findings into (new, baselined); the third element is
        the stale baseline keys no current finding matches."""
        new: list[Finding] = []
        matched: list[Finding] = []
        seen: set[tuple] = set()
        for finding in findings:
            if finding.key in self.entries:
                matched.append(finding)
                seen.add(finding.key)
            else:
                new.append(finding)
        stale = [key for key in self.entries if key not in seen]
        return new, matched, stale
