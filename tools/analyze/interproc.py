"""Interprocedural summaries for the thread-escape rules (RA108–RA110).

The per-method rules in :mod:`tools.analyze.rules` see one function at a
time; the races PR 4's runtime sanitizer (repro.analysis.racecheck)
catches are *inter*-method by nature — a callback registered in
``__init__`` escapes to whatever thread calls the broker, then races a
reader three methods away. This module builds the summaries those rules
need, over the same single ``ast.parse`` the driver already does:

* a :class:`MethodSummary` per method: every ``self.<attr>`` access with
  its *guardedness* (textually inside ``with self.<lock>:``), the
  self-call edges (``self.helper()`` — with the guardedness of the call
  site), escape events (a bound method / local function / lambda handed
  to a thread constructor or a callback-registration call), and thread
  starts;
* a :class:`ClassSummary` aggregating them, with
  :meth:`ClassSummary.transitive_accesses` — the call-graph closure in
  which a *guarded call site confers guardedness on the callee's
  accesses* (the ``with self._lock: self._apply(...)`` idiom: the
  helper's body is lock-protected even though it contains no ``with``).

Summaries are cached on the :class:`~tools.analyze.core.FileContext`
(keyed by class node identity) so RA108/RA109/RA110 share one build.

The helpers here deliberately do not import :mod:`tools.analyze.rules`
(rules imports this module).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

#: methods that run before the object can be shared between threads
SETUP_METHODS = {"__init__", "__post_init__", "__new__"}

#: container methods that mutate their receiver (matches the runtime
#: sanitizer's Shared proxy write classification)
MUTATING_METHODS = {
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "setdefault", "add", "discard", "appendleft", "extendleft",
    "sort", "reverse",
}

#: callback-registration shapes that publish a callable to a long-lived
#: shared object (``broker.subscribe_oltp(self._on_commit)``). Names are
#: deliberately narrow: per-object hooks like ``txn.on_commit`` run on
#: the registering side's thread and are not escapes.
_ESCAPE_PREFIXES = ("subscribe", "register_callback", "add_listener", "add_callback")
_ESCAPE_NAMES = {"spawn", "call_soon", "call_later", "defer"}

_THREAD_CTORS = {"Thread", "threading.Thread", "Timer", "threading.Timer"}
_LOCK_FACTORIES = {"threading.Lock", "threading.RLock", "Lock", "RLock"}


def _call_name(func: ast.AST) -> str:
    parts: list[str] = []
    while isinstance(func, ast.Attribute):
        parts.append(func.attr)
        func = func.value
    if isinstance(func, ast.Name):
        parts.append(func.id)
    return ".".join(reversed(parts))


def _self_attr(node: ast.AST) -> str | None:
    """``self.X`` → ``"X"`` (any visibility), else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and not node.attr.startswith("__")
    ):
        return node.attr
    return None


@dataclass(frozen=True)
class Access:
    """One ``self.<attr>`` access inside one method body."""

    attr: str
    guarded: bool      # textually (or via a guarded call site) under `with self.<lock>:`
    is_write: bool
    is_bind: bool      # plain rebinding `self.x = ...` (the publication shape)
    method: str        # the method whose body contains the node
    node: ast.AST

    def reguard(self) -> "Access":
        return Access(self.attr, True, self.is_write, self.is_bind, self.method, self.node)


@dataclass
class Escape:
    """A callable handed to a thread constructor or callback registry."""

    kind: str                       # "thread" | "callback"
    via: str                        # Thread ctor / registration call name
    target: str | None              # self-method name, if a bound method escaped
    local: "MethodSummary | None"   # summary of an escaped local function / lambda
    node: ast.AST
    method: str                     # method containing the escape site

    def describe(self) -> str:
        return f"self.{self.target}" if self.target else (self.local.name if self.local else "?")


@dataclass
class ThreadStart:
    """A ``t.start()`` (or inline ``Thread(...).start()``) in a method body."""

    targets: tuple[str, ...]        # candidate self-method targets of the thread
    locals: tuple["MethodSummary", ...]
    node: ast.AST


@dataclass
class MethodSummary:
    """Direct (non-transitive) facts about one method body."""

    name: str
    accesses: list[Access] = field(default_factory=list)
    self_calls: list[tuple[str, bool]] = field(default_factory=list)  # (callee, call-site guarded)
    escapes: list[Escape] = field(default_factory=list)
    starts: list[ThreadStart] = field(default_factory=list)


@dataclass
class ClassSummary:
    """All method summaries of one class plus its lock attributes."""

    name: str
    node: ast.ClassDef
    lock_attrs: set[str]
    methods: dict[str, MethodSummary]

    @property
    def escapes(self) -> list[Escape]:
        return [esc for m in self.methods.values() for esc in m.escapes]

    def _seed(self, target: str | MethodSummary) -> MethodSummary | None:
        if isinstance(target, MethodSummary):
            return target
        return self.methods.get(target)

    def transitive_accesses(self, target: str | MethodSummary) -> list[Access]:
        """Every access reachable from ``target`` through self-calls, with
        guarded call sites conferring guardedness on callee accesses."""
        seed = self._seed(target)
        if seed is None:
            return []
        out: list[Access] = []
        seen: set[tuple[str, bool]] = set()

        def walk(summary: MethodSummary, guarded_ctx: bool) -> None:
            key = (summary.name, guarded_ctx)
            if key in seen:
                return
            seen.add(key)
            for access in summary.accesses:
                out.append(access.reguard() if guarded_ctx else access)
            for callee, call_guarded in summary.self_calls:
                callee_summary = self.methods.get(callee)
                if callee_summary is not None:
                    walk(callee_summary, guarded_ctx or call_guarded)

        walk(seed, False)
        return out

    def closure(self, target: str | MethodSummary) -> set[str]:
        """Class-method names reachable from ``target`` (incl. itself)."""
        seed = self._seed(target)
        if seed is None:
            return set()
        reached: set[str] = set()
        frontier = [seed]
        if seed.name in self.methods:
            reached.add(seed.name)
        while frontier:
            summary = frontier.pop()
            for callee, _ in summary.self_calls:
                if callee not in reached and callee in self.methods:
                    reached.add(callee)
                    frontier.append(self.methods[callee])
        return reached


class _LockAttrScanner(ast.NodeVisitor):
    """``self._lock = threading.Lock()`` / dataclass ``field(default_factory=...)``."""

    def __init__(self) -> None:
        self.lock_attrs: set[str] = set()

    def visit_Assign(self, node: ast.Assign) -> None:
        if isinstance(node.value, ast.Call) and _call_name(node.value.func) in _LOCK_FACTORIES:
            for target in node.targets:
                attr = _self_attr(target)
                if attr is not None:
                    self.lock_attrs.add(attr)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if (
            isinstance(node.target, ast.Name)
            and isinstance(node.value, ast.Call)
            and _call_name(node.value.func) == "field"
        ):
            for kw in node.value.keywords:
                if kw.arg == "default_factory" and _call_name(kw.value) in _LOCK_FACTORIES:
                    self.lock_attrs.add(node.target.id)
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        return  # nested classes summarize separately


class _MethodWalker:
    """Build one :class:`MethodSummary` from one method body."""

    def __init__(self, class_summary_names: set[str], lock_attrs: set[str], name: str) -> None:
        self.method_names = class_summary_names
        self.lock_attrs = lock_attrs
        self.summary = MethodSummary(name)
        self._held = 0
        #: local function name -> its summary (for escape resolution)
        self._locals: dict[str, MethodSummary] = {}
        #: thread variable name -> (self-method targets, local summaries)
        self._threads: dict[str, tuple[tuple[str, ...], tuple[MethodSummary, ...]]] = {}

    # -- entry ---------------------------------------------------------------

    def run(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> MethodSummary:
        for stmt in node.body:
            self._walk(stmt)
        return self.summary

    # -- recursive walk ------------------------------------------------------

    def _walk(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # a nested function runs on its caller's schedule, not under
            # any lock the *defining* frame happens to hold
            nested = _MethodWalker(self.method_names, self.lock_attrs, node.name)
            self._locals[node.name] = nested.run(node)
            return
        if isinstance(node, ast.Lambda):
            nested = _MethodWalker(
                self.method_names, self.lock_attrs, f"<lambda:{node.lineno}>"
            )
            nested._walk(node.body)
            self._locals[nested.summary.name] = nested.summary
            return
        if isinstance(node, ast.With):
            holds = any(
                (attr := _self_attr(item.context_expr)) is not None
                and attr in self.lock_attrs
                for item in node.items
            )
            for item in node.items:
                self._walk(item.context_expr)
            if holds:
                self._held += 1
            for stmt in node.body:
                self._walk(stmt)
            if holds:
                self._held -= 1
            return
        self._inspect(node)
        for child in ast.iter_child_nodes(node):
            self._walk(child)

    # -- fact extraction -----------------------------------------------------

    def _record(self, attr: str, node: ast.AST, *, write: bool, bind: bool = False) -> None:
        if attr in self.lock_attrs:
            return
        self.summary.accesses.append(
            Access(attr, self._held > 0, write, bind, self.summary.name, node)
        )

    def _inspect(self, node: ast.AST) -> None:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                self._inspect_store(target)
            self._maybe_thread_assign(node)
        elif isinstance(node, ast.AugAssign):
            self._inspect_store(node.target, also_read=True)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._inspect_store(node.target)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                self._inspect_store(target)
        elif isinstance(node, ast.Call):
            self._inspect_call(node)
        elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            attr = _self_attr(node)
            if attr is not None:
                if attr in self.method_names:
                    # property read / bound-method reference: a call edge
                    self.summary.self_calls.append((attr, self._held > 0))
                else:
                    self._record(attr, node, write=False)

    def _inspect_store(self, target: ast.AST, also_read: bool = False) -> None:
        attr = _self_attr(target)
        if attr is not None:
            if also_read:
                self._record(attr, target, write=False)
            self._record(attr, target, write=True, bind=not also_read)
            return
        if isinstance(target, ast.Subscript):
            attr = _self_attr(target.value)
            if attr is not None:
                self._record(attr, target, write=True)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._inspect_store(element)

    def _inspect_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            receiver_attr = _self_attr(func.value)
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                if func.attr in self.method_names:
                    self.summary.self_calls.append((func.attr, self._held > 0))
                elif func.attr in MUTATING_METHODS:
                    pass  # self.foo() on an unknown name: not an attr access
                # `self.x.append(...)` handled below via receiver_attr? no:
                # here func.value IS self, receiver_attr is None
            elif receiver_attr is not None:
                # self.<attr>.<method>(...)
                if func.attr in MUTATING_METHODS:
                    self._record(receiver_attr, node, write=True)
                else:
                    self._record(receiver_attr, node, write=False)
            name = _call_name(func)
            if name in _THREAD_CTORS:
                self._escape_thread(node, name)
            elif self._is_registration(func.attr) and not (
                isinstance(func.value, ast.Name) and func.value.id == "self"
            ):
                self._escape_callback(node, func.attr)
            if func.attr == "start":
                self._maybe_start(node)
        elif isinstance(func, ast.Name) and func.id in _THREAD_CTORS:
            self._escape_thread(node, func.id)

    @staticmethod
    def _is_registration(name: str) -> bool:
        return name.startswith(_ESCAPE_PREFIXES) or name in _ESCAPE_NAMES

    # -- escapes / thread tracking ------------------------------------------

    def _escaping_callables(
        self, args: list[ast.AST]
    ) -> tuple[tuple[str, ...], tuple[MethodSummary, ...]]:
        targets: list[str] = []
        locals_: list[MethodSummary] = []
        for arg in args:
            attr = _self_attr(arg)
            if attr is not None and attr in self.method_names:
                targets.append(attr)
            elif isinstance(arg, ast.Name) and arg.id in self._locals:
                locals_.append(self._locals[arg.id])
            elif isinstance(arg, ast.Lambda):
                nested = _MethodWalker(
                    self.method_names, self.lock_attrs, f"<lambda:{arg.lineno}>"
                )
                nested._walk(arg.body)
                locals_.append(nested.summary)
        return tuple(targets), tuple(locals_)

    def _escape_thread(self, node: ast.Call, ctor: str) -> None:
        args = [kw.value for kw in node.keywords if kw.arg in ("target", "function")]
        args += list(node.args)
        targets, locals_ = self._escaping_callables(args)
        for target in targets:
            self.summary.escapes.append(
                Escape("thread", ctor, target, None, node, self.summary.name)
            )
        for local in locals_:
            self.summary.escapes.append(
                Escape("thread", ctor, None, local, node, self.summary.name)
            )

    def _escape_callback(self, node: ast.Call, via: str) -> None:
        targets, locals_ = self._escaping_callables(
            list(node.args) + [kw.value for kw in node.keywords]
        )
        for target in targets:
            self.summary.escapes.append(
                Escape("callback", via, target, None, node, self.summary.name)
            )
        for local in locals_:
            self.summary.escapes.append(
                Escape("callback", via, None, local, node, self.summary.name)
            )

    def _maybe_thread_assign(self, node: ast.Assign) -> None:
        """``t = threading.Thread(target=...)`` — remember the thread
        variable so a later ``t.start()`` knows what runs on it."""
        if not (
            isinstance(node.value, ast.Call)
            and _call_name(node.value.func) in _THREAD_CTORS
        ):
            return
        args = [
            kw.value for kw in node.value.keywords if kw.arg in ("target", "function")
        ] + list(node.value.args)
        targets, locals_ = self._escaping_callables(args)
        if targets or locals_:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._threads[target.id] = (targets, locals_)

    def _maybe_start(self, node: ast.Call) -> None:
        func = node.func
        assert isinstance(func, ast.Attribute)
        receiver = func.value
        if isinstance(receiver, ast.Name) and receiver.id in self._threads:
            targets, locals_ = self._threads[receiver.id]
            self.summary.starts.append(ThreadStart(targets, locals_, node))
        elif isinstance(receiver, ast.Call) and _call_name(receiver.func) in _THREAD_CTORS:
            # inline Thread(target=...).start()
            args = [kw.value for kw in receiver.keywords if kw.arg in ("target", "function")]
            args += list(receiver.args)
            targets, locals_ = self._escaping_callables(args)
            if targets or locals_:
                self.summary.starts.append(ThreadStart(targets, locals_, node))


def summarize_class(node: ast.ClassDef) -> ClassSummary:
    """Build the class summary (no caching — see :func:`class_summary`)."""
    scanner = _LockAttrScanner()
    method_nodes: list[ast.FunctionDef | ast.AsyncFunctionDef] = []
    for stmt in node.body:
        scanner.visit(stmt)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            method_nodes.append(stmt)
    method_names = {m.name for m in method_nodes}
    methods = {
        m.name: _MethodWalker(method_names, scanner.lock_attrs, m.name).run(m)
        for m in method_nodes
    }
    return ClassSummary(node.name, node, scanner.lock_attrs, methods)


def class_summary(ctx: object, node: ast.ClassDef) -> ClassSummary:
    """Cached per-(FileContext, class node) summary — RA108/109/110 share it."""
    cache = getattr(ctx, "_interproc_summaries", None)
    if cache is None:
        cache = {}
        setattr(ctx, "_interproc_summaries", cache)
    summary = cache.get(id(node))
    if summary is None:
        summary = summarize_class(node)
        cache[id(node)] = summary
    return summary
