"""The built-in project-invariant rules (RA101–RA115).

Each rule is deliberately narrow: it encodes one convention this
codebase has committed to, scoped to the files where the convention is
binding, so a finding is actionable rather than stylistic noise.
RA101–RA107 are single-method checks; RA108–RA110 are interprocedural
(call-graph + field-escape summaries from :mod:`tools.analyze.interproc`)
— the static complement of the runtime happens-before sanitizer in
:mod:`repro.analysis.racecheck`; RA111 is a constructor check; and
RA112–RA115 are CFG/dataflow rules (taint, lock-held regions, and
must-pass-guard analyses from :mod:`tools.analyze.dataflow`) — the
static complement of the runtime plan verifier in
:mod:`repro.analysis.plancheck`. See docs/ANALYSIS.md for the full
catalogue with bad/good examples.
"""

from __future__ import annotations

import ast

from tools.analyze import dataflow, interproc
from tools.analyze.core import FileContext, Rule, register

#: files whose whole job is timekeeping — exempt from RA101/RA106
_OBS_PATH = "repro/obs/"
#: the concurrency layer RA103 guards (paper Figure 3: v2transact + services)
_CONCURRENCY_SCOPE = ("repro/soe/services/", "repro/transaction/")

_WALL_CLOCK_FUNCS = {"time", "perf_counter", "perf_counter_ns", "monotonic", "monotonic_ns", "process_time"}
_MUTATING_METHODS = {
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "setdefault", "add", "discard", "appendleft", "extendleft",
}
_LOG_ATTRS = {"debug", "info", "warning", "error", "exception", "critical", "log", "count", "gauge", "observe", "warn"}
_LOG_BASES = {"logging", "logger", "log", "obs", "warnings"}
#: the transient-error types repro.util.retry retries on (RA107)
_RETRYABLE_NAMES = {
    "RetryableError",
    "NodeUnavailableError",
    "TransferDroppedError",
    "LogStallError",
    "LogSealedError",
    "RemoteSourceUnavailableError",
}


def _is_self_private_attr(node: ast.AST) -> bool:
    """``self._something`` (single leading underscore, not dunder)."""
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and node.attr.startswith("_")
        and not node.attr.startswith("__")
    )


def _call_name(func: ast.AST) -> str:
    """Dotted name of a call target, best effort (``time.perf_counter``)."""
    parts: list[str] = []
    while isinstance(func, ast.Attribute):
        parts.append(func.attr)
        func = func.value
    if isinstance(func, ast.Name):
        parts.append(func.id)
    return ".".join(reversed(parts))


@register
class NoWallClockOutsideObs(Rule):
    """RA101 — wall-clock reads must go through ``repro.obs``.

    PR 1 consolidated wall-time accounting into ``obs.timed``/``obs.latency``
    so functional timings and observability cannot drift apart. A raw
    ``time.time()``/``perf_counter()`` in engine code reintroduces the
    drift (and un-mockable clocks in tests).
    """

    code = "RA101"
    name = "no-wall-clock-outside-obs"
    description = "time.time()/perf_counter() outside repro.obs must use obs spans"
    source_prefilter = ("time",)

    @classmethod
    def applies_to(cls, rel_path: str) -> bool:
        return _OBS_PATH not in rel_path

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        self._clock_aliases: set[str] = set()

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                if alias.name in _WALL_CLOCK_FUNCS:
                    self._clock_aliases.add(alias.asname or alias.name)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node.func)
        bare = isinstance(node.func, ast.Name) and name in self._clock_aliases
        dotted = name.startswith("time.") and name.split(".", 1)[1] in _WALL_CLOCK_FUNCS
        if bare or dotted:
            self.report(
                node,
                f"wall-clock call {name}() outside repro.obs — use obs.timed()/"
                "obs.latency() (or obs.span) so timing stays observable",
            )
        self.generic_visit(node)


@register
class LockDiscipline(Rule):
    """RA102 — locks are held via ``with``, never a bare ``.acquire()``.

    A bare ``acquire`` without a ``try/finally`` release leaks the lock on
    any exception between acquire and release — the classic way a worker
    wedges the whole broker.
    """

    code = "RA102"
    name = "lock-with-statement"
    description = "no bare .acquire() without try/finally release; prefer `with lock:`"
    source_prefilter = ("acquire",)

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        self._finally_protected = 0

    def visit_Try(self, node: ast.Try) -> None:
        releases = any(
            isinstance(n, ast.Call)
            and isinstance(n.func, ast.Attribute)
            and n.func.attr == "release"
            for stmt in node.finalbody
            for n in ast.walk(stmt)
        )
        if releases:
            for stmt in node.body:
                self._finally_protected += 1
                self.visit(stmt)
                self._finally_protected -= 1
            for part in (node.handlers, node.orelse, node.finalbody):
                for stmt in part:
                    self.visit(stmt)
        else:
            self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "acquire"
            and self._finally_protected == 0
        ):
            target = _call_name(node.func.value) or "<lock>"
            self.report(
                node,
                f"bare {target}.acquire() without try/finally release — "
                f"use `with {target}:`",
            )
        self.generic_visit(node)


class _LockAttrScanner(ast.NodeVisitor):
    """Find attributes of a class that hold a ``threading.Lock``/``RLock``:
    ``self._lock = threading.Lock()`` in any method, or a dataclass field
    with ``default_factory=threading.Lock``."""

    def __init__(self) -> None:
        self.lock_attrs: set[str] = set()

    @staticmethod
    def _is_lock_factory(node: ast.AST) -> bool:
        name = _call_name(node)
        return name in ("threading.Lock", "threading.RLock", "Lock", "RLock")

    def visit_Assign(self, node: ast.Assign) -> None:
        if isinstance(node.value, ast.Call) and self._is_lock_factory(node.value.func):
            for target in node.targets:
                if _is_self_private_attr(target):
                    self.lock_attrs.add(target.attr)  # type: ignore[union-attr]
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        # dataclass style, either factory spelling:
        #   _lock: threading.Lock = field(default_factory=threading.Lock)
        #   _lock: threading.Lock = field(default_factory=lambda: threading.Lock())
        # (the lambda defers the factory lookup so sanitizer lock layers
        # installed after import still wrap the instance's lock)
        if (
            isinstance(node.target, ast.Name)
            and node.target.id.startswith("_")
            and isinstance(node.value, ast.Call)
            and _call_name(node.value.func) == "field"
        ):
            for kw in node.value.keywords:
                if kw.arg != "default_factory":
                    continue
                factory = kw.value
                if isinstance(factory, ast.Lambda) and isinstance(factory.body, ast.Call):
                    if self._is_lock_factory(factory.body.func):
                        self.lock_attrs.add(node.target.id)
                elif self._is_lock_factory(factory):
                    self.lock_attrs.add(node.target.id)
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        return  # do not descend into nested classes


@register
class GuardedSharedState(Rule):
    """RA103 — in the SOE concurrency layer, private containers of a
    lock-owning class are mutated only inside ``with self._lock``.

    These are exactly the objects Figure 3 shares between the broker,
    coordinator, and query services; an unguarded ``self._active[...] =``
    is a data race the GIL merely makes rare, not impossible.
    """

    code = "RA103"
    name = "guarded-shared-state"
    description = "self._* container writes in SOE services/transaction need `with self._lock`"
    source_prefilter = ("Lock",)

    #: methods that run before the object is shared
    _SETUP_METHODS = {"__init__", "__post_init__", "__new__"}

    @classmethod
    def applies_to(cls, rel_path: str) -> bool:
        return any(scope in rel_path for scope in _CONCURRENCY_SCOPE)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        scanner = _LockAttrScanner()
        for stmt in node.body:
            scanner.visit(stmt)
        if scanner.lock_attrs:
            checker = _GuardedWriteChecker(self, scanner.lock_attrs)
            self._symbol_stack.append(node.name)
            for stmt in node.body:
                checker.check(stmt)
            self._symbol_stack.pop()
        else:
            # lock-less classes are out of scope (nothing to hold);
            # still recurse for nested lock-owning classes
            self._symbol_stack.append(node.name)
            self.generic_visit(node)
            self._symbol_stack.pop()


class _GuardedWriteChecker:
    """Walk one lock-owning class, tracking lock-held regions."""

    def __init__(self, rule: GuardedSharedState, lock_attrs: set[str]) -> None:
        self.rule = rule
        self.lock_attrs = lock_attrs
        self._held = 0
        self._in_setup = False

    def check(self, node: ast.AST) -> None:
        method = getattr(node, "name", None)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            was_setup = self._in_setup
            self._in_setup = method in GuardedSharedState._SETUP_METHODS
            self.rule._symbol_stack.append(node.name)
            for stmt in node.body:
                self.check(stmt)
            self.rule._symbol_stack.pop()
            self._in_setup = was_setup
            return
        if isinstance(node, ast.With):
            holds = any(
                _is_self_private_attr(item.context_expr)
                and item.context_expr.attr in self.lock_attrs  # type: ignore[union-attr]
                for item in node.items
            )
            if holds:
                self._held += 1
            for stmt in node.body:
                self.check(stmt)
            if holds:
                self._held -= 1
            return
        self._inspect(node)
        for child in ast.iter_child_nodes(node):
            self.check(child)

    def _inspect(self, node: ast.AST) -> None:
        if self._held or self._in_setup:
            return
        # subscript store / delete: self._x[k] = v, del self._x[k]
        targets: list[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        for target in targets:
            if isinstance(target, ast.Subscript) and _is_self_private_attr(target.value):
                self._report(target, target.value.attr)  # type: ignore[union-attr]
        # mutation-method call in any position: self._x.append(...),
        # nodes = self._x.setdefault(...), return self._x.pop(...)
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATING_METHODS
            and _is_self_private_attr(node.func.value)
        ):
            self._report(node, node.func.value.attr)  # type: ignore[union-attr]

    def _report(self, node: ast.AST, attr: str) -> None:
        locks = ", ".join(f"self.{name}" for name in sorted(self.lock_attrs))
        self.rule.report(
            node,
            f"write to shared container self.{attr} outside `with {locks}` — "
            "guard it or move it into __init__",
        )


@register
class NoSwallowedBroadExcept(Rule):
    """RA104 — a broad ``except`` must re-raise or log.

    ``except Exception: pass`` hides exactly the failures the HTAP
    survey calls out (OLTP/OLAP interference surfacing as rare errors);
    rollback-then-``raise`` and log-and-continue are both fine.
    """

    code = "RA104"
    name = "no-swallowed-broad-except"
    description = "except Exception / bare except must re-raise or log"
    source_prefilter = ("except",)

    @staticmethod
    def _is_broad(handler: ast.ExceptHandler) -> bool:
        def broad_name(n: ast.AST) -> bool:
            return isinstance(n, ast.Name) and n.id in ("Exception", "BaseException")

        if handler.type is None:
            return True
        if broad_name(handler.type):
            return True
        if isinstance(handler.type, ast.Tuple):
            return any(broad_name(el) for el in handler.type.elts)
        return False

    @staticmethod
    def _handles(handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and func.attr in _LOG_ATTRS:
                    base = _call_name(func.value).split(".")[-1]
                    if base in _LOG_BASES or base.endswith("logger") or base.endswith("log"):
                        return True
        return False

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if self._is_broad(node) and not self._handles(node):
            what = "bare except" if node.type is None else "except Exception"
            self.report(
                node,
                f"{what} neither re-raises nor logs — narrow it, re-raise, "
                "or record it via repro.obs / logging",
            )
        self.generic_visit(node)


@register
class NoMutableDefaultArgs(Rule):
    """RA105 — mutable default arguments.

    A ``def f(x, acc=[])`` default is shared across calls; with the SOE
    services now reachable from multiple threads this graduates from
    footgun to data race.
    """

    code = "RA105"
    name = "no-mutable-default-args"
    description = "list/dict/set (or their constructors) as parameter defaults"

    @staticmethod
    def _is_mutable(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("list", "dict", "set", "bytearray", "deque", "defaultdict")
        )

    def _check_args(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        for default in list(node.args.defaults) + list(node.args.kw_defaults):
            if default is not None and self._is_mutable(default):
                self.report(
                    default,
                    f"mutable default argument in {node.name}() — default to "
                    "None and create the container inside the function",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_args(node)
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_args(node)
        self._visit_function(node)


@register
class ObsRegistrationConventions(Rule):
    """RA106 — metric objects are not registered per call.

    Hot paths use the cheap helpers (``obs.count``/``obs.observe``/
    ``obs.latency``); touching ``registry().counter(...)`` inside a
    function re-runs name/label interning on every call and bypasses the
    disabled-mode guard PR 1 benchmarked (E21).
    """

    code = "RA106"
    name = "obs-registration-at-module-scope"
    description = "registry.counter()/histogram()/gauge() calls belong at module scope or in repro.obs"
    source_prefilter = ("counter", "histogram", "gauge")

    _REGISTRATION = {"counter", "histogram", "gauge"}

    @classmethod
    def applies_to(cls, rel_path: str) -> bool:
        return _OBS_PATH not in rel_path

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        self._function_depth = 0

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._function_depth += 1
        super()._visit_function(node)
        self._function_depth -= 1

    def visit_Call(self, node: ast.Call) -> None:
        if (
            self._function_depth > 0
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in self._REGISTRATION
            and not (isinstance(node.func.value, ast.Name) and node.func.value.id == "obs")
        ):
            self.report(
                node,
                f"per-call metric registration .{node.func.attr}(...) — register at "
                "module scope or use the obs.count/obs.observe/obs.gauge helpers",
            )
        self.generic_visit(node)


@register
class BoundedRetryLoops(Rule):
    """RA107 — retry loops over transient errors must be bounded.

    A ``while True`` that swallows a :class:`RetryableError` subtype and
    goes around again has no attempt cap: against a *persistent* failure
    (node never revives, source stays dark) it spins forever — in this
    codebase that means a hung test, since faults are deterministic, not
    eventually-lucky. The sanctioned shape is iterating
    ``RetryPolicy.schedule()`` (repro.util.retry), which bounds attempts
    and charges backoff to the simulated clock.
    """

    code = "RA107"
    name = "bounded-retry-loops"
    description = "while True swallowing RetryableError needs an attempt cap (RetryPolicy.schedule)"
    source_prefilter = ("while",)

    @classmethod
    def applies_to(cls, rel_path: str) -> bool:
        return "repro/" in rel_path or "tools/" in rel_path

    @staticmethod
    def _caught_names(handler: ast.ExceptHandler) -> set[str]:
        def name_of(node: ast.AST) -> str:
            if isinstance(node, ast.Attribute):
                return node.attr
            if isinstance(node, ast.Name):
                return node.id
            return ""

        if handler.type is None:
            return set()
        if isinstance(handler.type, ast.Tuple):
            return {name_of(el) for el in handler.type.elts}
        return {name_of(handler.type)}

    @staticmethod
    def _leaves_loop(handler: ast.ExceptHandler) -> bool:
        """Does the handler escape the retry loop (re-raise/break/return)?"""
        return any(
            isinstance(n, (ast.Raise, ast.Break, ast.Return))
            for n in ast.walk(handler)
        )

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        self._reported: set[int] = set()

    def visit_While(self, node: ast.While) -> None:
        unbounded = isinstance(node.test, ast.Constant) and bool(node.test.value)
        if unbounded:
            for stmt in node.body:
                for inner in ast.walk(stmt):
                    if not isinstance(inner, ast.Try):
                        continue
                    for handler in inner.handlers:
                        caught = self._caught_names(handler) & _RETRYABLE_NAMES
                        if not caught or self._leaves_loop(handler):
                            continue
                        if id(handler) in self._reported:
                            continue
                        self._reported.add(id(handler))
                        self.report(
                            handler,
                            f"unbounded retry: while True swallows "
                            f"{sorted(caught)[0]} with no attempt cap — iterate "
                            "RetryPolicy.schedule() (repro.util.retry) instead",
                        )
        self.generic_visit(node)


# --------------------------------------------------------------------------
# interprocedural thread-escape rules (RA108–RA110)
# --------------------------------------------------------------------------

#: caller-holds-lock helpers are checked at their call sites, not their bodies
def _is_locked_helper(name: str) -> bool:
    return name.endswith("_locked")


@register
class ThreadEscapeWithoutLock(Rule):
    """RA108 — mutable state escaping to a spawned thread or callback
    without lock protection.

    A bound method handed to ``threading.Thread(target=...)`` or a
    callback registry (``broker.subscribe_oltp(self._on_commit)``) runs
    on a foreign thread. Every attribute that method (transitively)
    touches is therefore shared with the rest of the class — if any of
    those attributes is also written, and either side accesses it
    outside a ``with self.<lock>:`` region, two threads can interleave
    on it. Guarded call sites confer guardedness on the callee
    (``with self._lock: self._apply(...)`` protects ``_apply``'s body),
    so the fix is a lock around both sides, not a rename.
    """

    code = "RA108"
    name = "thread-escape-without-lock"
    description = "method escaping to a thread/callback shares unguarded mutable state"
    source_prefilter = ("Thread", "Timer", "subscribe", "register_callback", "add_listener", "add_callback")

    @classmethod
    def applies_to(cls, rel_path: str) -> bool:
        return "repro/" in rel_path

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        summary = interproc.class_summary(self.ctx, node)
        self._symbol_stack.append(node.name)
        for escape in summary.escapes:
            self._check_escape(summary, escape)
        self.generic_visit(node)
        self._symbol_stack.pop()

    def _check_escape(self, summary: interproc.ClassSummary, escape: interproc.Escape) -> None:
        target = escape.target if escape.target is not None else escape.local
        if target is None:
            return
        escaped = summary.transitive_accesses(target)
        if not escaped:
            return
        closure = summary.closure(target)
        outside: list[interproc.Access] = []
        for name, method in summary.methods.items():
            if name in closure or name in interproc.SETUP_METHODS:
                continue
            outside.extend(summary.transitive_accesses(method))
        escaped_attrs = {a.attr for a in escaped}
        racy: set[str] = set()
        for attr in sorted(escaped_attrs & {a.attr for a in outside}):
            accesses = [a for a in escaped + outside if a.attr == attr]
            if any(a.is_write for a in accesses) and any(not a.guarded for a in accesses):
                racy.add(attr)
        if racy:
            attrs = ", ".join(f"self.{a}" for a in sorted(racy))
            where = "thread" if escape.kind == "thread" else f"callback ({escape.via})"
            self._symbol_stack.append(escape.method)
            self.report(
                escape.node,
                f"{escape.describe()} escapes to a {where} but shares {attrs} "
                "with other methods without consistent lock protection — "
                "guard both sides with one lock",
            )
            self._symbol_stack.pop()


@register
class CheckThenActRead(Rule):
    """RA109 — a read outside the ``with lock:`` that guards the write.

    RA103 catches unguarded *writes*; the subtler half of the race is
    the check-then-act read — ``if x in self._tables`` outside the lock
    while another thread mutates ``self._tables`` inside it. The read
    sees a torn decision even though every write is guarded. Flagged
    per (method, attribute) for private attributes that have at least
    one guarded non-setup write. ``*_locked`` helper methods (the
    caller-holds-lock convention) and setup methods are exempt, as are
    reads reached only through guarded call sites.
    """

    code = "RA109"
    name = "check-then-act-read"
    description = "unguarded read of an attribute whose writes are lock-guarded"
    source_prefilter = ("Lock",)

    @classmethod
    def applies_to(cls, rel_path: str) -> bool:
        return any(scope in rel_path for scope in _CONCURRENCY_SCOPE)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        summary = interproc.class_summary(self.ctx, node)
        self._symbol_stack.append(node.name)
        if summary.lock_attrs:
            self._check(summary)
        self.generic_visit(node)
        self._symbol_stack.pop()

    def _check(self, summary: interproc.ClassSummary) -> None:
        roots = [
            m for name, m in summary.methods.items()
            if name not in interproc.SETUP_METHODS and not _is_locked_helper(name)
        ]
        accesses: list[interproc.Access] = []
        for method in roots:
            accesses.extend(summary.transitive_accesses(method))
        guarded_written = {
            a.attr for a in accesses
            if a.is_write and a.guarded and a.attr.startswith("_")
        }
        reported: set[tuple[str, str]] = set()
        for access in accesses:
            if (
                access.attr in guarded_written
                and not access.is_write
                and not access.guarded
                and not _is_locked_helper(access.method)
                and access.method not in interproc.SETUP_METHODS
                and (access.method, access.attr) not in reported
            ):
                reported.add((access.method, access.attr))
                locks = ", ".join(f"self.{n}" for n in sorted(summary.lock_attrs))
                self._symbol_stack.append(access.method)
                self.report(
                    access.node,
                    f"read of self.{access.attr} outside `with {locks}` while "
                    "its writes are guarded — check-then-act race; take the "
                    "lock around the read",
                )
                self._symbol_stack.pop()


@register
class UnsafePublicationAfterStart(Rule):
    """RA110 — assigning ``self._x`` after ``Thread.start()`` on a thread
    that reads it.

    ``t.start(); self._config = build()`` publishes the attribute with
    no happens-before edge to the already-running thread: the target may
    read the old value, the new one, or (for compound state) a mix.
    Assign before ``start()``, or guard both the assignment and the
    thread's reads with one lock.
    """

    code = "RA110"
    name = "unsafe-publication-after-start"
    description = "self attribute assigned after Thread.start() on a thread that reads it"
    source_prefilter = ("Thread", "Timer")

    @classmethod
    def applies_to(cls, rel_path: str) -> bool:
        return "repro/" in rel_path

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        summary = interproc.class_summary(self.ctx, node)
        self._symbol_stack.append(node.name)
        for method in summary.methods.values():
            if method.starts:
                self._check_method(summary, method)
        self.generic_visit(node)
        self._symbol_stack.pop()

    def _check_method(
        self, summary: interproc.ClassSummary, method: interproc.MethodSummary
    ) -> None:
        reported: set[tuple[int, str]] = set()
        for start in method.starts:
            target_reads: dict[str, bool] = {}  # attr -> all reads guarded
            for target in list(start.targets) + list(start.locals):
                for access in summary.transitive_accesses(target):
                    if not access.is_write:
                        seen = target_reads.get(access.attr, True)
                        target_reads[access.attr] = seen and access.guarded
            if not target_reads:
                continue
            start_line = getattr(start.node, "lineno", 0)
            for access in method.accesses:
                line = getattr(access.node, "lineno", 0)
                if (
                    access.is_bind
                    and line > start_line
                    and access.attr in target_reads
                    and not (access.guarded and target_reads[access.attr])
                    and (line, access.attr) not in reported
                ):
                    reported.add((line, access.attr))
                    self._symbol_stack.append(method.name)
                    self.report(
                        access.node,
                        f"self.{access.attr} assigned after the thread reading "
                        "it was started — unsafe publication; assign before "
                        "start() or lock both sides",
                    )
                    self._symbol_stack.pop()


@register
class BoundedQueues(Rule):
    """RA111 — unbounded ``queue.Queue()`` / ``deque()`` in overload-sensitive
    packages.

    A queue without ``maxsize``/``maxlen`` in the scale-out, streaming,
    or federation path grows without limit under load — the failure mode
    the admission controller and stream backpressure exist to prevent.
    Bound it, or annotate a deliberately unbounded container (one whose
    depth is enforced elsewhere, e.g. by shed-at-submit) with
    ``# repro: allow(unbounded-queue)``.
    """

    code = "RA111"
    name = "unbounded-queue"
    description = "queue.Queue()/deque() without maxsize/maxlen in soe/streaming/federation/qos"
    source_prefilter = ("Queue", "deque")

    _SCOPES = (
        "repro/soe/",
        "repro/streaming/",
        "repro/federation/",
        "repro/qos/",
    )
    _QUEUE_NAMES = {"Queue", "LifoQueue", "PriorityQueue", "SimpleQueue"}
    _QUEUE_MODULES = {"queue", "multiprocessing"}
    _DEQUE_MODULES = {"collections"}

    @classmethod
    def applies_to(cls, rel_path: str) -> bool:
        return any(scope in rel_path for scope in cls._SCOPES)

    def visit_Call(self, node: ast.Call) -> None:
        kind = self._constructor_kind(node.func)
        if kind == "deque" and not self._deque_bounded(node):
            self.report(
                node,
                "deque() without maxlen grows without bound under load; "
                "pass maxlen=... or annotate `# repro: allow(unbounded-queue)`",
            )
        elif kind == "queue" and not self._queue_bounded(node):
            self.report(
                node,
                "Queue() without maxsize grows without bound under load; "
                "pass maxsize=... or annotate `# repro: allow(unbounded-queue)`",
            )
        self.generic_visit(node)

    def _constructor_kind(self, func: ast.expr) -> str | None:
        if isinstance(func, ast.Name):
            if func.id == "deque":
                return "deque"
            if func.id in self._QUEUE_NAMES:
                return "queue"
            return None
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            if func.attr == "deque" and func.value.id in self._DEQUE_MODULES:
                return "deque"
            if func.attr in self._QUEUE_NAMES and func.value.id in self._QUEUE_MODULES:
                return "queue"
        return None

    @staticmethod
    def _deque_bounded(node: ast.Call) -> bool:
        # deque(iterable, maxlen) — second positional is the bound
        if len(node.args) >= 2:
            return not _is_none(node.args[1])
        for keyword in node.keywords:
            if keyword.arg == "maxlen":
                return not _is_none(keyword.value)
        return False

    @staticmethod
    def _queue_bounded(node: ast.Call) -> bool:
        # Queue(maxsize) — zero/negative means infinite
        candidates = list(node.args[:1]) + [
            keyword.value for keyword in node.keywords if keyword.arg == "maxsize"
        ]
        for value in candidates:
            if isinstance(value, ast.Constant) and isinstance(value.value, int):
                return value.value > 0
            if not _is_none(value):
                return True  # a computed bound: trust it
        return False


def _is_none(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


# --------------------------------------------------------------------------
# RA112–RA115: dataflow rules (tools.analyze.dataflow)
# --------------------------------------------------------------------------


class _DataflowRule(Rule):
    """Shared driver for the CFG-based rules: visit each function once and
    hand it (plus its cached CFG) to ``check_function``. Subclasses set
    ``source_prefilter`` so the driver skips files that can't contain the
    pattern."""

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._symbol_stack.append(node.name)
        self.check_function(node)
        self.generic_visit(node)
        self._symbol_stack.pop()

    def check_function(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        raise NotImplementedError


@register
class FrozenPlanEntryMutation(_DataflowRule):
    """RA112 — a value derived from a frozen plan-cache entry is mutated.

    ``PlanCache`` entries are shared across sessions: ``instantiate``
    must build a substitution *copy*, never write through the frozen
    spine (the PR 6 frozen-plan bug wrote new literal values into the
    cached plan, corrupting every later hit of that shape). Taint starts
    at ``plan_cache.get(...)``/``_entries.get(...)`` results and at
    parameters annotated ``PlanEntry``, flows through iteration adaptors
    (``zip``, ``enumerate``), attribute loads, and tuple unpacking; any
    attribute/subscript store, mutating method call, or
    ``setattr``/``object.__setattr__`` on a tainted value is a finding.
    """

    code = "RA112"
    name = "frozen-plan-entry-mutation"
    description = "value tainted by a frozen plan-cache entry flows to a mutation site"
    source_prefilter = ("plan_cache", "plancache", "PlanEntry", "_entries")

    _SETATTR_CALLS = {"setattr", "object.__setattr__"}

    @classmethod
    def applies_to(cls, rel_path: str) -> bool:
        return "repro/sql/" in rel_path or "repro/core/" in rel_path

    class _Taint(dataflow.TaintAnalysis):
        def is_source(self, expr: ast.AST) -> bool:
            if not (
                isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and expr.func.attr == "get"
            ):
                return False
            receiver = dataflow.canonical_name(expr.func.value, self.env) or ""
            return (
                receiver.endswith("_entries")
                or "plan_cache" in receiver
                or "plancache" in receiver
            )

    def check_function(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        seeds = {
            arg.arg
            for arg in [*func.args.args, *func.args.posonlyargs, *func.args.kwonlyargs]
            if arg.annotation is not None and "PlanEntry" in ast.dump(arg.annotation)
        }
        if not seeds and not any(
            token in self.ctx.source for token in ("plan_cache", "plancache", "_entries")
        ):
            return
        cfg = dataflow.get_cfg(self.ctx, func)
        env = dataflow.get_copy_env(self.ctx, func)
        analysis = self._Taint(initial_tainted=seeds, env=env)
        states = analysis.run(cfg)
        for block, index, kind, node in cfg.elements():
            state = states.get((block.index, index))
            if kind != "stmt" or not state:
                continue
            self._scan_mutations(node, state)

    def _scan_mutations(self, stmt: ast.AST, tainted: frozenset) -> None:
        def flag(node: ast.AST, what: str) -> None:
            self.report(
                node,
                f"{what} on a value derived from a frozen plan-cache entry — "
                "cached plans are shared across sessions and must stay "
                "immutable; bind constants via a substitution copy "
                "(plancache.instantiate) instead",
            )

        for node in ast.walk(stmt):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    for leaf in ast.walk(target):
                        if isinstance(leaf, (ast.Attribute, ast.Subscript)):
                            root = dataflow.root_name(leaf)
                            if root in tainted:
                                flag(node, "attribute/subscript store")
                                break
                    else:
                        continue
                    break
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if (
                        isinstance(target, (ast.Attribute, ast.Subscript))
                        and dataflow.root_name(target) in tainted
                    ):
                        flag(node, "delete")
            elif isinstance(node, ast.Call):
                name = _call_name(node.func)
                if name in self._SETATTR_CALLS and node.args:
                    root = dataflow.root_name(node.args[0])
                    if root in tainted or (
                        isinstance(node.args[0], ast.Name)
                        and node.args[0].id in tainted
                    ):
                        flag(node, f"{name}()")
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATING_METHODS
                    and dataflow.root_name(node.func.value) in tainted
                ):
                    flag(node, f".{node.func.attr}()")


@register
class BlockingCallUnderLock(_DataflowRule):
    """RA113 — a blocking call is reachable while a lock is held.

    Sleeping or doing IO inside a ``with lock:`` region serialises every
    thread contending for that lock behind the slow operation — the
    latency cliff the governor exists to prevent. Lock identity is
    tracked through local aliases (``lock = self._lock; with lock:``)
    and held regions through the CFG, so a blocking call in a helper
    branch of the region is still caught. ``Condition.wait`` is exempt
    (it releases the lock while waiting).
    """

    code = "RA113"
    name = "blocking-call-under-lock"
    description = "sleep/IO/join reachable while a lock is held"
    source_prefilter = ("lock", "Lock", "mutex")

    _BLOCKING_PREFIXES = ("subprocess.", "socket.", "requests.", "urllib.")

    @classmethod
    def applies_to(cls, rel_path: str) -> bool:
        return "repro/" in rel_path

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        self._sleep_aliases: set[str] = set()

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                if alias.name == "sleep":
                    self._sleep_aliases.add(alias.asname or alias.name)
        self.generic_visit(node)

    def check_function(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        cfg = dataflow.get_cfg(self.ctx, func)
        env = dataflow.get_copy_env(self.ctx, func)
        states = dataflow.LockHeldAnalysis(env).run(cfg)
        for block, index, kind, node in cfg.elements():
            held = states.get((block.index, index))
            if kind != "stmt" or not held:
                continue
            for call, what in self._blocking_calls(node):
                self.report(
                    call,
                    f"{what} while holding {', '.join(sorted(held))} — move "
                    "the blocking work outside the critical section (snapshot "
                    "under the lock, block after release)",
                )

    def _blocking_calls(self, stmt: ast.AST) -> list[tuple[ast.Call, str]]:
        found: list[tuple[ast.Call, str]] = []
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node.func)
            if name == "time.sleep" or name in self._sleep_aliases:
                found.append((node, f"{name}() sleeps"))
            elif name == "open":
                found.append((node, "open() does file IO"))
            elif name.startswith(self._BLOCKING_PREFIXES):
                found.append((node, f"{name}() blocks on an external resource"))
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"
                and not node.args
                and not node.keywords
            ):
                # zero-argument .join() is a thread join; str.join always
                # takes the iterable positionally
                found.append((node, ".join() waits on another thread"))
        return found


@register
class UnchargedRowLoop(_DataflowRule):
    """RA114 — a storage-scan loop produces rows with no governor charge
    in sight.

    Every row that leaves a scan must be charged to the query's
    ``ResourceGovernor`` (docs/QOS.md), or a runaway query sails past
    its budget. A ``for`` loop over a storage source (partitions,
    visible positions, scan ordinals) that yields or appends rows needs
    charge evidence — ``.charge()``, ``.should_stop``,
    ``.remaining_rows`` — inside the loop or on the path into it.
    Interior operator loops (join probes, aggregation) are out of
    scope: their input was already charged at the scan.
    """

    code = "RA114"
    name = "uncharged-row-loop"
    description = "storage-source row loop with no governor charge on the path"
    source_prefilter = ("governor",)

    _SOURCE_NAMES = {"ordinals", "positions", "partitions", "rows", "batches"}
    _SOURCE_ATTRS = {"partitions", "visible_positions", "scan", "scan_rows"}
    _CHARGE_ATTRS = {"charge", "should_stop", "remaining_rows", "charge_planning"}

    @classmethod
    def applies_to(cls, rel_path: str) -> bool:
        return "repro/sql/" in rel_path

    def check_function(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        if "governor" not in ast.dump(func):
            return  # interior operator: inputs already charged upstream
        cfg = dataflow.get_cfg(self.ctx, func)
        for block, index, kind, node in cfg.elements():
            if kind != "loop" or not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            if not self._is_storage_source(node.iter):
                continue
            if not self._produces_rows(node):
                continue
            if self._has_charge(node):
                continue
            if any(
                self._has_charge(element_node)
                for reaching in cfg.reaching_blocks(block)
                for _kind, element_node in reaching.elements
            ):
                continue
            self.report(
                node,
                "loop over a storage source emits rows with no governor "
                "charge inside the loop or on the path into it — charge "
                "the batch (governor.charge) or gate on should_stop",
            )

    def _is_storage_source(self, iterable: ast.expr) -> bool:
        for node in ast.walk(iterable):
            if isinstance(node, ast.Attribute) and node.attr in self._SOURCE_ATTRS:
                return True
            if isinstance(node, ast.Name) and node.id in self._SOURCE_NAMES:
                return True
        return False

    @staticmethod
    def _produces_rows(loop: ast.For | ast.AsyncFor) -> bool:
        for node in ast.walk(loop):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("append", "extend")
            ):
                return True
        return False

    def _has_charge(self, node: ast.AST) -> bool:
        for leaf in ast.walk(node):
            if isinstance(leaf, ast.Attribute) and leaf.attr in self._CHARGE_ATTRS:
                return True
        return False


@register
class UnguardedFeedbackObservation(_DataflowRule):
    """RA115 — ``observe_actual`` is reachable without evaluating the
    exemption guards.

    A memo-served scan or a governor-truncated batch must *not* record
    its row count as a true cardinality: the memo would double-record
    and a degraded count biases future estimates low (the PR 6
    scan-memo bug class). Every path to an ``observe_actual`` call in
    engine code must evaluate a test mentioning ``feedback_exempt``,
    ``should_stop``, or ``degraded`` first — the early-return guard and
    the enclosing-``if`` both qualify.
    """

    code = "RA115"
    name = "unguarded-feedback-observation"
    description = "observe_actual reachable on a memo-served/degraded path"
    source_prefilter = ("observe_actual",)

    _GUARD_TOKENS = ("feedback_exempt", "should_stop", "degraded")

    @classmethod
    def applies_to(cls, rel_path: str) -> bool:
        return "repro/sql/" in rel_path

    def check_function(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        if func.name == "observe_actual":
            return  # the feedback-store primitive itself, not a call site
        calls = [
            node
            for node in ast.walk(func)
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "observe_actual"
        ]
        if not calls:
            return
        cfg = dataflow.get_cfg(self.ctx, func)
        env = dataflow.get_copy_env(self.ctx, func)
        states = dataflow.GuardPassedAnalysis(self._GUARD_TOKENS, env).run(cfg)
        # map each call to the guard state of the element holding it; a
        # loop header's element spans only its iterable (the body's calls
        # live in the body blocks), and unreachable elements stay absent
        call_states: dict[int, bool] = {}
        for block, index, kind, node in cfg.elements():
            state = states.get((block.index, index))
            if state is None:
                continue
            scope: ast.AST = node
            if kind == "loop" and isinstance(node, (ast.For, ast.AsyncFor)):
                scope = node.iter
            for leaf in ast.walk(scope):
                if isinstance(leaf, ast.Call):
                    call_states[id(leaf)] = state
        for call in calls:
            if call_states.get(id(call), True) is False:
                self.report(
                    call,
                    "observe_actual() reachable without evaluating "
                    "feedback_exempt/should_stop/degraded — a memo-served or "
                    "truncated batch would be recorded as a true cardinality",
                )


@register
class PollingLoopWithoutSeam(Rule):
    """RA116 — wall-clock polling in the concurrency layer: ``time.sleep``
    or a busy-wait loop that spins without touching a scheduling seam.

    schedcheck (repro.analysis.schedcheck) serializes threads onto one
    runnable token and hands it over only at the registry seams
    (repro.analysis.events): lock/queue ops, join, tracked fields, the
    message fences. A wait built from ``time.sleep`` or from re-testing
    a condition whose inputs the loop body never changes makes progress
    only through *wall time* or *another OS thread* — under exploration
    that is a guaranteed livelock verdict, and in production it couples
    protocol progress to real time the simulated clock cannot advance.
    Wait on a lock/queue/join, or advance the injected clock.
    """

    code = "RA116"
    name = "polling-loop-without-seam"
    description = "time.sleep/busy-wait polling in soe/qos without a yield or clock seam"
    source_prefilter = ("sleep", "while")

    #: calls that reach a scheduling seam (or the simulated clock) and so
    #: let a waiting loop be woken / explored deterministically
    _SEAM_CALLS = frozenset({
        "acquire", "release", "wait", "join", "get", "put", "get_nowait",
        "put_nowait", "advance", "tick", "notify", "notify_all",
        "append", "transfer",
    })

    @classmethod
    def applies_to(cls, rel_path: str) -> bool:
        return "repro/soe/" in rel_path or "repro/qos/" in rel_path

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node.func)
        if name in ("time.sleep", "sleep"):
            self.report(
                node,
                "time.sleep() in the concurrency layer — wall-time waits are "
                "invisible to schedcheck and the simulated clock; block on a "
                "lock/queue/join or charge the injected clock instead",
            )
        self.generic_visit(node)

    # -- busy-wait detection --------------------------------------------------

    @staticmethod
    def _dotted_names(node: ast.AST) -> set[str]:
        """Bare names, attribute chains, and leaf attrs mentioned in a node."""
        names: set[str] = set()
        for leaf in ast.walk(node):
            if isinstance(leaf, ast.Name):
                names.add(leaf.id)
            elif isinstance(leaf, ast.Attribute):
                names.add(leaf.attr)
                dotted = _call_name(leaf)
                if dotted:
                    names.add(dotted)
        return names

    def _makes_progress(self, body: list[ast.stmt], test_names: set[str]) -> bool:
        for stmt in body:
            for leaf in ast.walk(stmt):
                if isinstance(leaf, (ast.Yield, ast.YieldFrom, ast.Await,
                                     ast.Return, ast.Raise, ast.Break)):
                    return True
                if isinstance(leaf, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    targets = (
                        leaf.targets if isinstance(leaf, ast.Assign) else [leaf.target]
                    )
                    for target in targets:
                        if self._dotted_names(target) & test_names:
                            return True
                if isinstance(leaf, ast.Call):
                    name = _call_name(leaf.func)
                    attr = name.rsplit(".", 1)[-1]
                    if attr in self._SEAM_CALLS:
                        return True
                    # a method call on an object the test reads presumably
                    # mutates it (``while stack: stack.pop()``)
                    if isinstance(leaf.func, ast.Attribute) and (
                        self._dotted_names(leaf.func.value) & test_names
                    ):
                        return True
        return False

    def visit_While(self, node: ast.While) -> None:
        # `while True:` is RA107's territory (unbounded retry); a test the
        # loop can never observe changing is ours
        if not isinstance(node.test, ast.Constant):
            test_names = self._dotted_names(node.test)
            if not self._makes_progress(node.body, test_names):
                self.report(
                    node,
                    "busy-wait: the loop re-tests a condition its body never "
                    "changes and touches no scheduling seam — it spins until "
                    "another OS thread intervenes, which schedcheck reports "
                    "as livelock; wait on a lock/queue/join or the clock",
                )
        self.generic_visit(node)


@register
class FenceTokenDiscipline(Rule):
    """RA117 — ownership-mutating seams in ``repro/soe/`` carry a fence.

    The membership layer (``repro.soe.membership``) rejects zombie
    writers with epoch-numbered fence tokens, but that guarantee only
    holds if every ownership-mutating method actually threads the token
    through: it must take a ``fence`` parameter and *use* it — validate
    it against the installed guard or forward it to the next seam down.
    A mutating method without the parameter is a hole a stale-epoch
    writer walks straight through; one that accepts the token and drops
    it on the floor is the same hole wearing a seatbelt.
    """

    code = "RA117"
    name = "fence-token-discipline"
    description = "soe ownership-mutating methods must accept and use a `fence` token"
    source_prefilter = (
        "ownership",
        "swap_placement",
        "class TransactionBroker",
        "class SharedLog",
    )

    #: method names that mutate partition ownership wherever they appear
    _METHODS = frozenset(
        {
            "install_ownership",
            "release_ownership",
            "transfer_ownership",
            "swap_placement",
        }
    )
    #: (class, method) write seams below the ownership API that a zombie
    #: can reach directly — fenced as defence in depth
    _CLASS_METHODS = frozenset(
        {
            ("TransactionBroker", "submit"),
            ("SharedLog", "append"),
            ("DataNode", "ingest"),
        }
    )

    @classmethod
    def applies_to(cls, rel_path: str) -> bool:
        return "repro/soe/" in rel_path

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        self._class_stack: list[str] = []

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        super().visit_ClassDef(node)
        self._class_stack.pop()

    def _is_target(self, method: str) -> bool:
        if method in self._METHODS:
            return True
        owner = self._class_stack[-1] if self._class_stack else ""
        return (owner, method) in self._CLASS_METHODS

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        if self._class_stack and self._is_target(node.name):
            arg_names = {
                arg.arg
                for arg in (
                    *node.args.posonlyargs,
                    *node.args.args,
                    *node.args.kwonlyargs,
                )
            }
            if "fence" not in arg_names:
                self.report(
                    node,
                    f"ownership-mutating {node.name}() takes no `fence` "
                    "parameter — a stale-epoch writer cannot be rejected here",
                )
            elif not any(
                isinstance(leaf, ast.Name)
                and leaf.id == "fence"
                and isinstance(leaf.ctx, ast.Load)
                for stmt in node.body
                for leaf in ast.walk(stmt)
            ):
                self.report(
                    node,
                    f"{node.name}() accepts `fence` but never validates or "
                    "forwards it — the token dies here",
                )
        super()._visit_function(node)
