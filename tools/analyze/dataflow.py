"""Intraprocedural CFG + forward dataflow for the lint rules.

RA101–RA111 are (mostly) single-pass AST walks; the plan-cache and
governor invariants added with the plancheck work need *path*
information — "is this value derived from a frozen cache entry?",
"which locks are held at this call?", "does every path to this call
evaluate a guard?". This module supplies the shared machinery:

* :class:`CFG` / :func:`get_cfg` — a per-function control-flow graph of
  basic blocks whose elements are ``(kind, ast_node)`` pairs. ``kind``
  is ``"stmt"`` (a non-branching statement), ``"test"`` (a branch or
  loop condition — *evaluated on every path leaving the block*),
  ``"loop"`` (a ``for`` header, carrying its target binding),
  ``"acquire"``/``"release"`` (a ``with``-item entering/leaving scope).
  Loops get back edges, ``try`` bodies get edges into their handlers,
  ``break``/``continue``/``return``/``raise`` divert the walk. Nested
  ``def``/``class`` are opaque single elements — rules analyze each
  function separately.
* :class:`ForwardAnalysis` — a worklist fixpoint driver: subclasses
  define ``initial``/``transfer``/``join`` and get back the state
  *entering* every element. Unreachable blocks stay at ``None``.
* :class:`TaintAnalysis` — reaching-taint over variable names, with
  pass-through calls (``zip``/``enumerate``/...), method-on-tainted
  propagation, and tuple-unpack binding (RA112).
* :class:`LockHeldAnalysis` — may-analysis of held locks, identities
  canonicalised through :func:`copy_env` (RA113).
* :class:`GuardPassedAnalysis` — must-analysis: has every path
  evaluated a test mentioning one of the guard tokens? (RA115).

CFGs are cached per :class:`~tools.analyze.core.FileContext` (keyed by
function node identity) so the four dataflow rules build each one once.
"""

from __future__ import annotations

import ast
from typing import Any, Iterator

from tools.analyze.core import FileContext


def call_name(func: ast.AST) -> str:
    """Dotted name of a call target, best effort (``time.sleep``)."""
    parts: list[str] = []
    while isinstance(func, ast.Attribute):
        parts.append(func.attr)
        func = func.value
    if isinstance(func, ast.Name):
        parts.append(func.id)
    return ".".join(reversed(parts))


def canonical_name(node: ast.AST, env: dict[str, str] | None = None) -> str | None:
    """Dotted name of a ``Name``/``Attribute`` chain, with local aliases
    resolved through ``env`` (``lock = self._lock; with lock:`` names
    ``self._lock``). Returns None for anything else (calls, literals)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = env.get(node.id, node.id) if env else node.id
    parts.append(base)
    return ".".join(reversed(parts))


def root_name(node: ast.AST) -> str | None:
    """Base variable of an ``Attribute``/``Subscript`` chain (``entry``
    for ``entry.plan.children[0]``)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def copy_env(func: ast.AST) -> dict[str, str]:
    """Flow-insensitive copy propagation: local name → the canonical
    dotted chain it aliases, for names assigned exactly once from a
    plain ``Name``/``Attribute`` chain. Multiply-assigned names drop out
    (their identity is path-dependent and not worth guessing)."""
    env: dict[str, str] = {}
    dropped: set[str] = set()

    def bind(name: str, source: ast.AST) -> None:
        if name in dropped:
            return
        if name in env:
            del env[name]
            dropped.add(name)
            return
        chain = canonical_name(source)
        if chain:
            env[name] = chain
        else:
            dropped.add(name)

    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                bind(target.id, node.value)
        elif isinstance(node, ast.withitem) and isinstance(
            node.optional_vars, ast.Name
        ):
            bind(node.optional_vars.id, node.context_expr)
    # resolve alias-of-alias chains (a = self._lock; b = a)
    for name in list(env):
        seen = {name}
        chain = env[name]
        while True:
            head = chain.split(".", 1)[0]
            if head in seen or head not in env:
                break
            seen.add(head)
            rest = chain[len(head) :]
            chain = env[head] + rest
        env[name] = chain
    return env


# --------------------------------------------------------------------------
# CFG
# --------------------------------------------------------------------------


class Block:
    """One basic block: straight-line elements plus graph edges."""

    __slots__ = ("index", "elements", "succs", "preds")

    def __init__(self, index: int) -> None:
        self.index = index
        self.elements: list[tuple[str, ast.AST]] = []
        self.succs: list["Block"] = []
        self.preds: list["Block"] = []


class CFG:
    """Control-flow graph of one function body."""

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.func = func
        self.blocks: list[Block] = []
        self._loops: list[tuple[Block, Block]] = []  # (header, after)
        self.entry = self._new_block()
        self.exit = self._new_block()
        end = self._stmts(func.body, self.entry)
        self._edge(end, self.exit)

    # -- construction ------------------------------------------------------

    def _new_block(self) -> Block:
        block = Block(len(self.blocks))
        self.blocks.append(block)
        return block

    def _edge(self, src: Block | None, dst: Block) -> None:
        if src is not None and dst not in src.succs:
            src.succs.append(dst)
            dst.preds.append(src)

    def _stmts(self, body: list[ast.stmt], current: Block) -> Block:
        for stmt in body:
            next_block = self._stmt(stmt, current)
            if next_block is None:
                # break/continue/return/raise ended the path; anything
                # after it lives in a predecessor-less (dead) block
                next_block = self._new_block()
            current = next_block
        return current

    def _stmt(self, stmt: ast.stmt, current: Block) -> Block | None:
        if isinstance(stmt, ast.If):
            current.elements.append(("test", stmt.test))
            then_block = self._new_block()
            self._edge(current, then_block)
            then_end = self._stmts(stmt.body, then_block)
            after = self._new_block()
            if stmt.orelse:
                else_block = self._new_block()
                self._edge(current, else_block)
                else_end = self._stmts(stmt.orelse, else_block)
                self._edge(else_end, after)
            else:
                self._edge(current, after)
            self._edge(then_end, after)
            return after
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            header = self._new_block()
            self._edge(current, header)
            if isinstance(stmt, ast.While):
                header.elements.append(("test", stmt.test))
            else:
                header.elements.append(("loop", stmt))
            after = self._new_block()
            body_block = self._new_block()
            self._edge(header, body_block)
            self._edge(header, after)
            self._loops.append((header, after))
            body_end = self._stmts(stmt.body, body_block)
            self._loops.pop()
            self._edge(body_end, header)
            if stmt.orelse:
                return self._stmts(stmt.orelse, after)
            return after
        if isinstance(stmt, ast.Try):
            first_new = len(self.blocks)
            body_block = self._new_block()
            self._edge(current, body_block)
            body_end = self._stmts(stmt.body, body_block)
            if stmt.orelse:
                body_end = self._stmts(stmt.orelse, body_end)
            body_range = self.blocks[first_new : len(self.blocks)]
            after = self._new_block()
            self._edge(body_end, after)
            for handler in stmt.handlers:
                handler_block = self._new_block()
                # an exception can surface anywhere in the body: edge
                # from every body block into the handler
                for block in body_range:
                    self._edge(block, handler_block)
                handler_block.elements.append(("stmt", handler))
                handler_end = self._stmts(handler.body, handler_block)
                self._edge(handler_end, after)
            if stmt.finalbody:
                return self._stmts(stmt.finalbody, after)
            return after
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                current.elements.append(("acquire", item))
            end = self._stmts(stmt.body, current)
            for item in reversed(stmt.items):
                end.elements.append(("release", item))
            return end
        if isinstance(stmt, ast.Break):
            if self._loops:
                self._edge(current, self._loops[-1][1])
            return None
        if isinstance(stmt, ast.Continue):
            if self._loops:
                self._edge(current, self._loops[-1][0])
            return None
        if isinstance(stmt, (ast.Return, ast.Raise)):
            current.elements.append(("stmt", stmt))
            self._edge(current, self.exit)
            return None
        # nested defs/classes are opaque: rules analyze them separately
        current.elements.append(("stmt", stmt))
        return current

    # -- queries -----------------------------------------------------------

    def elements(self) -> Iterator[tuple[Block, int, str, ast.AST]]:
        for block in self.blocks:
            for index, (kind, node) in enumerate(block.elements):
                yield block, index, kind, node

    def reaching_blocks(self, target: Block) -> list[Block]:
        """Every block from which ``target`` is reachable (excl. itself)."""
        seen: set[int] = set()
        stack = list(target.preds)
        result: list[Block] = []
        while stack:
            block = stack.pop()
            if block.index in seen:
                continue
            seen.add(block.index)
            result.append(block)
            stack.extend(block.preds)
        return result


def get_cfg(ctx: FileContext, func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build (or reuse) the CFG of ``func``; cached on the file context so
    every dataflow rule shares one graph per function."""
    cache: dict[int, CFG] = ctx.__dict__.setdefault("_dataflow_cfgs", {})
    cfg = cache.get(id(func))
    if cfg is None:
        cfg = CFG(func)
        cache[id(func)] = cfg
    return cfg


def get_copy_env(
    ctx: FileContext, func: ast.FunctionDef | ast.AsyncFunctionDef
) -> dict[str, str]:
    """:func:`copy_env` of ``func``, cached on the file context alongside
    the CFG so the rules that need both don't recompute either."""
    cache: dict[int, dict[str, str]] = ctx.__dict__.setdefault("_dataflow_envs", {})
    env = cache.get(id(func))
    if env is None:
        env = copy_env(func)
        cache[id(func)] = env
    return env


# --------------------------------------------------------------------------
# fixpoint driver
# --------------------------------------------------------------------------


class ForwardAnalysis:
    """Worklist forward dataflow. Subclasses define the lattice via
    ``initial``/``transfer``/``join``; ``run`` returns the state *entering*
    each element keyed by ``(block_index, element_index)``. ``None`` is
    the unreachable state: ``join`` never sees it (the driver short-
    circuits), and unreachable elements are absent from the result."""

    def initial(self) -> Any:
        raise NotImplementedError

    def transfer(self, state: Any, kind: str, node: ast.AST) -> Any:
        raise NotImplementedError

    def join(self, left: Any, right: Any) -> Any:
        raise NotImplementedError

    def run(self, cfg: CFG) -> dict[tuple[int, int], Any]:
        entry_states: dict[int, Any] = {cfg.entry.index: self.initial()}
        element_states: dict[tuple[int, int], Any] = {}
        worklist = [cfg.entry]
        iterations = 0
        limit = 50 * (len(cfg.blocks) + 1)  # fixpoint backstop
        while worklist and iterations < limit:
            iterations += 1
            block = worklist.pop()
            state = entry_states.get(block.index)
            if state is None:
                continue
            for index, (kind, node) in enumerate(block.elements):
                element_states[(block.index, index)] = state
                state = self.transfer(state, kind, node)
            for succ in block.succs:
                old = entry_states.get(succ.index)
                merged = state if old is None else self.join(old, state)
                if merged != old:
                    entry_states[succ.index] = merged
                    worklist.append(succ)
        self.entry_states = entry_states
        return element_states


# --------------------------------------------------------------------------
# concrete analyses
# --------------------------------------------------------------------------

#: calls whose result carries the taint of any argument (iteration
#: adaptors — the PR 6 bug walked ``zip(entry.slots, ...)``)
_PASS_THROUGH_CALLS = {
    "zip", "enumerate", "sorted", "reversed", "iter", "next", "getattr",
    "min", "max", "filter", "map",
}


class TaintAnalysis(ForwardAnalysis):
    """Which local names (currently) hold a value derived from a source?

    ``state`` is a frozenset of variable names. Sources are provided by
    the rule: ``initial_tainted`` seeds parameters, ``is_source`` marks
    expressions (e.g. ``plan_cache.get(...)``). Propagation covers
    attribute/subscript loads, pass-through calls, methods invoked *on*
    a tainted receiver, tuple unpacking, and ``for``-target binding."""

    def __init__(
        self,
        initial_tainted: set[str] = frozenset(),
        env: dict[str, str] | None = None,
    ) -> None:
        self.initial_tainted = frozenset(initial_tainted)
        self.env = env or {}

    def is_source(self, expr: ast.AST) -> bool:
        return False

    # -- lattice -----------------------------------------------------------

    def initial(self) -> frozenset:
        return self.initial_tainted

    def join(self, left: frozenset, right: frozenset) -> frozenset:
        return left | right

    # -- expression taint --------------------------------------------------

    def expr_tainted(self, expr: ast.AST, state: frozenset) -> bool:
        if self.is_source(expr):
            return True
        if isinstance(expr, ast.Name):
            return expr.id in state
        if isinstance(expr, (ast.Attribute, ast.Subscript, ast.Starred)):
            return self.expr_tainted(expr.value, state)
        if isinstance(expr, ast.Call):
            name = call_name(expr.func)
            if name in _PASS_THROUGH_CALLS and any(
                self.expr_tainted(arg, state) for arg in expr.args
            ):
                return True
            # a method on a tainted object returns tainted substructure
            if isinstance(expr.func, ast.Attribute):
                return self.expr_tainted(expr.func.value, state)
            return False
        if isinstance(expr, (ast.Tuple, ast.List)):
            return any(self.expr_tainted(item, state) for item in expr.elts)
        if isinstance(expr, ast.IfExp):
            return self.expr_tainted(expr.body, state) or self.expr_tainted(
                expr.orelse, state
            )
        if isinstance(expr, ast.NamedExpr):
            return self.expr_tainted(expr.value, state)
        return False

    # -- binding -----------------------------------------------------------

    def _bind(self, target: ast.AST, tainted: bool, state: frozenset) -> frozenset:
        if isinstance(target, ast.Name):
            return state | {target.id} if tainted else state - {target.id}
        if isinstance(target, (ast.Tuple, ast.List)):
            for item in target.elts:
                state = self._bind(item, tainted, state)
            return state
        if isinstance(target, ast.Starred):
            return self._bind(target.value, tainted, state)
        return state  # attribute/subscript targets bind no local name

    def transfer(self, state: frozenset, kind: str, node: ast.AST) -> frozenset:
        if kind == "loop" and isinstance(node, (ast.For, ast.AsyncFor)):
            return self._bind(node.target, self.expr_tainted(node.iter, state), state)
        if kind == "acquire" and isinstance(node, ast.withitem):
            if isinstance(node.optional_vars, ast.Name):
                return self._bind(
                    node.optional_vars,
                    self.expr_tainted(node.context_expr, state),
                    state,
                )
            return state
        if kind != "stmt":
            return state
        if isinstance(node, ast.Assign):
            tainted = self.expr_tainted(node.value, state)
            for target in node.targets:
                state = self._bind(target, tainted, state)
            return state
        if isinstance(node, ast.AnnAssign) and node.value is not None:
            return self._bind(
                node.target, self.expr_tainted(node.value, state), state
            )
        if isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Name) and self.expr_tainted(
                node.value, state
            ):
                return state | {node.target.id}
            return state
        if isinstance(node, ast.ExceptHandler):
            if node.name:
                return state - {node.name}
            return state
        return state


#: a ``with`` target counts as a lock when any dotted component
#: mentions one (``self._lock``, ``cache_lock``, ``self._mutex``)
def is_lock_name(chain: str | None) -> bool:
    if not chain:
        return False
    return any(
        "lock" in part.lower() or "mutex" in part.lower()
        for part in chain.split(".")
    )


class LockHeldAnalysis(ForwardAnalysis):
    """May-analysis: the set of lock identities (canonical dotted names)
    held on *some* path at each element."""

    def __init__(self, env: dict[str, str] | None = None) -> None:
        self.env = env or {}

    def initial(self) -> frozenset:
        return frozenset()

    def join(self, left: frozenset, right: frozenset) -> frozenset:
        return left | right

    def _lock_of(self, item: ast.withitem) -> str | None:
        chain = canonical_name(item.context_expr, self.env)
        return chain if is_lock_name(chain) else None

    def transfer(self, state: frozenset, kind: str, node: ast.AST) -> frozenset:
        if kind == "acquire" and isinstance(node, ast.withitem):
            lock = self._lock_of(node)
            if lock:
                return state | {lock}
        elif kind == "release" and isinstance(node, ast.withitem):
            lock = self._lock_of(node)
            if lock:
                return state - {lock}
        return state


class GuardPassedAnalysis(ForwardAnalysis):
    """Must-analysis: has *every* path to an element evaluated a branch
    test mentioning one of ``tokens``? Used by RA115 — both the
    early-return guard (``if exempt: return``) and the enclosing-if
    pattern count, because the *test* is evaluated either way."""

    def __init__(self, tokens: tuple[str, ...], env: dict[str, str] | None = None) -> None:
        self.tokens = tokens
        self.env = env or {}

    def initial(self) -> bool:
        return False

    def join(self, left: bool, right: bool) -> bool:
        return left and right

    def _mentions_token(self, expr: ast.AST) -> bool:
        for node in ast.walk(expr):
            chain = None
            if isinstance(node, ast.Attribute):
                chain = node.attr
            elif isinstance(node, ast.Name):
                chain = self.env.get(node.id, node.id)
            if chain and any(token in chain for token in self.tokens):
                return True
        return False

    def transfer(self, state: bool, kind: str, node: ast.AST) -> bool:
        if state:
            return True
        if kind == "test" and self._mentions_token(node):
            return True
        if kind == "loop" and isinstance(node, (ast.For, ast.AsyncFor)):
            return self._mentions_token(node.iter)
        return state
