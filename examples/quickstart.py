#!/usr/bin/env python3
"""Quickstart: the repro ecosystem in five minutes.

Creates an in-memory HTAP database, runs SQL with transactions, shows the
delta merge, text search, geo predicates, hierarchy functions, and the
single admin surface. Run::

    python examples/quickstart.py
"""

from repro import Database, Session
from repro.engines.graph.hierarchy import HierarchyView, register_hierarchy_functions
from repro.engines.text.index import create_text_index


def main() -> None:
    db = Database()

    # -- relational core -------------------------------------------------
    db.execute(
        "CREATE TABLE orders (id INT PRIMARY KEY, customer VARCHAR, "
        "amount DOUBLE, country VARCHAR, odate DATE)"
    )
    db.execute(
        "INSERT INTO orders VALUES "
        "(1, 'acme', 120.0, 'DE', DATE '2014-01-03'), "
        "(2, 'globex', 80.5, 'US', DATE '2014-02-01'), "
        "(3, 'acme', 200.0, 'DE', DATE '2014-03-10'), "
        "(4, 'initech', 40.0, 'US', DATE '2014-03-12')"
    )

    print("== analytics ==")
    result = db.query(
        "SELECT country, COUNT(*) AS orders, SUM(amount) AS revenue "
        "FROM orders GROUP BY country ORDER BY revenue DESC"
    )
    print(result.format_table())

    # -- transactions (snapshot isolation) ---------------------------------
    print("\n== transactions ==")
    session = Session(db)
    session.execute("BEGIN")
    session.execute("UPDATE orders SET amount = amount * 1.1 WHERE country = 'DE'")
    print("inside txn :", session.query("SELECT SUM(amount) FROM orders").scalar())
    print("outside txn:", db.query("SELECT SUM(amount) FROM orders").scalar())
    session.execute("ROLLBACK")
    print("rolled back:", db.query("SELECT SUM(amount) FROM orders").scalar())

    # -- the delta merge ----------------------------------------------------
    print("\n== delta merge ==")
    print("delta rows before merge:", db.table("orders").delta_rows())
    stats = db.merge("orders")
    print(f"merged {stats.rows_merged} rows; delta now {db.table('orders').delta_rows()}")

    # -- text engine ----------------------------------------------------------
    print("\n== text search ==")
    db.execute("CREATE TABLE notes (id INT, body VARCHAR)")
    db.execute(
        "INSERT INTO notes VALUES (1, 'customer happy with fast delivery'), "
        "(2, 'complaint about late delivery'), (3, 'new pricing question')"
    )
    create_text_index(db, "notes", "body")
    hits = db.query("SELECT id FROM notes WHERE CONTAINS(body, 'delivery') ORDER BY id")
    print("notes mentioning delivery:", [row[0] for row in hits])

    # -- geo engine --------------------------------------------------------------
    print("\n== geospatial ==")
    db.execute("CREATE TABLE stores (id INT, loc GEOMETRY, revenue DOUBLE)")
    db.execute(
        "INSERT INTO stores VALUES (1, 'POINT (13.4 52.5)', 900.0), "
        "(2, 'POINT (8.6 49.3)', 700.0), (3, 'POINT (11.6 48.1)', 650.0)"
    )
    nearby = db.query(
        "SELECT id, revenue FROM stores "
        "WHERE ST_WITHIN_DISTANCE(loc, ST_POINT(13.0, 52.0), 1.0) "
    )
    print("stores near Berlin:", nearby.rows)

    # -- hierarchies -----------------------------------------------------------------
    print("\n== hierarchies ==")
    register_hierarchy_functions(db)
    db.catalog.register_view(
        "org",
        HierarchyView("org", {"board": None, "sales": "board", "dev": "board",
                               "sales-eu": "sales", "sales-us": "sales"}),
    )
    print(
        "teams under sales:",
        db.query("SELECT HIER_DESCENDANT_COUNT('org', 'sales') AS n").scalar(),
    )

    # -- one admin surface --------------------------------------------------------------
    print("\n== monitoring ==")
    stats = db.statistics()
    print(f"tables={len(stats['tables'])} commits={stats['commits']} "
          f"text_indexes={stats['text_indexes']}")


if __name__ == "__main__":
    main()
