#!/usr/bin/env python3
"""Scenario V.2 — predictive maintenance across Hadoop and the ERP.

"A customer institution collects massive sensor data within a large Hadoop
installation ... the ERP system of the customer shows the state of the
current production ... The overall challenge now is to correlate the
sensor data with events in the production process in order to analyze and
predict machine failures or trigger pro-actively maintenance activities."

Flow: sensor archive in HDFS (queried via Hive/SDA federation) is joined
with ERP incident records in one SQL statement; the forecast engine then
projects the degradation trend per machine and schedules maintenance. Run::

    python examples/predictive_maintenance.py
"""

import random

from repro.core.ecosystem import Ecosystem
from repro.engines.ml.forecast import holt
from repro.engines.timeseries.analytics import anomalies
from repro.engines.timeseries.series import TimeSeries

MACHINES = 8
HOURS = 400


def main() -> None:
    eco = Ecosystem()
    hana = eco.hana
    hdfs = eco.attach_hadoop(datanodes=3, block_size_lines=2000)

    # 1. the Hadoop side: vibration readings, machine 3 degrades over time
    rng = random.Random(2)
    lines = []
    for hour in range(HOURS):
        for machine in range(MACHINES):
            vibration = 1.0 + rng.gauss(0, 0.05)
            if machine == 3:
                vibration += hour * 0.004  # creeping bearing failure
            if machine == 5 and hour in (100, 101):
                vibration += 3.0  # a transient shock
            lines.append(f"{machine},{hour},{vibration:.4f}")
    hdfs.write_file("/iot/vibration.csv", lines)
    eco.hive.create_external_table(
        "vibration", "/iot/vibration.csv",
        [("machine", "INT"), ("hour", "INT"), ("vib", "DOUBLE")],
    )

    # 2. the ERP side: production incidents
    hana.execute("CREATE TABLE incidents (machine INT, hour INT, note VARCHAR)")
    hana.execute(
        "INSERT INTO incidents VALUES (3, 380, 'output degradation'), "
        "(5, 102, 'emergency stop')"
    )

    # 3. one federated query: vibration stats around each incident
    eco.federate_hive()
    eco.sda.create_virtual_table("v_vibration", "hadoop", "vibration")
    print("== vibration in the 24h before each ERP incident ==")
    result = hana.query(
        "SELECT i.machine, i.note, AVG(v.vib) AS avg_before, MAX(v.vib) AS peak "
        "FROM v_vibration v JOIN incidents i ON v.machine = i.machine "
        "WHERE v.hour BETWEEN i.hour - 24 AND i.hour - 1 "
        "GROUP BY i.machine, i.note ORDER BY i.machine"
    )
    print(result.format_table())

    # 4. per-machine trend forecast: who needs proactive maintenance?
    print("\n== 100-hour vibration forecast per machine ==")
    threshold = 2.2
    for machine in range(MACHINES):
        values = eco.hive.execute(
            f"SELECT vib FROM vibration WHERE machine = {machine} ORDER BY hour"
        ).column("vib")
        forecast = holt(values, horizon=100)
        peak = max(forecast.predictions)
        flag = "SCHEDULE MAINTENANCE" if peak > threshold else "ok"
        print(f"machine {machine}: forecast peak {peak:5.2f}  {flag}")

    # 5. anomaly scan on the raw series (the transient shock on machine 5)
    rows = eco.hive.execute(
        "SELECT hour, vib FROM vibration WHERE machine = 5 ORDER BY hour"
    ).rows
    series = TimeSeries([r[0] for r in rows], [r[1] for r in rows])
    flagged = anomalies(series, window=24, threshold=5.0)
    print(f"\nanomalous hours on machine 5: {flagged[:5]}")


if __name__ == "__main__":
    main()
