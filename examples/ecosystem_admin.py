#!/usr/bin/env python3
"""The ecosystem thesis as code: one entry point, one semantic model,
one administration surface (paper §V added-values and §VI summary).

Deploys a business object once, lets every engine see the same semantics,
runs a Calc-Engine data flow that "embraces" an external operator, and
finishes with the unified monitoring/health view across HANA, the SOE
cluster, and the Hadoop substrate. Run::

    python examples/ecosystem_admin.py
"""

from repro import Ecosystem
from repro.aging.pruning import AgingManager
from repro.engines.ml.rops import make_r_adapter
from repro.sql.calcengine import CalcScenario
from repro.workloads.generators import ErpConfig, erp_orders


def main() -> None:
    eco = Ecosystem()
    hana = eco.hana

    # 1. one business object, deployed once, visible everywhere
    hana.execute(
        "CREATE TABLE orders (order_id INT PRIMARY KEY, customer_id INT, "
        "status VARCHAR, order_date DATE, amount DOUBLE, currency VARCHAR)"
    )
    txn = hana.begin()
    hana.table("orders").insert_many(erp_orders(ErpConfig(orders=500)), txn)
    hana.commit(txn)
    eco.deploy_business_object(
        "SalesOrder",
        {
            "tables": ["orders"],
            "key": "order_id",
            "aging_rule": "status = 'closed'",
            "semantics": {"amount": "document currency", "status": "lifecycle"},
        },
    )
    print("business objects:", eco.business_objects())
    print("orders annotated as:", hana.catalog.annotation("orders", "business_object"))

    # 2. the aging rule comes straight out of the business object
    aging = AgingManager(hana)
    definition = eco.business_object("SalesOrder")
    aging.define_rule("orders", definition["aging_rule"])
    moved = aging.run("orders")
    print(f"aged {moved['orders']} closed orders into the cold partition")

    # 3. a Calc-Engine scenario with an embraced external operator
    provider = make_r_adapter()
    scenario = CalcScenario("order-analytics", hana)
    scenario.table_source("src", "orders", columns=["status", "amount", "customer_id"])
    scenario.filter("open_only", "src", "status", "=", "open")
    scenario.project("xy", "open_only", ["customer_id", "amount"])
    scenario.external_operator("summary", "xy", provider, "summary")
    embraced = scenario.optimize()
    columns, rows = scenario.execute("summary")
    print(f"\ncalc scenario: embraced {embraced} filter(s) into the source")
    print("rows shipped to the external system:", provider.stats.rows_out)
    for row in rows:
        print("  summary:", dict(zip(columns, row)))

    # 4. attach the rest of the landscape and administer it as one
    soe = eco.attach_soe(node_count=3)
    soe.create_table("order_events", ["order_id", "event"], ["order_id"])
    soe.load("order_events", [[i, "created"] for i in range(200)])
    hdfs = eco.attach_hadoop(datanodes=3)
    hdfs.write_file("/archive/orders_2012.csv", ["1,closed", "2,closed"])

    print("\n== one monitoring surface ==")
    stats = eco.statistics()
    print("hana tables:", [t["table"] for t in stats["hana"]["tables"]])
    print("soe nodes:", stats["soe"]["nodes"], "| log tail:", stats["soe"]["log_tail"])
    print("hdfs:", stats["hdfs"]["files"], "file(s),", stats["hdfs"]["blocks"], "block(s)")
    print("health:", eco.health_check())

    # 5. degrade a component: the same surface shows it
    hdfs.kill_datanode("dn0")
    print("after datanode failure:", eco.health_check())
    copied = hdfs.re_replicate()
    print(f"re-replicated {copied} block(s);",
          "data still readable:", sum(1 for _ in hdfs.read_file("/archive/orders_2012.csv")), "lines")


if __name__ == "__main__":
    main()
