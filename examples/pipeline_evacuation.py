#!/usr/bin/env python3
"""Scenario V.5 — gas-pipeline leak: a real-time evacuation plan.

"A customer is responsible of a gas pipeline which is stored as a huge
graph. In addition to the logical perspective of the pipeline, the
location information for the graph is stored. One out of many use cases
... is the development of an evacuation plan in real time if a leak in
the gas pipeline is detected."

Flow: pipeline topology and junction coordinates live relationally; the
graph engine builds the view; a streamed pressure anomaly pinpoints the
leak; the evacuation planner routes every junction to its nearest exit
avoiding the blocked zone; geo coordinates render the plan. Run::

    python examples/pipeline_evacuation.py
"""

from repro.core.ecosystem import Ecosystem
from repro.engines.graph.algorithms import evacuation_plan, neighborhood
from repro.engines.graph.graph import create_graph_view
from repro.streaming.esp import CollectSink, SlidingWindowThreshold, StreamProcessor
from repro.workloads.generators import pipeline_graph

SEGMENTS = 60


def main() -> None:
    eco = Ecosystem()
    hana = eco.hana

    # 1. the pipeline as relational data: junctions (with geo) + pipes
    junctions, pipes = pipeline_graph(segments=SEGMENTS)
    hana.execute("CREATE TABLE junctions (id INT PRIMARY KEY, x DOUBLE, y DOUBLE)")
    hana.execute("CREATE TABLE pipes (s INT, t INT, length DOUBLE)")
    txn = hana.begin()
    hana.table("junctions").insert_many(junctions, txn)
    hana.table("pipes").insert_many(pipes, txn)
    hana.table("pipes").insert_many([[t, s, w] for s, t, w in pipes], txn)  # walkable both ways
    hana.commit(txn)
    graph = create_graph_view(
        hana, "pipeline", "junctions", "id", "pipes", "s", "t", "length"
    )
    print(f"pipeline graph: {graph.vertex_count} junctions, {graph.edge_count} pipe segments")

    # 2. streamed pressure readings reveal the leak at junction 31
    leak_junction = 31
    readings = []
    for minute in range(30):
        for junction in range(SEGMENTS):
            pressure = 60.0 if not (junction == leak_junction and minute > 10) else 35.0
            readings.append({"junction": junction, "pressure": pressure})
    alerts = CollectSink()
    StreamProcessor(
        [SlidingWindowThreshold("junction", "pressure", size=5, threshold=50.0)],
        [alerts],
    ).push_many(readings)
    detected = alerts.events[0]["junction"] if alerts.events else None
    print(f"pressure alert at junction: {detected}")

    # 3. evacuation plan: exits are the pipeline ends
    exits = [0, SEGMENTS - 1]
    plan = evacuation_plan(graph, leak=detected, exits=exits, blocked_radius=1)
    blocked = {detected} | neighborhood(graph, detected, 1)
    routed = {v: route for v, route in plan.items() if route is not None}
    print(f"blocked zone (leak + 1 hop): {sorted(blocked)}")
    print(f"junctions with evacuation routes: {len(routed)}/{SEGMENTS}")

    # 4. render a few routes with their geo coordinates
    coordinates = {row[0]: (row[1], row[2]) for row in junctions}
    print("\n== sample evacuation routes ==")
    for junction in sorted(routed)[:5]:
        cost, path = routed[junction]
        rendered = " -> ".join(
            f"{node}({coordinates[node][0]:.0f},{coordinates[node][1]:.0f})"
            for node in path
        )
        print(f"from {junction:2d}: {cost:5.1f} km  {rendered}")

    # 5. junctions that cannot reach any exit need onsite assembly points
    stranded = sorted(set(graph.vertices()) - set(routed) - blocked)
    print(f"\nstranded junctions needing assembly points: {stranded}")


if __name__ == "__main__":
    main()
