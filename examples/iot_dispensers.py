#!/usr/bin/env python3
"""Scenario V.3 — soap-dispenser refill routing.

"A producer of soap for washrooms wants to plan the routes for their
service teams to fill the dispensers. Sensors in each dispenser measure
the fill grade and indicate the need for a refill. ... sensor data are
stored in a Hadoop system, location data is stored in GIS information
system. The ERP system holds the company's master data and performs the
resource planning, route planning ..."

Flow: raw sensor events land in HDFS → streaming threshold alerts feed the
ERP → geo + graph engines plan the service route. Run::

    python examples/iot_dispensers.py
"""

from repro.core.ecosystem import Ecosystem
from repro.engines.geo.geometry import Point
from repro.engines.geo.index import GridIndex
from repro.engines.graph.algorithms import shortest_path
from repro.engines.graph.graph import create_graph_view
from repro.streaming.esp import SlidingWindowThreshold, StreamProcessor, TableSink
from repro.workloads.generators import dispenser_events

DISPENSERS = 24


def main() -> None:
    eco = Ecosystem()
    hana = eco.hana
    hdfs = eco.attach_hadoop(datanodes=3, block_size_lines=1000)

    # master data in the ERP: dispenser locations on a city grid
    hana.execute("CREATE TABLE dispensers (dispenser_id INT PRIMARY KEY, loc GEOMETRY)")
    locations = {}
    for dispenser in range(DISPENSERS):
        x, y = float(dispenser % 6), float(dispenser // 6)
        locations[dispenser] = Point(x, y)
        hana.execute(f"INSERT INTO dispensers VALUES ({dispenser}, 'POINT ({x} {y})')")

    # 1. sensor archive lands in Hadoop
    events = list(dispenser_events(dispensers=DISPENSERS, steps=200))
    hdfs.write_file(
        "/iot/fill_grades.csv",
        (f"{e['dispenser_id']},{e['ts']},{e['fill_grade']}" for e in events),
    )
    print(f"archived {len(events)} sensor events in HDFS "
          f"({hdfs.statistics()['blocks']} blocks)")

    # 2. live stream triggers refill alerts straight into the ERP
    hana.execute(
        "CREATE TABLE refill_alerts (dispenser_id INT, mean DOUBLE, "
        "threshold DOUBLE, alert VARCHAR)"
    )
    processor = StreamProcessor(
        [SlidingWindowThreshold("dispenser_id", "fill_grade", size=6, threshold=25.0)],
        [TableSink(hana, "refill_alerts", batch_size=20)],
    )
    processor.push_many(events)
    processor.finish()
    to_refill = [row[0] for row in hana.query(
        "SELECT DISTINCT dispenser_id FROM refill_alerts ORDER BY dispenser_id"
    )]
    print(f"dispensers needing a refill: {to_refill}")

    # 3. geo: which alerts are near the depot district?
    grid = GridIndex(cell_size=1.0)
    for dispenser, point in locations.items():
        grid.insert(dispenser, point)
    depot = Point(0.0, 0.0)
    nearby = {key for key, _point in grid.within_radius(depot, 4.0)} & set(to_refill)
    print(f"alerts within 4 km of the depot: {sorted(nearby)}")

    # 4. route planning: greedy nearest-neighbour tour on the street graph
    hana.execute("CREATE TABLE junctions (id INT)")
    hana.execute("CREATE TABLE streets (s INT, t INT, km DOUBLE)")
    txn = hana.begin()
    for dispenser in range(DISPENSERS):
        hana.table("junctions").insert([dispenser], txn)
    for a in range(DISPENSERS):
        for b in range(DISPENSERS):
            if a != b:
                distance = (
                    (locations[a].x - locations[b].x) ** 2
                    + (locations[a].y - locations[b].y) ** 2
                ) ** 0.5
                if distance <= 1.5:  # streets connect close junctions only
                    hana.table("streets").insert([a, b, distance], txn)
    hana.commit(txn)
    graph = create_graph_view(hana, "streets_g", "junctions", "id", "streets", "s", "t", "km")

    tour = [0]
    remaining = set(nearby) - {0}
    total_km = 0.0
    while remaining:
        best = None
        for candidate in remaining:
            routed = shortest_path(graph, tour[-1], candidate)
            if routed and (best is None or routed[0] < best[0]):
                best = (routed[0], candidate, routed[1])
        if best is None:
            break
        total_km += best[0]
        tour.append(best[1])
        remaining.discard(best[1])
    print(f"service tour: {' -> '.join(map(str, tour))}  ({total_km:.1f} km)")

    # 5. proactive refill before a big event near dispenser 11 (paper: "fill
    # them earlier, if they have notice that a major event will be held")
    event_site = locations[11]
    proactive = sorted(
        key for key, _p in grid.within_radius(event_site, 1.5) if key not in to_refill
    )
    print(f"proactive refills around the event at dispenser 11: {proactive}")


if __name__ == "__main__":
    main()
