#!/usr/bin/env python3
"""Scenario V.4 — hurricane risk pricing for an insurer.

"An insurance company wants to calculate their insurance rates based on
probabilities of hurricanes and the route of hurricanes. They have stored
the huge amount of data about the past hurricanes on a Hadoop like
storage. Their current customers and their current rates are stored in
their ERP system and the locations of the customers are kept in a
geospatial storage. ... Computed models have to go back to the ERP for
consumption."

Flow: track archive in HDFS → MapReduce builds a grid exposure model →
geo store locates customers → risk-adjusted premiums land back in the ERP.
Run::

    python examples/hurricane_risk.py
"""

from repro.core.ecosystem import Ecosystem
from repro.engines.geo.geometry import Point
from repro.engines.geo.index import GridIndex
from repro.hadoop.mapreduce import MapReduceJob
from repro.workloads.generators import hurricane_tracks


def main() -> None:
    eco = Ecosystem()
    hana = eco.hana
    hdfs = eco.attach_hadoop(datanodes=4, block_size_lines=300)

    # 1. the track archive in HDFS
    tracks = hurricane_tracks(storms=60)
    hdfs.write_file(
        "/weather/tracks.csv", (",".join(map(str, row)) for row in tracks)
    )
    print(f"{len(tracks)} track points in HDFS")

    # 2. MapReduce: hurricane exposure per 5-degree grid cell
    def mapper(line):
        _storm, _step, lon, lat, wind = line.split(",")
        cell = (int(float(lon) // 5) * 5, int(float(lat) // 5) * 5)
        yield cell, float(wind)

    def reducer(cell, winds):
        yield cell, (len(winds), sum(winds) / len(winds))

    job = MapReduceJob("exposure-grid", mapper, reducer, reduce_tasks=3)
    exposure = job.run(hdfs, "/weather/tracks.csv", resource_manager=eco.yarn)
    print(f"exposure model: {len(exposure)} grid cells "
          f"({job.stats.map_tasks} map tasks, "
          f"{job.stats.local_map_tasks} data-local)")

    # 3. customers in the ERP, locations in the geo store
    hana.execute(
        "CREATE TABLE customers (cid INT PRIMARY KEY, name VARCHAR, premium DOUBLE)"
    )
    geo = GridIndex(cell_size=5.0)
    customers = [
        (1, "Miami Marina", -80.0, 26.0, 1000.0),
        (2, "Havana Resort", -82.0, 23.0, 1000.0),
        (3, "Bavarian Brewery", 11.5, 48.1, 1000.0),
        (4, "Bermuda Shipping", -64.8, 32.3, 1000.0),
    ]
    for cid, name, lon, lat, premium in customers:
        hana.execute(f"INSERT INTO customers VALUES ({cid}, '{name}', {premium})")
        geo.insert(cid, Point(lon, lat))

    # 4. combine: risk score = exposure of the customer's grid cell
    print("\n== risk model ==")
    hana.execute("CREATE TABLE risk_model (cid INT, hits INT, avg_wind DOUBLE)")
    for cid, _name, lon, lat, _premium in customers:
        cell = (int(lon // 5) * 5, int(lat // 5) * 5)
        hits, avg_wind = exposure.get(cell, (0, 0.0))
        hana.execute(f"INSERT INTO risk_model VALUES ({cid}, {hits}, {avg_wind})")
        print(f"customer {cid}: cell {cell}  historic hits={hits}  avg wind={avg_wind:.0f}")

    # 5. the model goes back into ERP pricing
    print("\n== adjusted premiums (back in the ERP) ==")
    result = hana.query(
        "SELECT c.name, c.premium, "
        "ROUND(c.premium * (1 + r.hits / 50.0 + r.avg_wind / 500.0), 2) AS adjusted "
        "FROM customers c JOIN risk_model r ON c.cid = r.cid ORDER BY adjusted DESC"
    )
    print(result.format_table())


if __name__ == "__main__":
    main()
