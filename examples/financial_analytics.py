#!/usr/bin/env python3
"""Scenario V.1 — stock analytics with in-database linear algebra.

"Financial analysts storing stock price data within a RDBMS require on the
one hand the business context of stock values ... on the other hand, the
analysts use statistical algorithms for example to identify correlations
of stocks and derivatives."

The ecosystem keeps the ticks relational, runs the correlation through the
external-operator ('R') protocol without manual file exports, flags the
correlated pair, and joins the result back with news sentiment from the
text engine. Run::

    python examples/financial_analytics.py
"""

import numpy as np

from repro.core.ecosystem import Ecosystem
from repro.engines.ml.rops import make_r_adapter
from repro.engines.text.analysis import sentiment_label
from repro.workloads.generators import stock_ticks


def main() -> None:
    eco = Ecosystem()
    hana = eco.hana

    # 1. load tick data relationally
    hana.execute("CREATE TABLE ticks (symbol VARCHAR, ts BIGINT, price DOUBLE)")
    ticks = stock_ticks(symbols=6, days=250)
    txn = hana.begin()
    for symbol, series in ticks.items():
        for ts, price in series:
            hana.table("ticks").insert([symbol, ts, price], txn)
    hana.commit(txn)
    hana.merge("ticks")
    print(f"loaded {hana.query('SELECT COUNT(*) FROM ticks').scalar()} ticks")

    # 2. business context stays queryable at any time
    summary = hana.query(
        "SELECT symbol, MIN(price) AS low, MAX(price) AS high, AVG(price) AS avg "
        "FROM ticks GROUP BY symbol ORDER BY symbol"
    )
    print("\n== price summary ==")
    print(summary.format_table())

    # 3. correlation analysis through the external-operator protocol
    symbols = sorted(ticks)
    returns = {}
    for symbol in symbols:
        prices = np.asarray(
            hana.query(
                f"SELECT price FROM ticks WHERE symbol = '{symbol}' ORDER BY ts"
            ).column("price")
        )
        returns[symbol] = np.diff(prices) / prices[:-1]
    provider = make_r_adapter()
    header, rows = provider.operator("cor")(
        symbols, [list(values) for values in zip(*(returns[s] for s in symbols))]
    )
    print("\n== correlation matrix (via external R operator) ==")
    print("        " + "  ".join(f"{s:>7}" for s in header[1:]))
    best_pair, best_value = None, -1.0
    for row in rows:
        print(f"{row[0]:>7} " + "  ".join(f"{v:7.3f}" for v in row[1:]))
        for symbol, value in zip(header[1:], row[1:]):
            if symbol != row[0] and value > best_value:
                best_pair, best_value = (row[0], symbol), value
    print(f"\nmost correlated pair: {best_pair} (r={best_value:.3f})")
    print(f"rows shipped to external system: {provider.stats.rows_out}")

    # 4. combine with news sentiment (text engine)
    hana.execute("CREATE TABLE news (symbol VARCHAR, headline VARCHAR)")
    headlines = [
        ("SYM0", "strong growth and excellent results beat expectations"),
        ("SYM1", "profit warning after terrible quarter and weak outlook"),
        ("SYM2", "stable performance, reliable dividends"),
    ]
    for symbol, text in headlines:
        hana.execute(f"INSERT INTO news VALUES ('{symbol}', '{text}')")
    print("\n== news sentiment joined with the correlated pair ==")
    for symbol in best_pair:
        rows = hana.query(f"SELECT headline FROM news WHERE symbol = '{symbol}'").rows
        for (headline,) in rows:
            print(f"{symbol}: {sentiment_label(headline):9} | {headline}")


if __name__ == "__main__":
    main()
