"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest

from repro import obs
from repro.analysis import lockcheck, plancheck, racecheck
from repro.core.database import Database


@pytest.fixture(autouse=True)
def _reset_obs():
    """Keep observability state from leaking between tests.

    Collectors are process-global by design (the paper's v2stats reads a
    shared registry), so every test starts and ends disabled and empty.
    """
    obs.reset()
    yield
    obs.reset()


@pytest.fixture(autouse=True)
def _lockcheck_sanitizer():
    """Run each test under the lock-order sanitizer when requested.

    ``REPRO_LOCKCHECK=1 pytest`` (the CI sanitizer job) wraps every test
    in :func:`repro.analysis.lockcheck.active`: locks created by the
    test are tracked and an acquisition-order cycle fails the test at
    the offending ``acquire``. Without the variable this fixture is a
    no-op, so the default suite pays nothing.
    """
    if lockcheck.enabled_from_env() and not lockcheck.is_installed():
        with lockcheck.active():
            yield
    else:
        yield


@pytest.fixture(autouse=True)
def _racecheck_sanitizer(_lockcheck_sanitizer):
    """Run each test under the happens-before race sanitizer when requested.

    ``REPRO_RACECHECK=1 pytest`` (the CI racecheck job) wraps every test
    in :func:`repro.analysis.racecheck.active`: locks, threads, and
    queues created by the test contribute happens-before edges, tracked
    service state records access epochs, and a racing pair fails the
    test with a :class:`~repro.analysis.racecheck.DataRaceError` naming
    both sites. Depending on ``_lockcheck_sanitizer`` orders the two —
    lockcheck installs first so racecheck's lock factory wraps its
    instrumented locks and one run checks both properties.
    """
    if racecheck.enabled_from_env() and not racecheck.is_installed():
        with racecheck.active():
            yield
    else:
        yield


@pytest.fixture(autouse=True)
def _plancheck_sanitizer():
    """Run each test under the plan-IR verifier when requested.

    ``REPRO_PLANCHECK=1 pytest`` (the CI plancheck job) installs
    :mod:`repro.analysis.plancheck` for every test: each freshly planned
    query, plan-cache insert, and cache-hit binding is verified and a
    violation fails the test with a
    :class:`~repro.analysis.plancheck.PlanCheckError` naming the node
    and invariant. Without the variable this fixture is a no-op (the
    insert-time soft check still runs — it only refuses to cache).
    """
    if plancheck.enabled_from_env() and not plancheck.is_installed():
        with plancheck.active():
            yield
    else:
        yield


def pytest_sessionfinish(session, exitstatus):
    """Dump the accumulated racecheck report when CI asks for an artifact."""
    report_path = os.environ.get("REPRO_RACECHECK_REPORT")
    if report_path and racecheck.enabled_from_env():
        racecheck.write_report(report_path)


from repro.workloads.generators import (
    ErpConfig,
    erp_customers,
    erp_invoices,
    erp_orders,
)


@pytest.fixture
def db() -> Database:
    """A fresh in-memory database."""
    return Database()


@pytest.fixture
def erp_db() -> Database:
    """A database preloaded with the synthetic ERP workload."""
    database = Database()
    database.execute(
        "CREATE TABLE customers (customer_id INT PRIMARY KEY, name VARCHAR, "
        "country VARCHAR, city VARCHAR)"
    )
    database.execute(
        "CREATE TABLE orders (order_id INT PRIMARY KEY, customer_id INT, "
        "status VARCHAR, order_date DATE, amount DOUBLE, currency VARCHAR)"
    )
    database.execute(
        "CREATE TABLE invoices (invoice_id INT PRIMARY KEY, order_id INT, "
        "paid VARCHAR, invoice_date DATE, amount DOUBLE)"
    )
    config = ErpConfig(customers=40, orders=300)
    orders = erp_orders(config)
    txn = database.begin()
    database.table("customers").insert_many(erp_customers(config), txn)
    database.table("orders").insert_many(orders, txn)
    database.table("invoices").insert_many(erp_invoices(config, orders), txn)
    database.commit(txn)
    return database


@pytest.fixture
def small_soe():
    """A 3-worker SOE landscape with a loaded sensor table."""
    from repro.soe.engine import SoeEngine

    soe = SoeEngine(node_count=3, node_modes="olap")
    soe.create_table("readings", ["sensor_id", "region", "value"], ["sensor_id"], partition_count=6)
    rows = [[i, f"r{i % 3}", float(i % 100)] for i in range(600)]
    soe.load("readings", rows)
    return soe


@pytest.fixture
def hdfs():
    from repro.hadoop.hdfs import HdfsCluster

    return HdfsCluster(datanode_ids=3, block_size_lines=25, replication=2)
