"""Tests for Smart Data Access federation."""

import pytest

from repro.core.database import Database
from repro.errors import FederationError
from repro.federation.adapters import CsvAdapter, HanaAdapter, HiveAdapter, SoeAdapter
from repro.federation.sda import SmartDataAccess


@pytest.fixture
def remote():
    remote_db = Database(name="remote")
    remote_db.execute("CREATE TABLE inventory (sku VARCHAR, qty INT, plant VARCHAR)")
    remote_db.execute(
        "INSERT INTO inventory VALUES ('a', 5, 'p1'), ('b', 9, 'p1'), ('c', 2, 'p2')"
    )
    return remote_db


@pytest.fixture
def sda(remote):
    local = Database(name="local")
    access = SmartDataAccess(local)
    access.register_source(HanaAdapter("erp", remote))
    return access, local


def test_virtual_table_transparent_sql(sda):
    access, local = sda
    access.create_virtual_table("v_inventory", "erp", "inventory")
    result = local.query("SELECT COUNT(*) FROM v_inventory").scalar()
    assert result == 3


def test_virtual_table_join_with_local_table(sda):
    access, local = sda
    access.create_virtual_table("v_inventory", "erp", "inventory")
    local.execute("CREATE TABLE plants (plant VARCHAR, city VARCHAR)")
    local.execute("INSERT INTO plants VALUES ('p1', 'Berlin'), ('p2', 'Walldorf')")
    rows = local.query(
        "SELECT p.city, SUM(v.qty) AS q FROM v_inventory v "
        "JOIN plants p ON v.plant = p.plant GROUP BY p.city ORDER BY p.city"
    ).rows
    assert rows == [["Berlin", 14], ["Walldorf", 2]]


def test_filter_pushdown_ships_fewer_rows(sda):
    access, local = sda
    access.create_virtual_table("v_inventory", "erp", "inventory")
    local.query("SELECT sku FROM v_inventory WHERE plant = 'p2'")
    assert access.ledger.rows == 1  # only the qualifying row travelled


def test_aggregate_pushdown(sda):
    access, _local = sda
    rows = access.pushdown_aggregate(
        "erp", "inventory", ["plant"], [("count", None), ("sum", "qty")]
    )
    assert sorted(rows) == [["p1", 2, 14], ["p2", 1, 2]]
    assert access.ledger.rows == 2


def test_sql_pushdown(sda):
    access, _local = sda
    rows = access.pushdown_sql("erp", "SELECT MAX(qty) FROM inventory")
    assert rows == [[9]]


def test_source_registry_validation(sda, remote):
    access, _local = sda
    with pytest.raises(FederationError):
        access.register_source(HanaAdapter("erp", remote))
    with pytest.raises(FederationError):
        access.source("ghost")
    assert access.sources() == ["erp"]


def test_csv_adapter_scan_only(tmp_path):
    (tmp_path / "items.csv").write_text("1,widget\n2,gadget\n")
    local = Database()
    access = SmartDataAccess(local)
    access.register_source(
        CsvAdapter("files", tmp_path, {"items": [("id", "INT"), ("name", "VARCHAR")]})
    )
    access.create_virtual_table("v_items", "files", "items")
    assert local.query("SELECT name FROM v_items WHERE id = 2").rows == [["gadget"]]
    with pytest.raises(FederationError):
        access.pushdown_aggregate("files", "items", [], [("count", None)])


def test_hive_adapter(hdfs):
    from repro.hadoop.hive import HiveServer

    hdfs.write_file("/w/t.csv", ["1,x", "2,y"])
    hive = HiveServer(hdfs)
    hive.create_external_table("t", "/w/t.csv", [("id", "INT"), ("v", "VARCHAR")])
    local = Database()
    access = SmartDataAccess(local)
    access.register_source(HiveAdapter("hadoop", hive))
    access.create_virtual_table("v_t", "hadoop", "t")
    assert local.query("SELECT COUNT(*) FROM v_t").scalar() == 2
    assert access.pushdown_aggregate("hadoop", "t", [], [("count", None)]) == [[2]]


def test_soe_adapter(small_soe):
    local = Database()
    access = SmartDataAccess(local)
    access.register_source(SoeAdapter("soe", small_soe))
    rows = access.pushdown_aggregate(
        "soe", "readings", ["region"], [("count", None)]
    )
    assert sorted(rows) == [["r0", 200], ["r1", 200], ["r2", 200]]
    filtered = access.source("soe").scan("readings", [("sensor_id", "<", 2)])
    assert len(filtered) == 2


def test_hana_adapter_pushes_down_date_filters(remote):
    import datetime as dt

    remote.execute("CREATE TABLE events (id INT, d DATE)")
    remote.execute(
        "INSERT INTO events VALUES (1, DATE '2014-01-01'), (2, DATE '2015-06-01')"
    )
    adapter = HanaAdapter("erp2", remote)
    rows = adapter.scan("events", [("d", ">=", dt.date(2015, 1, 1))])
    assert rows == [[2, dt.date(2015, 6, 1)]]
