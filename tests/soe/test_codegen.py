"""Tests for the SOE task-kernel code generation."""

from repro.soe.codegen import (
    compile_aggregate_kernel,
    estimate_states_bytes,
    finalize_groups,
    merge_group_states,
    run_partial_aggregate,
)
from repro.soe.partitions import PrepackagedPartition
from repro.soe.tasks import AggregateSpec, Filter


def make_partition(rows):
    partition = PrepackagedPartition("t", 0, ["g", "v"])
    partition.append_rows(rows)
    return partition


def test_partial_aggregate_groups_and_filters():
    partition = make_partition([["a", 1.0], ["a", 2.0], ["b", 10.0], ["b", None]])
    groups = run_partial_aggregate(
        [partition],
        filters=[Filter("v", ">", 0.5)],
        group_by=["g"],
        aggregates=[AggregateSpec("count"), AggregateSpec("sum", "v")],
    )
    assert groups[("a",)] == [2, 3.0]
    assert groups[("b",)] == [1, 10.0]


def test_null_filter_column_drops_row():
    partition = make_partition([["a", None]])
    groups = run_partial_aggregate(
        [partition], [Filter("v", ">", 0)], ["g"], [AggregateSpec("count")]
    )
    assert groups == {}


def test_kernel_cache_reuses_compiled_function():
    signature_args = (
        ("g", "v"),
        (Filter("v", ">", 1),),
        ("g",),
        (AggregateSpec("sum", "v"),),
    )
    first = compile_aggregate_kernel(*signature_args)
    second = compile_aggregate_kernel(*signature_args)
    assert first is second
    assert "def _kernel" in first.generated_source


def test_merge_group_states_all_ops():
    aggregates = [
        AggregateSpec("count"),
        AggregateSpec("sum", "v"),
        AggregateSpec("min", "v"),
        AggregateSpec("max", "v"),
        AggregateSpec("avg", "v"),
    ]
    left = {("a",): [2, 5.0, 1.0, 4.0, [5.0, 2]]}
    right = {("a",): [1, 7.0, 0.5, 9.0, [7.0, 1]], ("b",): [1, 1.0, 1.0, 1.0, [1.0, 1]]}
    merged = merge_group_states([left, right], aggregates)
    assert merged[("a",)] == [3, 12.0, 0.5, 9.0, [12.0, 3]]
    assert merged[("b",)][0] == 1


def test_finalize_rows_sorted_and_avg_computed():
    aggregates = [AggregateSpec("avg", "v")]
    rows = finalize_groups({("b",): [[6.0, 2]], ("a",): [[3.0, 3]]}, aggregates)
    assert rows == [["a", 1.0], ["b", 3.0]]


def test_estimate_states_bytes_counts_strings():
    size = estimate_states_bytes({("region-name",): [1, 2.0]})
    assert size > 32
