"""Tests for cluster management: moves, rebalance, stats, discovery."""

import pytest

from repro.errors import ClusterError
from repro.soe.engine import SoeEngine


@pytest.fixture
def soe():
    engine = SoeEngine(node_count=3)
    engine.create_table("t", ["k", "v"], ["k"], partition_count=6)
    engine.load("t", [[i, float(i)] for i in range(600)])
    return engine


def test_move_partition_transfers_data_and_metadata(soe):
    placement = soe.catalog.placement_of("t")
    partition_id, nodes = next(iter(placement.items()))
    source = nodes[0]
    target = next(w for w in soe.worker_ids if w != source)
    seconds = soe.manager.move_partition("t", partition_id, source, target)
    assert seconds > 0
    assert target in soe.catalog.nodes_of("t", partition_id)
    assert source not in soe.catalog.nodes_of("t", partition_id)
    rows, _ = soe.aggregate("t", aggregates=[("count", None)])
    assert rows[0][0] == 600


def test_move_unhosted_partition_rejected(soe):
    with pytest.raises(ClusterError):
        soe.manager.move_partition("t", 0, "worker9", "worker1")


def test_rebalance_levels_partition_counts(soe):
    # skew: move everything to worker0 first
    placement = soe.catalog.placement_of("t")
    for partition_id, nodes in placement.items():
        if nodes[0] != "worker0":
            soe.manager.move_partition("t", partition_id, nodes[0], "worker0")
    moves = soe.manager.rebalance("t")
    assert moves
    counts = {
        worker: len(soe.catalog.partitions_on("t", worker))
        for worker in soe.worker_ids
    }
    assert max(counts.values()) - min(counts.values()) <= 1
    rows, _ = soe.aggregate("t", aggregates=[("count", None)])
    assert rows[0][0] == 600


def test_hotspot_detection(soe):
    # drive all scans to the nodes hosting data; coordinator stats track rows
    soe.aggregate("t", aggregates=[("count", None)])
    load = soe.stats.node_load()
    assert sum(load.values()) == 600
    assert soe.stats.hotspots(factor=100.0) == []


def test_discovery_and_auth(soe):
    assert set(soe.discovery.locate("v2lqp")) == set(soe.worker_ids)
    assert soe.discovery.locate_one("v2dqp") == "coordinator"
    soe.auth.create_user("analyst", "secret")
    soe.auth.grant("analyst", "query")
    assert soe.auth.authenticate("analyst", "secret")
    assert soe.auth.check("analyst", "query")
    assert not soe.auth.check("analyst", "admin")
    with pytest.raises(ClusterError):
        soe.auth.require("analyst", "admin")
    soe.auth.grant("analyst", "*")
    assert soe.auth.check("analyst", "admin")


def test_stop_service_withdraws_announcement(soe):
    soe.manager.stop_service("worker0", "v2lqp")
    assert "worker0" not in soe.discovery.locate("v2lqp")
    with pytest.raises(ClusterError):
        soe.manager.stop_service("worker0", "v2lqp")


def test_move_partition_rejects_same_node(soe):
    with pytest.raises(ClusterError):
        soe.manager.move_partition("t", 0, "worker0", "worker0")


def test_move_partition_does_not_alias_ownership_metadata(soe):
    # regression: the old path shared the donor's key-position list and
    # partition count tuple tail with the recipient via setdefault(...)
    placement = soe.catalog.placement_of("t")
    partition_id, nodes = next(iter(placement.items()))
    source, target = nodes[0], next(w for w in soe.worker_ids if w != nodes[0])
    soe.manager.move_partition("t", partition_id, source, target)
    donor_meta = soe.data_nodes[source]._ownership["t"]
    target_meta = soe.data_nodes[target]._ownership["t"]
    assert donor_meta[1] is not target_meta[1]
    assert donor_meta[1] == target_meta[1]


def test_move_partition_survives_dropped_transfer_without_losing_data(soe):
    # regression for remove-before-install: a transfer failure must leave
    # the donor untouched and authoritative, not swallow the partition
    from repro.chaos import ChaosController, FaultPlan, FaultSpec
    from repro.errors import TransferDroppedError

    placement = soe.catalog.placement_of("t")
    partition_id, nodes = next(iter(placement.items()))
    source, target = nodes[0], next(w for w in soe.worker_ids if w != nodes[0])
    chaos = ChaosController(FaultPlan([FaultSpec("drop", "transfer", 0)]))
    chaos.install(cluster=soe.cluster)
    with pytest.raises(TransferDroppedError):
        soe.manager.move_partition("t", partition_id, source, target)
    assert soe.catalog.nodes_of("t", partition_id) == [source]
    assert partition_id in soe.data_nodes[source].owned_partitions("t")
    assert soe.data_nodes[source].store.has_partition("t", partition_id)
    assert partition_id not in soe.data_nodes[target].owned_partitions("t")
    rows, _ = soe.aggregate("t", aggregates=[("count", None)])
    assert rows[0][0] == 600


def _skew_to_worker0(soe):
    for partition_id, nodes in soe.catalog.placement_of("t").items():
        if nodes[0] != "worker0":
            soe.manager.move_partition("t", partition_id, nodes[0], "worker0")


def test_rebalance_is_deterministic():
    def run():
        engine = SoeEngine(node_count=3)
        engine.create_table("t", ["k", "v"], ["k"], partition_count=6)
        engine.load("t", [[i, float(i)] for i in range(600)])
        _skew_to_worker0(engine)
        return engine.manager.rebalance("t"), engine.catalog.placement_of("t")

    assert run() == run()


def test_rebalance_skips_dead_targets(soe):
    _skew_to_worker0(soe)
    soe.cluster.kill("worker2")
    moves = soe.manager.rebalance("t")
    assert moves
    assert all(target != "worker2" for _, _, target in moves)
    live_counts = {
        worker: len(soe.catalog.partitions_on("t", worker))
        for worker in ("worker0", "worker1")
    }
    assert max(live_counts.values()) - min(live_counts.values()) <= 1


def test_rebalance_survives_a_failed_move(soe):
    # one dropped transfer mid-rebalance: the failed lane is skipped, the
    # bookkeeping stays truthful, and leveling still completes
    from repro.chaos import ChaosController, FaultPlan, FaultSpec

    _skew_to_worker0(soe)
    chaos = ChaosController(FaultPlan([FaultSpec("drop", "transfer", 0)]))
    chaos.install(cluster=soe.cluster)
    moves = soe.manager.rebalance("t")
    assert moves
    counts = {
        worker: len(soe.catalog.partitions_on("t", worker))
        for worker in soe.worker_ids
    }
    assert max(counts.values()) - min(counts.values()) <= 1
    rows, _ = soe.aggregate("t", aggregates=[("count", None)])
    assert rows[0][0] == 600
