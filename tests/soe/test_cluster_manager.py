"""Tests for cluster management: moves, rebalance, stats, discovery."""

import pytest

from repro.errors import ClusterError
from repro.soe.engine import SoeEngine


@pytest.fixture
def soe():
    engine = SoeEngine(node_count=3)
    engine.create_table("t", ["k", "v"], ["k"], partition_count=6)
    engine.load("t", [[i, float(i)] for i in range(600)])
    return engine


def test_move_partition_transfers_data_and_metadata(soe):
    placement = soe.catalog.placement_of("t")
    partition_id, nodes = next(iter(placement.items()))
    source = nodes[0]
    target = next(w for w in soe.worker_ids if w != source)
    seconds = soe.manager.move_partition("t", partition_id, source, target)
    assert seconds > 0
    assert target in soe.catalog.nodes_of("t", partition_id)
    assert source not in soe.catalog.nodes_of("t", partition_id)
    rows, _ = soe.aggregate("t", aggregates=[("count", None)])
    assert rows[0][0] == 600


def test_move_unhosted_partition_rejected(soe):
    with pytest.raises(ClusterError):
        soe.manager.move_partition("t", 0, "worker9", "worker1")


def test_rebalance_levels_partition_counts(soe):
    # skew: move everything to worker0 first
    placement = soe.catalog.placement_of("t")
    for partition_id, nodes in placement.items():
        if nodes[0] != "worker0":
            soe.manager.move_partition("t", partition_id, nodes[0], "worker0")
    moves = soe.manager.rebalance("t")
    assert moves
    counts = {
        worker: len(soe.catalog.partitions_on("t", worker))
        for worker in soe.worker_ids
    }
    assert max(counts.values()) - min(counts.values()) <= 1
    rows, _ = soe.aggregate("t", aggregates=[("count", None)])
    assert rows[0][0] == 600


def test_hotspot_detection(soe):
    # drive all scans to the nodes hosting data; coordinator stats track rows
    soe.aggregate("t", aggregates=[("count", None)])
    load = soe.stats.node_load()
    assert sum(load.values()) == 600
    assert soe.stats.hotspots(factor=100.0) == []


def test_discovery_and_auth(soe):
    assert set(soe.discovery.locate("v2lqp")) == set(soe.worker_ids)
    assert soe.discovery.locate_one("v2dqp") == "coordinator"
    soe.auth.create_user("analyst", "secret")
    soe.auth.grant("analyst", "query")
    assert soe.auth.authenticate("analyst", "secret")
    assert soe.auth.check("analyst", "query")
    assert not soe.auth.check("analyst", "admin")
    with pytest.raises(ClusterError):
        soe.auth.require("analyst", "admin")
    soe.auth.grant("analyst", "*")
    assert soe.auth.check("analyst", "admin")


def test_stop_service_withdraws_announcement(soe):
    soe.manager.stop_service("worker0", "v2lqp")
    assert "worker0" not in soe.discovery.locate("v2lqp")
    with pytest.raises(ClusterError):
        soe.manager.stop_service("worker0", "v2lqp")
