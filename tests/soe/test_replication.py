"""Tests for the broker and OLTP/OLAP data-node log application."""

import pytest

from repro.errors import SoeError
from repro.soe.partitions import PrepackagedPartition
from repro.soe.replication import DataNode, make_delete, make_insert
from repro.soe.services.shared_log import SharedLog
from repro.soe.services.transaction_broker import TransactionBroker


def setup_node(mode):
    broker = TransactionBroker(SharedLog(stripes=1, replication=1))
    node = DataNode("n1", broker, mode=mode)
    partitions = [PrepackagedPartition("t", pid, ["k", "v"]) for pid in range(2)]
    node.own("t", partitions, key_positions=[0], partition_count=2)
    return broker, node


def test_oltp_node_applies_synchronously():
    broker, node = setup_node("oltp")
    broker.submit([make_insert("t", [[1, "a"], [2, "b"]])])
    assert node.store.total_rows() == 2
    assert node.staleness() == 0


def test_olap_node_applies_on_catch_up():
    broker, node = setup_node("olap")
    broker.submit([make_insert("t", [[1, "a"]])])
    broker.submit([make_insert("t", [[2, "b"]])])
    assert node.store.total_rows() == 0
    assert node.staleness() == 2
    applied = node.catch_up()
    assert applied == 2
    assert node.store.total_rows() == 2
    assert node.staleness() == 0


def test_olap_partial_catch_up_to_lsn():
    broker, node = setup_node("olap")
    broker.submit([make_insert("t", [[1, "a"]])])
    broker.submit([make_insert("t", [[2, "b"]])])
    node.catch_up(to_lsn=1)
    assert node.store.total_rows() == 1
    assert node.staleness() == 1


def test_delete_operation_applies():
    broker, node = setup_node("oltp")
    broker.submit([make_insert("t", [[1, "a"], [2, "b"]])])
    broker.submit([make_delete("t", "k", 1)])
    assert node.store.total_rows() == 1


def test_node_ignores_unowned_tables_and_partitions():
    broker = TransactionBroker(SharedLog())
    node = DataNode("n1", broker, mode="oltp")
    node.own("t", [PrepackagedPartition("t", 0, ["k"])], [0], 4)
    # rows routing to partitions 1..3 are not owned here
    broker.submit([make_insert("t", [[i] for i in range(40)])])
    assert 0 < node.store.total_rows() < 40
    broker.submit([make_insert("other", [[1]])])  # unknown table: no-op


def test_broker_validates_operations():
    broker = TransactionBroker(SharedLog())
    with pytest.raises(SoeError):
        broker.submit([{"bogus": True}])


def test_broker_read_since():
    broker = TransactionBroker(SharedLog())
    broker.submit([make_insert("t", [[1]])])
    broker.submit([make_insert("t", [[2]])])
    entries = list(broker.read_since(1))
    assert len(entries) == 1
    assert entries[0][1][0]["rows"] == [[2]]


def test_invalid_mode_rejected():
    with pytest.raises(SoeError):
        DataNode("x", TransactionBroker(SharedLog()), mode="hybrid")
