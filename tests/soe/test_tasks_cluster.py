"""Tests for task DAGs and the cluster/network substrate."""

import pytest

from repro.errors import ClusterError, CoordinationError
from repro.soe.cluster import NetworkModel, SimulatedCluster, approx_row_bytes
from repro.soe.tasks import AggregateSpec, Filter, TaskDag


def test_task_dag_topological_order():
    dag = TaskDag()
    a = dag.add("scan", "n1", {})
    b = dag.add("scan", "n2", {})
    c = dag.add("merge", "coord", {}, [a.task_id, b.task_id])
    d = dag.add("collect", "coord", {}, [c.task_id])
    order = [task.task_id for task in dag.topological_order()]
    assert order.index(a.task_id) < order.index(c.task_id)
    assert order.index(b.task_id) < order.index(c.task_id)
    assert order.index(c.task_id) < order.index(d.task_id)


def test_task_dag_cycle_detected():
    dag = TaskDag()
    a = dag.add("x", "n1", {})
    b = dag.add("y", "n1", {}, [a.task_id])
    a.inputs.append(b.task_id)
    with pytest.raises(CoordinationError):
        dag.topological_order()


def test_task_dag_describe():
    dag = TaskDag()
    a = dag.add("scan", "n1", {})
    dag.add("merge", "coord", {}, [a.task_id])
    rendered = dag.describe()
    assert "t0 scan@n1" in rendered
    assert "t1 merge@coord <- [0]" in rendered


def test_aggregate_spec_validation():
    with pytest.raises(CoordinationError):
        AggregateSpec("mode")
    with pytest.raises(CoordinationError):
        AggregateSpec("sum")  # needs a column
    assert AggregateSpec("count").column is None
    assert Filter("a", ">", 1).value == 1


def test_network_model_cost():
    network = NetworkModel(latency_seconds=0.001, bandwidth_bytes_per_second=1000)
    assert network.cost(0) == 0.001
    assert network.cost(1000) == pytest.approx(1.001)


def test_cluster_transfer_accounting_and_local_free():
    cluster = SimulatedCluster()
    cluster.add_node("a")
    cluster.add_node("b")
    assert cluster.transfer("a", "a", 10_000) == 0.0
    assert cluster.stats.messages == 0
    seconds = cluster.transfer("a", "b", 10_000)
    assert seconds > 0
    assert cluster.stats.messages == 1
    assert cluster.stats.bytes_total == 10_000
    old = cluster.reset_stats()
    assert old.messages == 1
    assert cluster.stats.messages == 0


def test_cluster_node_lifecycle():
    cluster = SimulatedCluster()
    node = cluster.add_node()
    assert node.node_id.startswith("node")
    with pytest.raises(ClusterError):
        cluster.add_node(node.node_id)
    with pytest.raises(ClusterError):
        cluster.node("ghost")
    cluster.kill(node.node_id)
    assert cluster.alive_nodes() == []
    with pytest.raises(ClusterError):
        node.service("anything")
    cluster.revive(node.node_id)
    with pytest.raises(ClusterError):
        node.service("anything")  # alive but no such service


def test_approx_row_bytes():
    assert approx_row_bytes([1, 2.5]) == 18
    assert approx_row_bytes(["abc"]) == 6
