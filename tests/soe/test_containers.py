"""Tests for service containerisation (§IV.B)."""

import pytest

from repro.errors import ClusterError
from repro.soe.cluster import SimulatedCluster
from repro.soe.containers import ContainerRuntime, ResourceLimits


@pytest.fixture
def runtime():
    cluster = SimulatedCluster()
    for _index in range(3):
        cluster.add_node()
    return ContainerRuntime(cluster, node_cpu_capacity=2), cluster


def test_deploy_places_on_least_loaded_node(runtime):
    rt, cluster = runtime
    first = rt.deploy("v2lqp", object())
    second = rt.deploy("v2lqp", object())
    third = rt.deploy("v2lqp", object())
    assert {first.node_id, second.node_id, third.node_id} == set(cluster.nodes)


def test_cpu_capacity_enforced(runtime):
    rt, cluster = runtime
    big = ResourceLimits(cpu_shares=2)
    for _index in range(3):
        rt.deploy("svc", object(), limits=big)
    with pytest.raises(ClusterError):
        rt.deploy("svc", object(), limits=big)


def test_explicit_placement_and_service_hosting(runtime):
    rt, cluster = runtime
    node_id = next(iter(cluster.nodes))
    service = object()
    container = rt.deploy("v2catalog", service, node_id=node_id)
    assert cluster.node(node_id).service("v2catalog") is service
    assert container.node_id == node_id


def test_oom_kills_container_not_node(runtime):
    rt, cluster = runtime
    container = rt.deploy(
        "v2transact", object(), limits=ResourceLimits(memory_bytes=100)
    )
    container.charge_memory(60)
    with pytest.raises(ClusterError):
        container.charge_memory(60)
    assert container.state == "FAILED"
    assert cluster.node(container.node_id).alive  # isolation held


def test_restart_resets_accounting(runtime):
    rt, _cluster = runtime
    container = rt.deploy("svc", object(), limits=ResourceLimits(memory_bytes=100))
    with pytest.raises(ClusterError):
        container.charge_memory(200)
    restarted = rt.restart(container.container_id)
    assert restarted.state == "RUNNING"
    assert restarted.memory_used == 0
    assert restarted.restarts == 1


def test_stop_withdraws_service(runtime):
    rt, cluster = runtime
    container = rt.deploy("v2stats", object())
    rt.stop(container.container_id)
    with pytest.raises(ClusterError):
        cluster.node(container.node_id).service("v2stats")


def test_reschedule_off_dead_node(runtime):
    rt, cluster = runtime
    container = rt.deploy("v2dqp", object())
    cluster.kill(container.node_id)
    failed = rt.handle_node_failure(container.node_id)
    assert container in failed and container.state == "FAILED"
    with pytest.raises(ClusterError):
        rt.restart(container.container_id)
    replacement = rt.reschedule(container.container_id)
    assert replacement.node_id != container.node_id
    assert replacement.state == "RUNNING"


def test_statistics(runtime):
    rt, _cluster = runtime
    rt.deploy("a", object())
    second = rt.deploy("b", object())
    rt.stop(second.container_id)
    stats = rt.statistics()
    assert stats["containers"] == 2
    assert stats["by_state"] == {"RUNNING": 1, "STOPPED": 1}
