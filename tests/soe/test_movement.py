"""Tests for repro.soe.movement: the five-phase online migration protocol.

Happy path, concurrent-write catch-up, query pinning/drain/trim, retry
under transfer drops, governor charging/deferral, and deterministic
journal-driven resume. The chaos kill matrix lives in
tests/chaos/test_movement_chaos.py.
"""

from __future__ import annotations

import pytest

from repro.chaos import ChaosController, FaultPlan, FaultSpec
from repro.errors import BudgetExceededError, MoveAbortedError, MoveError
from repro.qos.governor import QueryBudget, ResourceGovernor
from repro.soe.engine import SoeEngine
from repro.soe.movement import MoveJournal, MoveState, PartitionMover, PHASES
from repro.util.retry import RetryPolicy


def build_soe(chaos: ChaosController | None = None, **kwargs) -> SoeEngine:
    soe = SoeEngine(node_count=3, node_modes="olap", chaos=chaos, **kwargs)
    soe.create_table("t", ["k", "v"], ["k"], partition_count=6)
    soe.load("t", [[i, float(i)] for i in range(600)])
    return soe


def partition_on(soe: SoeEngine, node_id: str) -> int:
    return soe.catalog.partitions_on("t", node_id)[0]


def total_count(soe: SoeEngine) -> int:
    # strong: force full catch-up, so log-committed inserts are counted
    rows, _ = soe.aggregate("t", aggregates=[("count", None)], consistency="strong")
    return rows[0][0]


class TestHappyPath:
    def test_online_move_preserves_data_and_catalog(self):
        soe = build_soe()
        pid = partition_on(soe, "worker0")
        mover = soe.make_mover()
        state = mover.move("t", pid, "worker0", "worker1")
        assert state.phase == "done"
        assert not state.aborted
        assert state.history == [*PHASES, "done"]
        assert soe.catalog.nodes_of("t", pid) == ["worker1"]
        assert pid in soe.data_nodes["worker1"].owned_partitions("t")
        assert pid not in soe.data_nodes["worker0"].owned_partitions("t")
        # trim freed the donor's retained copy
        assert state.trimmed
        assert not soe.data_nodes["worker0"].store.has_partition("t", pid)
        assert total_count(soe) == 600

    def test_every_phase_is_journaled(self):
        soe = build_soe()
        pid = partition_on(soe, "worker0")
        mover = soe.make_mover()
        state = mover.move("t", pid, "worker0", "worker1")
        phases = [r["phase"] for r in mover.journal.entries(state.move_id)]
        for phase in PHASES:
            assert phase in phases
        assert phases[-1] == "done"
        assert mover.journal.open_moves() == []

    def test_queries_run_at_every_phase_boundary(self):
        soe = build_soe()
        pid = partition_on(soe, "worker0")
        observed: list[tuple[str, int, int]] = []

        def hook(state: MoveState) -> None:
            owners = soe.catalog.nodes_of("t", state.partition_id)
            observed.append((state.phase, len(owners), total_count(soe)))

        mover = soe.make_mover(phase_hook=hook)
        state = mover.move("t", pid, "worker0", "worker1")
        assert not state.aborted
        assert [phase for phase, _, _ in observed] == list(PHASES)
        # exactly one catalog owner and a complete answer at every boundary
        assert all(owners == 1 for _, owners, _ in observed)
        assert all(count == 600 for _, _, count in observed)

    def test_concurrent_inserts_are_caught_up(self):
        soe = build_soe()
        pid = partition_on(soe, "worker0")
        inserted: list[int] = []

        def hook(state: MoveState) -> None:
            # commit writes while the copy is in flight: catch-up (and the
            # flip's install alignment) must absorb them exactly once
            if state.phase in ("snapshot_copy", "catch_up"):
                base = 10_000 + 100 * len(inserted)
                soe.insert("t", [[base + i, 1.0] for i in range(50)])
                inserted.append(base)

        mover = soe.make_mover(phase_hook=hook)
        state = mover.move("t", pid, "worker0", "worker1")
        assert not state.aborted
        assert total_count(soe) == 600 + 50 * len(inserted)

    def test_move_reports_copy_and_catchup_stats(self):
        soe = build_soe()
        pid = partition_on(soe, "worker0")
        soe.insert("t", [[5000 + i, 2.0] for i in range(30)])
        mover = soe.make_mover()
        state = mover.move("t", pid, "worker0", "worker1")
        assert state.bytes_copied > 0
        assert state.snapshot_lsn >= 0
        assert state.applied_lsn >= state.snapshot_lsn


class TestValidation:
    def test_rejects_same_node(self):
        soe = build_soe()
        with pytest.raises(MoveError):
            soe.make_mover().move("t", 0, "worker0", "worker0")

    def test_rejects_unknown_nodes(self):
        soe = build_soe()
        with pytest.raises(MoveError):
            soe.make_mover().move("t", 0, "worker9", "worker1")
        with pytest.raises(MoveError):
            soe.make_mover().move("t", 0, "worker0", "worker9")

    def test_rejects_unowned_partition(self):
        soe = build_soe()
        pid = partition_on(soe, "worker1")
        with pytest.raises(MoveError):
            soe.make_mover().move("t", pid, "worker0", "worker2")

    def test_rejects_recipient_that_already_owns(self):
        soe = build_soe()
        pid = partition_on(soe, "worker0")
        with pytest.raises(MoveError):
            soe.make_mover().move("t", pid, "worker0", "worker0")


class TestDrainAndTrim:
    def test_pinned_donor_copy_defers_trim(self):
        soe = build_soe()
        pid = partition_on(soe, "worker0")
        donor = soe.data_nodes["worker0"]
        donor.pin_partition("t", pid)  # a long-running query holds the copy
        mover = soe.make_mover(drain_rounds=2)
        state = mover.move("t", pid, "worker0", "worker1")
        assert not state.aborted
        assert not state.trimmed
        # the retained copy survives for the pinned reader...
        assert donor.store.has_partition("t", pid)
        # ...but ownership (and log application) already moved
        assert pid not in donor.owned_partitions("t")
        donor.unpin_partition("t", pid)
        assert donor.drop_retained("t", pid)
        assert not donor.store.has_partition("t", pid)

    def test_query_service_pins_partitions_during_execution(self):
        soe = build_soe()
        pid = partition_on(soe, "worker0")
        donor = soe.data_nodes["worker0"]
        seen: list[int] = []

        original = donor.store.partition

        def spying_partition(table, partition_id):
            seen.append(donor.pin_count("t", pid))
            return original(table, partition_id)

        donor.store.partition = spying_partition
        try:
            total_count(soe)
        finally:
            donor.store.partition = original
        assert any(count > 0 for count in seen)
        assert donor.pin_count("t", pid) == 0  # released after the task


class TestRetriesAndBreaker:
    def test_transfer_drops_are_retried(self):
        plan = FaultPlan(
            [
                FaultSpec("drop", "transfer", 0),
                FaultSpec("drop", "transfer", 1),
            ]
        )
        chaos = ChaosController(plan)
        soe = build_soe(chaos=chaos)
        pid = partition_on(soe, "worker0")
        mover = soe.make_mover()
        state = mover.move("t", pid, "worker0", "worker1")
        assert not state.aborted
        assert state.retries == 2
        assert soe.catalog.nodes_of("t", pid) == ["worker1"]
        assert total_count(soe) == 600

    def test_exhausted_retries_roll_back(self):
        drops = FaultPlan([FaultSpec("drop", "transfer", e) for e in range(10)])
        chaos = ChaosController(drops)
        soe = build_soe(chaos=chaos, retry_policy=RetryPolicy(max_attempts=2))
        pid = partition_on(soe, "worker0")
        mover = soe.make_mover()
        state = mover.move("t", pid, "worker0", "worker1")
        assert state.aborted
        assert "TransferDroppedError" in state.error
        # the donor never stopped being the owner
        assert soe.catalog.nodes_of("t", pid) == ["worker0"]
        assert pid in soe.data_nodes["worker0"].owned_partitions("t")
        assert pid not in soe.data_nodes["worker1"].owned_partitions("t")

    def test_raise_on_abort(self):
        drops = FaultPlan([FaultSpec("drop", "transfer", e) for e in range(10)])
        soe = build_soe(
            chaos=ChaosController(drops), retry_policy=RetryPolicy(max_attempts=2)
        )
        pid = partition_on(soe, "worker0")
        with pytest.raises(MoveAbortedError):
            soe.make_mover().move("t", pid, "worker0", "worker1", raise_on_abort=True)


class TestGovernor:
    def test_copy_work_is_charged(self):
        soe = build_soe()
        pid = partition_on(soe, "worker0")
        governor = ResourceGovernor(QueryBudget(hard_rows=1_000_000))
        mover = soe.make_mover(governor=governor)
        state = mover.move("t", pid, "worker0", "worker1")
        assert not state.aborted
        snapshot = governor.snapshot()
        assert snapshot["rows"] > 0
        assert snapshot["bytes"] >= state.bytes_copied

    def test_degraded_landscape_defers_the_move(self):
        soe = build_soe()
        pid = partition_on(soe, "worker0")
        governor = ResourceGovernor(QueryBudget(soft_rows=1))
        governor.charge(rows=10)  # trips the soft limit -> should_stop
        mover = soe.make_mover(governor=governor)
        with pytest.raises(MoveError, match="deferred"):
            mover.move("t", pid, "worker0", "worker1")
        # nothing moved, nothing journaled
        assert soe.catalog.nodes_of("t", pid) == ["worker0"]
        assert mover.journal.move_ids() == []

    def test_blown_hard_budget_mid_copy_rolls_back(self):
        soe = build_soe()
        pid = partition_on(soe, "worker0")
        governor = ResourceGovernor(QueryBudget(hard_rows=10))
        mover = soe.make_mover(governor=governor)
        state = mover.move("t", pid, "worker0", "worker1")
        assert state.aborted
        assert "BudgetExceededError" in state.error
        assert soe.catalog.nodes_of("t", pid) == ["worker0"]
        assert total_count(soe) == 600


class TestResume:
    def test_resume_before_flip_rolls_back(self):
        soe = build_soe()
        pid = partition_on(soe, "worker0")
        mover = soe.make_mover()
        # a crashed mover left a journal mid-catch-up, copy lost with the
        # process: resume must leave the donor authoritative
        crashed = MoveState(
            move_id="move-crashed",
            table="t",
            partition_id=pid,
            donor="worker0",
            recipient="worker1",
            phase="catch_up",
        )
        mover.journal.record(crashed)
        resumed = mover.resume("move-crashed")
        assert resumed.aborted
        assert not resumed.flip_committed
        assert soe.catalog.nodes_of("t", pid) == ["worker0"]
        assert pid in soe.data_nodes["worker0"].owned_partitions("t")
        assert total_count(soe) == 600

    def test_resume_after_flip_commit_rolls_forward(self):
        soe = build_soe()
        pid = partition_on(soe, "worker0")
        donor = soe.data_nodes["worker0"]
        recipient = soe.data_nodes["worker1"]
        # reproduce a crash *between* the catalog swap and the donor
        # release: install + swap happened, release did not
        clone, lsn = donor.snapshot_partition("t", pid)
        key_positions, partition_count = donor.ownership_meta("t")
        recipient.install_ownership("t", clone, key_positions, partition_count, lsn)
        soe.catalog.swap_placement("t", pid, "worker0", "worker1")
        mover = soe.make_mover()
        crashed = MoveState(
            move_id="move-crashed",
            table="t",
            partition_id=pid,
            donor="worker0",
            recipient="worker1",
            phase="flip",
            flip_committed=True,
        )
        mover.journal.record(crashed)
        resumed = mover.resume("move-crashed")
        assert resumed.rolled_forward
        assert not resumed.aborted
        assert resumed.trimmed
        assert soe.catalog.nodes_of("t", pid) == ["worker1"]
        assert pid not in donor.owned_partitions("t")
        assert not donor.store.has_partition("t", pid)
        assert total_count(soe) == 600

    def test_recover_all_resumes_every_open_move(self):
        soe = build_soe()
        pid = partition_on(soe, "worker0")
        mover = soe.make_mover()
        mover.journal.record(
            MoveState(
                move_id="move-open",
                table="t",
                partition_id=pid,
                donor="worker0",
                recipient="worker1",
                phase="snapshot_copy",
            )
        )
        states = mover.recover_all()
        assert [s.move_id for s in states] == ["move-open"]
        assert states[0].done
        assert mover.journal.open_moves() == []

    def test_resume_unknown_move_rejected(self):
        soe = build_soe()
        with pytest.raises(MoveError):
            soe.make_mover().resume("move-nope")


class TestJournal:
    def test_shared_journal_survives_mover_restart(self):
        soe = build_soe()
        pid = partition_on(soe, "worker0")
        journal = MoveJournal()
        first = soe.make_mover(journal=journal)
        state = first.move("t", pid, "worker0", "worker1")
        # a "restarted" mover sees the finished move through the journal
        second = soe.make_mover(journal=journal)
        assert second.journal.latest(state.move_id)["phase"] == "done"
        assert second.recover_all() == []

    def test_state_round_trips_through_dict(self):
        state = MoveState(
            move_id="m", table="t", partition_id=3, donor="a", recipient="b"
        )
        state.phase = "flip"
        state.flip_committed = True
        state.history = ["snapshot_copy", "catch_up", "flip"]
        clone = MoveState.from_dict(state.to_dict())
        assert clone.to_dict() == state.to_dict()


class TestAutoRebalancer:
    def _skew(self, soe: SoeEngine) -> None:
        for pid, nodes in soe.catalog.placement_of("t").items():
            if nodes[0] != "worker0":
                soe.manager.move_partition("t", pid, nodes[0], "worker0")

    def test_hotspot_is_shed_and_throughput_respreads(self):
        soe = build_soe()
        self._skew(soe)
        rebalancer = soe.make_rebalancer(max_moves_per_step=2)
        moved = []
        for _ in range(8):
            total_count(soe)  # all scan load lands on worker0
            moved.extend(rebalancer.step())
        assert moved
        assert all(not m.aborted for m in moved)
        counts = {
            worker: len(soe.catalog.partitions_on("t", worker))
            for worker in soe.worker_ids
        }
        assert max(counts.values()) < 6  # no longer all on worker0
        assert total_count(soe) == 600

    def test_no_hotspot_no_moves(self):
        soe = build_soe()
        rebalancer = soe.make_rebalancer()
        total_count(soe)  # balanced placement -> balanced load
        assert rebalancer.step() == []

    def test_windowed_load_does_not_oscillate(self):
        soe = build_soe()
        self._skew(soe)
        rebalancer = soe.make_rebalancer(max_moves_per_step=6)
        total_count(soe)
        rebalancer.step()
        # with no *new* load, later windows are quiet: no further moves
        follow_ups = [rebalancer.step() for _ in range(3)]
        assert all(step == [] for step in follow_ups)

    def test_governor_defers_rebalancing(self):
        soe = build_soe()
        self._skew(soe)
        governor = ResourceGovernor(QueryBudget(soft_rows=1))
        governor.charge(rows=10)
        rebalancer = soe.make_rebalancer(governor=governor)
        total_count(soe)
        assert rebalancer.step() == []

    def test_dead_target_is_never_chosen(self):
        soe = build_soe()
        self._skew(soe)
        soe.cluster.kill("worker2")
        rebalancer = soe.make_rebalancer(max_moves_per_step=6)
        total_count(soe)
        moved = rebalancer.step()
        assert all(m.recipient != "worker2" for m in moved)
