"""End-to-end tests for the deployed SOE landscape."""

import pytest

from repro.errors import ClusterError, CoordinationError
from repro.soe.engine import SoeEngine


def test_aggregate_matches_ground_truth(small_soe):
    rows, cost = small_soe.aggregate(
        "readings", group_by=["region"], aggregates=[("count", None), ("sum", "value")]
    )
    as_dict = {row[0]: (row[1], row[2]) for row in rows}
    assert as_dict["r0"][0] == 200
    total = sum(count for count, _sum in as_dict.values())
    assert total == 600
    assert cost.strategy == "partial-aggregate"
    assert cost.tasks >= 2


def test_filtered_aggregate(small_soe):
    rows, _cost = small_soe.aggregate(
        "readings",
        aggregates=[("count", None)],
        filters=[("value", ">=", 50.0)],
    )
    assert rows[0][0] == 300


def test_insert_visibility_eventual_vs_strong(small_soe):
    before, _ = small_soe.aggregate("readings", aggregates=[("count", None)])
    small_soe.insert("readings", [[10_000, "r0", 1.0]])
    eventual, _ = small_soe.aggregate("readings", aggregates=[("count", None)])
    assert eventual == before  # OLAP nodes are stale
    strong, _ = small_soe.aggregate(
        "readings", aggregates=[("count", None)], consistency="strong"
    )
    assert strong[0][0] == before[0][0] + 1


def test_catch_up_all(small_soe):
    small_soe.insert("readings", [[10_001, "r1", 2.0]])
    small_soe.catch_up_all()
    eventual, _ = small_soe.aggregate("readings", aggregates=[("count", None)])
    assert eventual[0][0] == 601


def test_delete_through_log(small_soe):
    small_soe.delete("readings", "sensor_id", 5)
    strong, _ = small_soe.aggregate(
        "readings", aggregates=[("count", None)], consistency="strong"
    )
    assert strong[0][0] == 599


def test_join_strategies_agree():
    soe = SoeEngine(node_count=3)
    soe.create_table("fact", ["k", "v"], ["k"], partition_count=6)
    soe.create_table("dim", ["k", "grp"], ["k"], partition_count=6)
    soe.load("fact", [[i % 20, float(i)] for i in range(400)])
    soe.load("dim", [[i, f"g{i % 4}"] for i in range(20)])
    results = {}
    for strategy in ("broadcast", "repartition", "colocated"):
        rows, cost = soe.join(
            "fact", "dim", "k", "k", "grp", [("sum", "v")], strategy=strategy
        )
        results[strategy] = sorted(map(tuple, rows))
        assert cost.strategy == strategy
    assert results["broadcast"] == results["repartition"] == results["colocated"]


def test_communication_costs_order_by_strategy():
    # fact is partitioned on id, NOT on the join key k: repartition must
    # genuinely shuffle, broadcast ships only the small dim table.
    soe = SoeEngine(node_count=4)
    soe.create_table("fact", ["id", "k", "v"], ["id"], partition_count=8)
    soe.create_table("dim", ["k", "grp"], ["k"], partition_count=8)
    soe.load("fact", [[i, i % 50, 1.0] for i in range(2000)])
    soe.load("dim", [[i, f"g{i % 3}"] for i in range(50)])
    costs = {}
    results = {}
    for strategy in ("broadcast", "repartition"):
        soe.cluster.reset_stats()
        rows, cost = soe.join("fact", "dim", "k", "k", "grp", [("sum", "v")], strategy=strategy)
        costs[strategy] = cost.bytes_shipped
        results[strategy] = sorted(map(tuple, rows))
    assert results["broadcast"] == results["repartition"]
    assert costs["broadcast"] < costs["repartition"]

    # when both sides ARE hash-partitioned on the join key, a co-located
    # plan ships only the final partial states — the cheapest of all.
    aligned = SoeEngine(node_count=4)
    aligned.create_table("fact", ["k", "v"], ["k"], partition_count=8)
    aligned.create_table("dim", ["k", "grp"], ["k"], partition_count=8)
    aligned.load("fact", [[i % 50, 1.0] for i in range(2000)])
    aligned.load("dim", [[i, f"g{i % 3}"] for i in range(50)])
    _rows, colocated_cost = aligned.join(
        "fact", "dim", "k", "k", "grp", [("sum", "v")], strategy="colocated"
    )
    assert colocated_cost.bytes_shipped <= costs["broadcast"]


def test_auto_strategy_picks_colocated_when_aligned():
    soe = SoeEngine(node_count=2)
    soe.create_table("fact", ["k", "v"], ["k"], partition_count=4)
    soe.create_table("dim", ["k", "grp"], ["k"], partition_count=4)
    soe.load("fact", [[i % 10, 1.0] for i in range(100)])
    soe.load("dim", [[i, "g"] for i in range(10)])
    _rows, cost = soe.join("fact", "dim", "k", "k", "grp", [("sum", "v")], strategy="auto")
    assert cost.strategy == "colocated"


def test_replication_survives_node_failure():
    soe = SoeEngine(node_count=3, replication=2)
    soe.create_table("t", ["k", "v"], ["k"], partition_count=6)
    soe.load("t", [[i, float(i)] for i in range(300)])
    baseline, _ = soe.aggregate("t", aggregates=[("count", None)])
    soe.cluster.kill("worker0")
    after, _ = soe.aggregate("t", aggregates=[("count", None)])
    assert after == baseline


def test_unreplicated_failure_is_detected():
    soe = SoeEngine(node_count=2, replication=1)
    soe.create_table("t", ["k"], ["k"], partition_count=4)
    soe.load("t", [[i] for i in range(10)])
    soe.cluster.kill("worker0")
    with pytest.raises(CoordinationError):
        soe.aggregate("t", aggregates=[("count", None)])


def test_statistics_snapshot(small_soe):
    small_soe.aggregate("readings", aggregates=[("count", None)])
    stats = small_soe.statistics()
    assert stats["nodes"] == 4  # coordinator + 3 workers
    assert stats["log_tail"] == 0
    assert sum(stats["stats"]["node_load"].values()) >= 600


def test_engine_validation():
    with pytest.raises(Exception):
        SoeEngine(node_count=0)
    with pytest.raises(Exception):
        SoeEngine(node_count=2, node_modes=["olap"])


def test_assignments_spread_across_replicas():
    soe = SoeEngine(node_count=3, replication=2)
    soe.create_table("t", ["k"], ["k"], partition_count=6)
    soe.load("t", [[i] for i in range(600)])
    assignments = soe.coordinator._assignments("t")
    # with 2 replicas per partition the scan load spreads over all workers
    assert len(assignments) == 3
    counts = sorted(len(v) for v in assignments.values())
    assert counts == [2, 2, 2]
