"""Tests for prepackaged partitions and the local store."""

import pytest

from repro.errors import SoeError
from repro.soe.partitions import (
    LocalStore,
    PrepackagedPartition,
    hash_partition_rows,
    route_row,
)


def test_append_and_columns():
    partition = PrepackagedPartition("t", 0, ["a", "b"])
    partition.append_rows([[1, "x"], [2, "y"]])
    assert len(partition) == 2
    assert list(partition.column("a")) == [1, 2]
    assert partition.column_list("b") == ["x", "y"]
    assert list(partition.rows()) == [(1, "x"), (2, "y")]


def test_row_width_validated():
    partition = PrepackagedPartition("t", 0, ["a", "b"])
    with pytest.raises(SoeError):
        partition.append_row([1])
    with pytest.raises(SoeError):
        partition.column("missing")


def test_delete_where_compacts():
    partition = PrepackagedPartition("t", 0, ["a"])
    partition.append_rows([[1], [2], [3]])
    removed = partition.delete_where(lambda row: row[0] == 2)
    assert removed == 1
    assert list(partition.column("a")) == [1, 3]


def test_payload_round_trip():
    partition = PrepackagedPartition("t", 3, ["a", "b"])
    partition.append_rows([[1, "x"]])
    clone = PrepackagedPartition.from_payload(partition.to_payload())
    assert clone.partition_id == 3
    assert list(clone.rows()) == [(1, "x")]
    assert partition.size_bytes() > 0


def test_hash_partitioning_consistent_with_route_row():
    rows = [[i, f"v{i}"] for i in range(100)]
    partitions = hash_partition_rows(rows, ["k", "v"], [0], 4, "t")
    assert sum(len(p) for p in partitions) == 100
    for partition in partitions:
        for row in partition.rows():
            assert route_row(row, [0], 4) == partition.partition_id


def test_local_store_install_lookup_remove():
    store = LocalStore()
    partition = PrepackagedPartition("t", 1, ["a"])
    partition.append_row([5])
    store.install(partition)
    assert store.has_partition("t", 1)
    assert store.partition("t", 1) is partition
    assert store.partitions_of("t") == [partition]
    assert store.tables() == ["t"]
    assert store.total_rows() == 1
    assert store.remove("t", 1) is partition
    with pytest.raises(SoeError):
        store.partition("t", 1)
