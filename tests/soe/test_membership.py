"""Partition-tolerant membership: detector, leases, fencing, zombies.

The Jepsen-style suite for ``repro.soe.membership``: exactly one valid
lease-holder per partition per epoch, zombie writes after a heal are
rejected and never merged, the failure detector walks its
alive → suspect → dead ladder on silence (and back on a heal), and the
dead-node leakage fix keeps ``DiscoveryService`` from handing out dead
addresses.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    FencedError,
    LeaseExpiredError,
    MembershipError,
    NetworkPartitionedError,
)
from repro.soe.cluster import SimulatedCluster
from repro.soe.engine import SoeEngine
from repro.soe.membership import (
    ALIVE,
    DEAD,
    SUSPECT,
    FailureDetector,
    FenceToken,
    FencingGuard,
    LeaseJournal,
    LeaseManager,
)
from repro.soe.partitions import route_row
from repro.soe.services.discovery import DiscoveryService
from repro.util.retry import SimulatedClock

ROWS = [[i, f"r{i % 3}", float(i % 7)] for i in range(60)]


def build_soe(**membership_kwargs):
    soe = SoeEngine(node_count=3, node_modes="olap", replication=2)
    soe.create_table(
        "readings", ["sensor_id", "region", "value"], ["sensor_id"], partition_count=4
    )
    soe.load("readings", ROWS)
    membership = soe.enable_membership(**membership_kwargs)
    return soe, membership


def key_routed_to(soe: SoeEngine, table: str, pid: int, start: int = 0) -> int:
    meta = soe.catalog.table(table)
    return next(
        k
        for k in range(start, start + 10_000)
        if route_row([k, "x", 0.0], meta.key_positions, meta.partition_count) == pid
    )


# -----------------------------------------------------------------------------
# cluster reachability matrix
# -----------------------------------------------------------------------------


class TestReachability:
    def make(self):
        cluster = SimulatedCluster()
        for name in ("a", "b", "c"):
            cluster.add_node(name)
        return cluster

    def test_directed_cut_is_asymmetric(self):
        cluster = self.make()
        cluster.partition("a", "b")
        assert not cluster.reachable("a", "b")
        assert cluster.reachable("b", "a")
        with pytest.raises(NetworkPartitionedError):
            cluster.transfer("a", "b", 10)
        cluster.transfer("b", "a", 10)  # reverse direction still delivers

    def test_symmetric_cut_and_pair_heal(self):
        cluster = self.make()
        cluster.partition("a", "b", symmetric=True)
        assert not cluster.reachable("a", "b")
        assert not cluster.reachable("b", "a")
        cluster.heal("a", "b")
        assert cluster.reachable("a", "b") and cluster.reachable("b", "a")

    def test_isolate_cuts_everyone_but_node_keeps_running(self):
        cluster = self.make()
        cluster.isolate("a")
        assert cluster.isolated_nodes() == ["a"]
        assert cluster.nodes["a"].alive  # gray failure, not a crash
        for other in ("b", "c"):
            assert not cluster.reachable("a", other)
            assert not cluster.reachable(other, "a")
        assert cluster.reachable("b", "c")
        cluster.heal("a")
        assert cluster.reachable("a", "b")

    def test_kill_is_partitioned_from_everyone(self):
        cluster = self.make()
        cluster.kill("a")
        assert not cluster.reachable("b", "a")
        assert not cluster.reachable("a", "b")
        cluster.revive("a")
        assert cluster.reachable("b", "a")

    def test_partition_error_is_retryable_drop(self):
        from repro.errors import TransferDroppedError
        from repro.util.retry import is_retryable

        cluster = self.make()
        cluster.partition("a", "b")
        with pytest.raises(TransferDroppedError) as excinfo:
            cluster.transfer("a", "b", 10)
        assert is_retryable(excinfo.value)
        assert excinfo.value.source == "a" and excinfo.value.target == "b"


# -----------------------------------------------------------------------------
# failure detector
# -----------------------------------------------------------------------------


class TestFailureDetector:
    def make(self):
        cluster = SimulatedCluster()
        cluster.add_node("coordinator")
        cluster.add_node("w0")
        clock = SimulatedClock()
        detector = FailureDetector(
            cluster,
            clock,
            origin="coordinator",
            suspect_after=0.02,
            dead_after=0.06,
            interval=0.01,
        )
        detector.watch("w0")
        return cluster, clock, detector

    def test_silence_ladder_alive_suspect_dead(self):
        cluster, _clock, detector = self.make()
        assert detector.state("w0") == ALIVE
        cluster.isolate("w0")
        states = []
        for _ in range(8):
            detector.tick()
            states.append(detector.state("w0"))
        assert SUSPECT in states and states[-1] == DEAD
        # the ladder is monotone while the silence lasts
        assert states.index(SUSPECT) < states.index(DEAD)
        assert detector.dead_nodes() == ["w0"]

    def test_heal_recovers_to_alive(self):
        cluster, _clock, detector = self.make()
        cluster.isolate("w0")
        for _ in range(8):
            detector.tick()
        assert detector.state("w0") == DEAD
        cluster.heal("w0")
        detector.tick()
        assert detector.state("w0") == ALIVE

    def test_verdicts_record_transitions_only(self):
        cluster, _clock, detector = self.make()
        cluster.isolate("w0")
        for _ in range(8):
            detector.tick()
        cluster.heal("w0")
        detector.tick()
        transitions = [(v.previous, v.state) for v in detector.verdicts]
        assert transitions == [(ALIVE, SUSPECT), (SUSPECT, DEAD), (DEAD, ALIVE)]

    def test_dead_verdict_drives_discovery_withdraw_and_restore(self):
        cluster = SimulatedCluster()
        cluster.add_node("coordinator")
        cluster.add_node("w0")
        discovery = DiscoveryService()
        discovery.announce("v2lqp", "w0")
        detector = FailureDetector(
            cluster,
            SimulatedClock(),
            origin="coordinator",
            suspect_after=0.02,
            dead_after=0.06,
            interval=0.01,
            discovery=discovery,
        )
        detector.watch("w0")
        cluster.isolate("w0")  # gray: Node.alive never flips
        for _ in range(8):
            detector.tick()
        assert discovery.locate("v2lqp") == []  # dead address withdrawn
        assert discovery.is_failed("w0")
        cluster.heal("w0")
        detector.tick()
        assert discovery.locate("v2lqp") == ["w0"]


# -----------------------------------------------------------------------------
# lease manager + fencing guard
# -----------------------------------------------------------------------------


class TestLeaseManager:
    def test_epochs_are_monotone_across_revoke_and_expiry(self):
        clock = SimulatedClock()
        leases = LeaseManager(clock=clock, ttl_seconds=0.05)
        first = leases.grant("t", 0, "a")
        assert first.epoch == 1
        leases.revoke("t", 0, "a")
        second = leases.grant("t", 0, "b")
        assert second.epoch == 2
        clock.advance(1.0)
        assert leases.expire_sweep()  # b's lease times out
        third = leases.grant("t", 0, "a")
        assert third.epoch == 3

    def test_grant_supersedes_and_stale_token_is_fenced(self):
        leases = LeaseManager(ttl_seconds=10.0)
        stale = leases.grant("t", 0, "a").token()
        leases.validate(stale)  # current: fine
        leases.grant("t", 0, "b")
        with pytest.raises(FencedError):
            leases.validate(stale)

    def test_expired_holder_gets_lease_expired_not_plain_fenced(self):
        clock = SimulatedClock()
        leases = LeaseManager(clock=clock, ttl_seconds=0.05)
        token = leases.grant("t", 0, "a").token()
        clock.advance(1.0)
        with pytest.raises(LeaseExpiredError):
            leases.validate(token)

    def test_superseded_holder_cannot_renew_back_in(self):
        leases = LeaseManager(ttl_seconds=10.0)
        stale = leases.grant("t", 0, "a").token()
        leases.grant("t", 0, "b")
        with pytest.raises(FencedError):
            leases.renew(stale)

    def test_journal_recovery_is_deterministic(self):
        clock = SimulatedClock()
        journal = LeaseJournal()
        leases = LeaseManager(clock=clock, ttl_seconds=0.5, journal=journal)
        leases.grant("t", 0, "a")
        leases.grant("t", 1, "b")
        leases.grant("t", 0, "c")  # supersedes a
        leases.revoke("t", 1, "b")

        recovered_a = LeaseManager.recover(journal, clock, ttl_seconds=0.5)
        recovered_b = LeaseManager.recover(journal, clock, ttl_seconds=0.5)
        for recovered in (recovered_a, recovered_b):
            assert recovered.holder("t", 0) == "c"
            assert recovered.holder("t", 1) is None  # revoked
            assert recovered.current("t", 0).epoch == 2
            # per-partition epochs keep climbing from where the journal
            # left off (t#1 saw one grant, so the next is epoch 2)
            assert recovered.grant("t", 1, "d").epoch == 2
        assert (
            recovered_a.journal.all_entries() == recovered_b.journal.all_entries()
        )

    def test_exactly_one_holder_invariant_catches_forged_double_grant(self):
        from repro.soe.membership.leases import Lease

        leases = LeaseManager(ttl_seconds=1.0)
        leases.grant("t", 0, "a")
        # forge what a split-brained coordinator would journal: a second
        # grant at the SAME epoch for a different holder
        forged = Lease(
            table="t", partition_id=0, holder="b", epoch=1,
            granted_at=0.0, expires_at=1.0,
        )
        leases.journal.record("grant", forged, 0.0)
        violations = leases.exactly_one_holder_violations()
        assert any("2 holders" in v for v in violations)
        assert any("non-monotone epoch" in v for v in violations)

    def test_clean_history_has_no_violations(self):
        leases = LeaseManager(ttl_seconds=1.0)
        for pid in range(3):
            leases.grant("t", pid, "a")
            leases.grant("t", pid, "b")
        assert leases.exactly_one_holder_violations() == []


class TestFencingGuard:
    def make(self):
        leases = LeaseManager(ttl_seconds=10.0)
        return leases, FencingGuard(leases)

    def test_unleased_partition_passes_even_without_token(self):
        _leases, guard = self.make()
        guard.check_partition("t", 0, None)  # never leased: legacy path

    def test_missing_token_on_leased_partition_is_fenced(self):
        leases, guard = self.make()
        leases.grant("t", 0, "a")
        with pytest.raises(FencedError):
            guard.check_partition("t", 0, None)

    def test_disabled_guard_passes_everything(self):
        leases, _ = self.make()
        guard = FencingGuard(leases, enabled=False)
        leases.grant("t", 0, "a")
        guard.check_partition("t", 0, None)  # the bench's unfenced arm

    def test_token_iterables_and_singletons_both_work(self):
        leases, guard = self.make()
        token = leases.grant("t", 0, "a").token()
        guard.check_partition("t", 0, token)
        guard.check_partition("t", 0, (token,))
        guard.check_partition("t", 0, [token])

    def test_check_write_conservatively_covers_all_leased_partitions(self):
        leases, guard = self.make()
        leases.grant("t", 0, "a")
        leases.grant("t", 1, "b")
        # no catalog wired: a delete must present tokens for every leased
        # partition of the table
        operation = {"op": "delete", "table": "t", "predicate": ("k", 1)}
        tokens = (
            leases.current("t", 0).token(),
            leases.current("t", 1).token(),
        )
        guard.check_write(operation, tokens)
        with pytest.raises(FencedError):
            guard.check_write(operation, tokens[:1])

    def test_wrong_epoch_token_reports_current_holder(self):
        leases, guard = self.make()
        stale = leases.grant("t", 0, "a").token()
        leases.grant("t", 0, "b")
        with pytest.raises(FencedError, match="epoch 2 held by 'b'"):
            guard.check_partition("t", 0, stale)


# -----------------------------------------------------------------------------
# discovery dead-node leakage fix
# -----------------------------------------------------------------------------


class TestDiscoveryLiveness:
    def test_mark_failed_withdraws_and_restore_reannounces(self):
        discovery = DiscoveryService()
        discovery.announce("v2lqp", "w0")
        discovery.announce("v2stats", "w0")
        discovery.announce("v2lqp", "w1")
        assert discovery.mark_failed("w0") == ["v2lqp", "v2stats"]
        assert discovery.locate("v2lqp") == ["w1"]
        assert discovery.locate("v2stats") == []
        assert discovery.mark_failed("w0") == []  # idempotent
        assert discovery.restore("w0") == ["v2lqp", "v2stats"]
        assert sorted(discovery.locate("v2lqp")) == ["w0", "w1"]

    def test_announce_while_failed_is_deferred_not_leaked(self):
        discovery = DiscoveryService()
        discovery.announce("v2lqp", "w0")
        discovery.mark_failed("w0")
        discovery.announce("v2mvcc", "w0")  # arrives while the node is down
        assert discovery.locate("v2mvcc") == []
        assert discovery.restore("w0") == ["v2lqp", "v2mvcc"]
        assert discovery.locate("v2mvcc") == ["w0"]

    def test_withdraw_while_failed_cancels_the_owed_reannounce(self):
        discovery = DiscoveryService()
        discovery.announce("v2lqp", "w0")
        discovery.mark_failed("w0")
        discovery.withdraw("v2lqp", "w0")
        assert discovery.restore("w0") == []
        assert discovery.locate("v2lqp") == []

    def test_cluster_kill_revive_drive_discovery(self):
        soe, _membership = build_soe()
        assert "worker0" in soe.discovery.locate("v2lqp")
        soe.cluster.kill("worker0")
        assert "worker0" not in soe.discovery.locate("v2lqp")
        soe.cluster.revive("worker0")
        assert "worker0" in soe.discovery.locate("v2lqp")


# -----------------------------------------------------------------------------
# membership service: the lease bargain, fail-over, token caches
# -----------------------------------------------------------------------------


class TestMembershipService:
    def test_bootstrap_grants_exactly_one_lease_per_partition(self):
        soe, membership = build_soe()
        holders = {
            pid: membership.holder("readings", pid) for pid in range(4)
        }
        assert all(holder is not None for holder in holders.values())
        assert membership.check_invariants() == []
        # idempotent: a second bootstrap grants nothing new
        assert membership.bootstrap("readings") == []

    def test_cannot_fence_unreachable_holder_before_ttl(self):
        soe, membership = build_soe()
        holder = membership.holder("readings", 0)
        other = next(w for w in soe.worker_ids if w != holder)
        soe.cluster.isolate(holder)
        with pytest.raises(MembershipError, match="cannot fence unreachable"):
            membership.grant("readings", 0, other)
        # the bargain expires with the TTL
        soe.clock.advance(1.0)
        lease = membership.grant("readings", 0, other)
        assert lease.holder == other and lease.epoch == 2

    def test_reachable_holder_superseded_immediately(self):
        soe, membership = build_soe()
        holder = membership.holder("readings", 0)
        other = next(w for w in soe.worker_ids if w != holder)
        lease = membership.grant("readings", 0, other)
        assert lease.epoch == 2
        # the old holder was reachable, so its cache dropped the token
        assert all(
            t.partition_id != 0
            for t in membership.cached_tokens(holder, "readings")
        )

    def test_step_fails_over_dead_holder_to_surviving_replica(self):
        soe, membership = build_soe()
        victim = membership.holder("readings", 1)
        soe.cluster.isolate(victim)
        for _ in range(12):
            membership.step()
        survivor = membership.holder("readings", 1)
        assert survivor is not None and survivor != victim
        assert soe.cluster.reachable("coordinator", survivor)
        assert membership.check_invariants() == []

    def test_isolated_holder_keeps_stale_cache_the_zombie(self):
        soe, membership = build_soe()
        victim = membership.holder("readings", 1)
        before = membership.cached_tokens(victim, "readings")
        soe.cluster.isolate(victim)
        for _ in range(12):
            membership.step()
        # revocation was undeliverable: the zombie still believes
        assert membership.cached_tokens(victim, "readings") == before


# -----------------------------------------------------------------------------
# fenced write paths end to end
# -----------------------------------------------------------------------------


class TestFencedWrites:
    def test_front_door_insert_carries_current_tokens(self):
        soe, _membership = build_soe()
        before = soe.broker.transactions
        soe.insert("readings", [[1000, "new", 1.0]])
        assert soe.broker.transactions == before + 1

    def test_isolated_worker_cannot_ack_a_write(self):
        soe, _membership = build_soe()
        soe.cluster.isolate("worker0")
        with pytest.raises(NetworkPartitionedError):
            soe.insert("readings", [[1001, "new", 1.0]], via="worker0")

    def test_zombie_write_after_heal_is_rejected_never_merged(self):
        soe, membership = build_soe()
        victim = membership.holder("readings", 1)
        stale_tokens = membership.cached_tokens(victim, "readings")
        soe.cluster.isolate(victim)
        for _ in range(12):
            membership.step()  # lease expires, fails over
        assert membership.holder("readings", 1) != victim
        soe.cluster.heal()

        key = key_routed_to(soe, "readings", 1, start=50_000)
        tail_before = soe.broker.current_lsn
        with pytest.raises(FencedError):
            soe.broker.submit(
                [{"op": "insert", "table": "readings", "rows": [[key, "z", 9.9]]}],
                fence=stale_tokens,
            )
        # rejected means rejected: nothing reached the log
        assert soe.broker.current_lsn == tail_before
        soe.catch_up_all()
        rows, _ = soe.aggregate(
            "readings",
            filters=[("sensor_id", "=", key)],
            consistency="strong",
        )
        count = rows[0][0] if rows else 0
        assert count == 0, "zombie row must never be merged"

    def test_log_append_fences_below_the_broker(self):
        soe, membership = build_soe()
        victim = membership.holder("readings", 1)
        stale = membership.cached_tokens(victim, "readings")
        other = next(w for w in soe.worker_ids if w != victim)
        membership.grant("readings", 1, other)  # supersede while reachable
        key = key_routed_to(soe, "readings", 1)
        payload = {
            "ops": [{"op": "insert", "table": "readings", "rows": [[key, "z", 0.0]]}]
        }
        with pytest.raises(FencedError):
            soe.log.append(payload, fence=stale)

    def test_swap_placement_requires_current_token(self):
        soe, membership = build_soe()
        holder = membership.holder("readings", 0)
        hosts = soe.catalog.nodes_of("readings", 0)
        spare = next(w for w in soe.worker_ids if w not in hosts)
        with pytest.raises(FencedError):
            soe.catalog.swap_placement("readings", 0, hosts[0], spare)
        # with the live token the swap is allowed
        token = membership.leases.token_for("readings", 0)
        soe.catalog.swap_placement("readings", 0, hosts[0], spare, fence=token)
        assert spare in soe.catalog.nodes_of("readings", 0)


# -----------------------------------------------------------------------------
# mover × leases
# -----------------------------------------------------------------------------


class TestMoverLeaseIntegration:
    def pick_move(self, soe, membership, pid=0):
        hosts = soe.catalog.nodes_of("readings", pid)
        donor = membership.holder("readings", pid)
        if donor not in hosts:
            donor = hosts[0]
        recipient = next(w for w in soe.worker_ids if w not in hosts)
        return donor, recipient

    def test_flip_acquires_next_epoch_and_revokes_donor(self):
        soe, membership = build_soe()
        donor, recipient = self.pick_move(soe, membership)
        epoch_before = membership.leases.current("readings", 0).epoch
        state = soe.make_mover().move("readings", 0, donor, recipient)
        assert state.phase == "done", state.error
        assert state.lease_epoch == epoch_before + 1
        assert membership.holder("readings", 0) == recipient
        # the donor's cached token for the moved partition is gone
        assert all(
            t.partition_id != 0
            for t in membership.cached_tokens(donor, "readings")
        )
        assert membership.check_invariants() == []

    def test_move_blocked_while_holder_unreachable_rolls_back(self):
        soe, membership = build_soe()
        donor, recipient = self.pick_move(soe, membership)
        holder = membership.holder("readings", 0)
        assert holder == donor  # primary is the catalog's first replica slot
        # cut ONLY the coordinator<->holder links: the mover's data path
        # donor->recipient stays up, so the failure happens at the lease
        # grant, not in the copy
        soe.cluster.partition("coordinator", holder, symmetric=True)
        state = soe.make_mover().move("readings", 0, donor, recipient)
        assert state.aborted
        assert "MembershipError" in state.error
        assert soe.catalog.nodes_of("readings", 0)[0] == donor

    def test_journaled_lease_epoch_survives_resume(self):
        from repro.soe.movement.mover import MoveState

        state = MoveState(
            move_id="m",
            table="t",
            partition_id=0,
            donor="a",
            recipient="b",
            lease_epoch=7,
        )
        assert MoveState.from_dict(state.to_dict()).lease_epoch == 7
