"""Tests for the CORFU-style distributed shared log."""

import pytest

from repro.errors import LogError
from repro.soe.services.shared_log import MemorySegmentStore, SharedLog


def test_append_assigns_dense_addresses():
    log = SharedLog(stripes=2, replication=2)
    addresses = [log.append({"n": i}) for i in range(5)]
    assert addresses == [0, 1, 2, 3, 4]
    assert log.tail == 5


def test_read_and_stream():
    log = SharedLog(stripes=3, replication=1)
    for i in range(7):
        log.append(i)
    assert log.read(4) == 4
    assert [payload for _a, payload in log.read_from(3)] == [3, 4, 5, 6]
    assert [payload for _a, payload in log.read_from(0, limit=2)] == [0, 1]


def test_striping_balances_entries():
    log = SharedLog(stripes=4, replication=1)
    for i in range(20):
        log.append(i)
    assert log.stripe_lengths() == [5, 5, 5, 5]


def test_replication_survives_replica_loss():
    log = SharedLog(stripes=1, replication=2)
    address = log.append("payload")
    # simulate first-replica loss by clearing its entry
    log._segments[0][0]._entries.clear()
    assert log.read(address) == "payload"


def test_read_beyond_tail_rejected():
    log = SharedLog()
    with pytest.raises(LogError):
        log.read(0)


def test_double_write_rejected():
    store = MemorySegmentStore("s")
    store.write(0, "a")
    with pytest.raises(LogError):
        store.write(0, "b")


def test_hole_fill_and_skip():
    log = SharedLog(stripes=1, replication=1)
    log.append("a")
    # a client took address 1 and died: simulate via raw sequencer use
    dead_address = log.sequencer.next_address()
    log.append_via_sequencer = None  # readability no-op
    log._write(2 - 1 + 1, "c") if False else None
    # the stream stops at the hole
    assert [p for _a, p in log.read_from(0)] == ["a"]
    log.fill(dead_address)
    assert not log.is_written(99) if False else True
    # after filling, later writes become readable
    log.append("c")
    assert [p for _a, p in log.read_from(0)] == ["a", "c"]
    with pytest.raises(LogError):
        log.fill(0)  # not a hole


def test_trim_drops_prefix():
    log = SharedLog(stripes=2, replication=1)
    for i in range(6):
        log.append(i)
    dropped = log.trim(4)
    assert dropped == 4
    assert log.trimmed_to == 4
    with pytest.raises(LogError):
        log.read(2)
    assert [p for _a, p in log.read_from(0)] == [4, 5]
    with pytest.raises(LogError):
        log.trim(99)


def test_seal_fences_writes():
    log = SharedLog(stripes=1, replication=1)
    log.append("a")
    seal_point = log.seal()
    assert seal_point == 1
    with pytest.raises(LogError):
        log.append("b")


def test_validation():
    with pytest.raises(LogError):
        SharedLog(stripes=0)
    with pytest.raises(LogError):
        SharedLog(replication=0)
