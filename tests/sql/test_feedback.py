"""Cardinality feedback: signatures, the EWMA store, and the replan trigger.

Covers the three pieces of :mod:`repro.sql.feedback` (docs/OPTIMIZER.md):
signature normalization (literals stripped, aliases dropped, conjuncts
sorted), the versioned observed-cardinality store the planner and plan
cache consult, and :func:`~repro.sql.feedback.observe_actual` — the single
measurement point both engines call, which raises
:class:`~repro.sql.feedback.ReplanSignal` on a >10x estimation miss.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.sql import feedback as fb
from repro.sql.parser import parse


def where(sql_predicate: str):
    """Parse just a predicate by wrapping it in a throwaway SELECT."""
    return parse(f"SELECT * FROM t WHERE {sql_predicate}").where


class TestSignatures:
    def test_literals_are_stripped(self):
        assert fb.scan_signature("t", where("amount > 100")) == fb.scan_signature(
            "t", where("amount > 999")
        )

    def test_alias_qualifiers_are_stripped(self):
        assert fb.scan_signature("t", where("t.status = 'a'")) == fb.scan_signature(
            "t", where("status = 'b'")
        )

    def test_conjunct_order_does_not_matter(self):
        left = fb.scan_signature("t", where("a = 1 AND b > 2"))
        right = fb.scan_signature("t", where("b > 9 AND a = 7"))
        assert left == right

    def test_different_shapes_get_different_signatures(self):
        assert fb.scan_signature("t", where("a = 1")) != fb.scan_signature(
            "t", where("a > 1")
        )
        assert fb.scan_signature("t", where("a = 1")) != fb.scan_signature(
            "u", where("a = 1")
        )
        assert fb.scan_signature("t", None) != fb.scan_signature("t", where("a = 1"))

    def test_join_signature_sorts_equi_keys(self):
        a = parse("SELECT * FROM t WHERE x = 1").where.left  # ColumnRef x
        b = parse("SELECT * FROM t WHERE y = 1").where.left  # ColumnRef y
        forward = fb.join_signature("scan:t|", "scan:u|", [(a, a), (b, b)])
        reverse = fb.join_signature("scan:t|", "scan:u|", [(b, b), (a, a)])
        assert forward == reverse

    def test_tables_of_signature_walks_nested_joins(self):
        nested = fb.join_signature(
            fb.join_signature("scan:orders|", "scan:customers|", []),
            "scan:invoices|(paid = ?)",
            [],
        )
        assert fb.tables_of_signature(nested) == {"orders", "customers", "invoices"}


class TestStore:
    def test_first_observation_is_taken_verbatim(self):
        store = fb.CardinalityFeedback()
        store.record("scan:t|", 100)
        assert store.observed("scan:t|") == 100.0
        assert store.samples("scan:t|") == 1

    def test_ewma_smooths_later_observations(self):
        store = fb.CardinalityFeedback()
        store.record("scan:t|", 100)
        store.record("scan:t|", 200)
        assert store.observed("scan:t|") == pytest.approx(150.0)

    def test_version_bumps_on_first_sample_only_in_steady_state(self):
        store = fb.CardinalityFeedback()
        store.record("scan:t|", 100)
        first = store.table_version("t")
        assert first >= 1
        store.record("scan:t|", 110)  # steady: within the 2x drift band
        assert store.table_version("t") == first

    def test_version_bumps_on_significant_drift(self):
        store = fb.CardinalityFeedback()
        store.record("scan:t|", 100)
        before = store.table_version("t")
        store.record("scan:t|", 100_000)
        assert store.table_version("t") > before

    def test_versions_snapshot_covers_unseen_tables(self):
        store = fb.CardinalityFeedback()
        store.record("scan:t|", 10)
        snapshot = store.versions(["t", "never_seen"])
        assert snapshot["never_seen"] == 0
        assert snapshot["t"] >= 1

    def test_forget_table_drops_signatures_and_bumps_version(self):
        store = fb.CardinalityFeedback()
        store.record("scan:t|", 10)
        store.record("scan:u|", 20)
        before = store.table_version("t")
        store.forget_table("t")
        assert store.observed("scan:t|") is None
        assert store.observed("scan:u|") == 20.0
        assert store.table_version("t") > before

    def test_save_and_load_roundtrip(self, tmp_path):
        store = fb.CardinalityFeedback()
        store.record("scan:t|(a = ?)", 42)
        path = tmp_path / "feedback.json"
        store.save(path)
        restored = fb.CardinalityFeedback()
        restored.load(path)
        assert restored.observed("scan:t|(a = ?)") == 42.0
        assert restored.samples("scan:t|(a = ?)") == 1
        assert restored.table_version("t") == store.table_version("t")


class TestHarvest:
    def test_profile_feeds_the_store_only_when_harvested(self, db):
        db.execute("CREATE TABLE t (id INT, grp VARCHAR)")
        db.execute(
            "INSERT INTO t VALUES " + ", ".join(f"({i}, 'g{i % 3}')" for i in range(30))
        )
        profile = db.profile("SELECT COUNT(*) FROM t WHERE grp = 'g0'")
        signature = fb.scan_signature("t", where("grp = 'g0'"))
        # profiling alone is a measurement, not feedback
        assert db.feedback.observed(signature) is None
        recorded = db.feedback.harvest(profile.root)
        assert recorded >= 1
        assert db.feedback.observed(signature) == 10.0


class FakeNode(SimpleNamespace):
    pass


def context_with(store, replans: int = 1, governor=None) -> SimpleNamespace:
    return SimpleNamespace(feedback=store, replans_remaining=replans, governor=governor)


class TestObserveActual:
    def test_records_and_raises_on_blowout(self):
        store = fb.CardinalityFeedback()
        node = FakeNode(signature="scan:t|", estimated_rows=10.0)
        with pytest.raises(fb.ReplanSignal) as excinfo:
            fb.observe_actual(node, 500, context_with(store))
        # the fresh count lands before the signal so the re-plan sees it
        assert store.observed("scan:t|") == 500.0
        assert excinfo.value.actual == 500
        assert excinfo.value.estimated == 10.0

    def test_exact_factor_does_not_trigger(self):
        store = fb.CardinalityFeedback()
        node = FakeNode(signature="scan:t|", estimated_rows=10.0)
        fb.observe_actual(node, 100, context_with(store))  # exactly 10x: no replan

    def test_suppressed_when_replans_exhausted(self):
        store = fb.CardinalityFeedback()
        node = FakeNode(signature="scan:t|", estimated_rows=1.0)
        fb.observe_actual(node, 10_000, context_with(store, replans=0))
        assert store.observed("scan:t|") == 10_000.0  # still recorded

    def test_suppressed_when_governor_degraded(self):
        store = fb.CardinalityFeedback()
        node = FakeNode(signature="scan:t|", estimated_rows=1.0)
        degraded = SimpleNamespace(should_stop=True)
        fb.observe_actual(node, 10_000, context_with(store, governor=degraded))

    def test_unsigned_node_is_ignored(self):
        store = fb.CardinalityFeedback()
        fb.observe_actual(FakeNode(), 10_000, context_with(store))
        assert len(store) == 0
