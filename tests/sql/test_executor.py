"""Tests for the vectorised executor via the public SQL surface."""

import pytest

from repro.core.database import Database
from repro.errors import ColumnNotFoundError, PlanError, TableNotFoundError


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE sales (id INT, region VARCHAR, amount DOUBLE, qty INT, note VARCHAR)"
    )
    database.execute(
        "INSERT INTO sales VALUES "
        "(1, 'EU', 10.0, 2, 'a'), (2, 'EU', 20.0, 1, NULL), "
        "(3, 'US', 30.0, 5, 'b'), (4, 'US', NULL, 1, 'c'), (5, 'APJ', 50.0, 3, 'd')"
    )
    return database


def test_projection_and_arithmetic(db):
    rows = db.query("SELECT id, amount * qty AS total FROM sales WHERE id <= 2 ORDER BY id").rows
    assert rows == [[1, 20.0], [2, 20.0]]


def test_null_comparison_filters_out(db):
    assert db.query("SELECT COUNT(*) FROM sales WHERE amount > 0").scalar() == 4
    assert db.query("SELECT COUNT(*) FROM sales WHERE amount IS NULL").scalar() == 1


def test_group_by_with_aggregates(db):
    rows = db.query(
        "SELECT region, COUNT(*) AS n, SUM(amount) AS s, AVG(amount) AS a, "
        "MIN(qty) AS mn, MAX(qty) AS mx FROM sales GROUP BY region ORDER BY region"
    ).rows
    assert rows == [
        ["APJ", 1, 50.0, 50.0, 3, 3],
        ["EU", 2, 30.0, 15.0, 1, 2],
        ["US", 2, 30.0, 30.0, 1, 5],
    ]


def test_global_aggregate_without_group(db):
    row = db.query("SELECT COUNT(*), SUM(amount), COUNT(amount), COUNT(note) FROM sales").first()
    assert row == [5, 110.0, 4, 4]


def test_global_aggregate_on_empty_table():
    database = Database()
    database.execute("CREATE TABLE e (x INT)")
    row = database.query("SELECT COUNT(*), SUM(x) FROM e").first()
    assert row == [0, None]


def test_count_distinct(db):
    assert db.query("SELECT COUNT(DISTINCT region) FROM sales").scalar() == 3


def test_having(db):
    rows = db.query(
        "SELECT region FROM sales GROUP BY region HAVING SUM(amount) >= 30 ORDER BY region"
    ).rows
    assert rows == [["APJ"], ["EU"], ["US"]]


def test_order_by_hidden_column(db):
    rows = db.query("SELECT id FROM sales ORDER BY amount DESC").rows
    assert rows[0] == [5]
    assert rows[-1] == [4]  # NULL sorts last


def test_order_by_multiple_keys(db):
    rows = db.query("SELECT region, qty FROM sales ORDER BY region ASC, qty DESC").rows
    assert rows[0] == ["APJ", 3]
    assert rows[1] == ["EU", 2]


def test_distinct(db):
    rows = db.query("SELECT DISTINCT region FROM sales ORDER BY region").rows
    assert rows == [["APJ"], ["EU"], ["US"]]


def test_limit_offset(db):
    rows = db.query("SELECT id FROM sales ORDER BY id LIMIT 2 OFFSET 1").rows
    assert rows == [[2], [3]]


def test_in_between_like(db):
    assert db.query("SELECT COUNT(*) FROM sales WHERE region IN ('EU', 'APJ')").scalar() == 3
    assert db.query("SELECT COUNT(*) FROM sales WHERE qty BETWEEN 2 AND 3").scalar() == 2
    assert db.query("SELECT COUNT(*) FROM sales WHERE note LIKE '_'").scalar() == 4


def test_case_when(db):
    rows = db.query(
        "SELECT id, CASE WHEN amount >= 30 THEN 'hi' WHEN amount >= 20 THEN 'mid' "
        "ELSE 'lo' END AS bucket FROM sales WHERE amount IS NOT NULL ORDER BY id"
    ).rows
    assert [row[1] for row in rows] == ["lo", "mid", "hi", "hi"]


def test_inner_join_and_aliases(db):
    db.execute("CREATE TABLE regions (code VARCHAR, continent VARCHAR)")
    db.execute("INSERT INTO regions VALUES ('EU', 'Europe'), ('US', 'America')")
    rows = db.query(
        "SELECT r.continent, SUM(s.amount) AS total FROM sales s "
        "JOIN regions r ON s.region = r.code GROUP BY r.continent ORDER BY r.continent"
    ).rows
    assert rows == [["America", 30.0], ["Europe", 30.0]]


def test_left_join_pads_nulls(db):
    db.execute("CREATE TABLE regions (code VARCHAR, continent VARCHAR)")
    db.execute("INSERT INTO regions VALUES ('EU', 'Europe')")
    rows = db.query(
        "SELECT s.region, r.continent FROM sales s LEFT JOIN regions r "
        "ON s.region = r.code WHERE s.id = 3"
    ).rows
    assert rows == [["US", None]]


def test_implicit_join_via_where(db):
    db.execute("CREATE TABLE regions (code VARCHAR, continent VARCHAR)")
    db.execute("INSERT INTO regions VALUES ('EU', 'Europe'), ('US', 'America')")
    rows = db.query(
        "SELECT COUNT(*) FROM sales s, regions r WHERE s.region = r.code"
    ).rows
    assert rows == [[4]]


def test_cross_join(db):
    db.execute("CREATE TABLE two (x INT)")
    db.execute("INSERT INTO two VALUES (1), (2)")
    assert db.query("SELECT COUNT(*) FROM sales CROSS JOIN two").scalar() == 10


def test_derived_table(db):
    rows = db.query(
        "SELECT t.region FROM (SELECT region, SUM(amount) AS s FROM sales "
        "GROUP BY region) t WHERE t.s >= 30 ORDER BY t.region"
    ).rows
    assert rows == [["APJ"], ["EU"], ["US"]]


def test_select_star_and_qualified_star(db):
    rows = db.query("SELECT * FROM sales WHERE id = 1").rows
    assert rows == [[1, "EU", 10.0, 2, "a"]]


def test_select_without_from(db):
    assert db.query("SELECT 1 + 2 AS x").rows == [[3]]


def test_insert_from_select(db):
    db.execute("CREATE TABLE archive (id INT, region VARCHAR, amount DOUBLE, qty INT, note VARCHAR)")
    db.execute("INSERT INTO archive SELECT * FROM sales WHERE region = 'EU'")
    assert db.query("SELECT COUNT(*) FROM archive").scalar() == 2


def test_unknown_table_and_column_errors(db):
    with pytest.raises(TableNotFoundError):
        db.query("SELECT * FROM ghost")
    with pytest.raises((ColumnNotFoundError, PlanError)):
        db.query("SELECT ghost_col FROM sales")


def test_update_with_expression(db):
    count = db.execute("UPDATE sales SET amount = amount * 2 WHERE region = 'EU'").rowcount
    assert count == 2
    assert db.query("SELECT SUM(amount) FROM sales WHERE region = 'EU'").scalar() == 60.0


def test_delete_all(db):
    assert db.execute("DELETE FROM sales").rowcount == 5
    assert db.query("SELECT COUNT(*) FROM sales").scalar() == 0


def test_row_table_through_sql():
    database = Database()
    database.execute("CREATE ROW TABLE r (id INT, v DOUBLE)")
    database.execute("INSERT INTO r VALUES (1, 1.5), (2, 2.5)")
    assert database.query("SELECT SUM(v) FROM r WHERE id > 1").scalar() == 2.5
    database.execute("UPDATE r SET v = 0 WHERE id = 1")
    database.execute("DELETE FROM r WHERE id = 2")
    assert database.query("SELECT SUM(v) FROM r").scalar() == 0.0


def test_median_stddev(db):
    row = db.query("SELECT MEDIAN(amount), STDDEV(qty) FROM sales").first()
    assert row[0] == 25.0
    assert row[1] == pytest.approx(1.4966629, rel=1e-5)


def test_union_distinct_and_all(db):
    db.execute("CREATE TABLE more (id INT, region VARCHAR, amount DOUBLE, qty INT, note VARCHAR)")
    db.execute("INSERT INTO more VALUES (1, 'EU', 10.0, 2, 'a'), (9, 'LATAM', 5.0, 1, 'z')")
    distinct = db.query(
        "SELECT region FROM sales UNION SELECT region FROM more ORDER BY region"
    ).rows
    assert distinct == [["APJ"], ["EU"], ["LATAM"], ["US"]]
    all_rows = db.query(
        "SELECT region FROM sales UNION ALL SELECT region FROM more"
    ).rows
    assert len(all_rows) == 7


def test_union_arity_mismatch_rejected(db):
    import pytest as _pytest

    from repro.errors import PlanError

    with _pytest.raises(PlanError):
        db.query("SELECT id, region FROM sales UNION SELECT id FROM sales")


def test_union_order_by_ordinal_and_limit(db):
    rows = db.query(
        "SELECT id FROM sales WHERE id <= 2 UNION ALL "
        "SELECT id FROM sales WHERE id >= 4 ORDER BY 1 DESC LIMIT 2"
    ).rows
    assert rows == [[5], [4]]


def test_union_positional_column_matching(db):
    # branch output names differ; matching is positional, names from branch 1
    result = db.query("SELECT id AS k FROM sales UNION SELECT qty FROM sales")
    assert result.columns == ["k"]
    assert sorted(r[0] for r in result.rows) == [1, 2, 3, 4, 5]
