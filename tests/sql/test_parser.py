"""Tests for the SQL parser."""

import datetime as dt

import pytest

from repro.errors import SqlSyntaxError
from repro.sql import ast
from repro.sql.parser import parse, parse_expression


def test_simple_select_shape():
    stmt = parse("SELECT a, b AS bee FROM t WHERE a > 1 ORDER BY bee DESC LIMIT 5 OFFSET 2")
    assert isinstance(stmt, ast.SelectStatement)
    assert [item.alias for item in stmt.items] == [None, "bee"]
    assert stmt.from_table.name == "t"
    assert stmt.limit == 5 and stmt.offset == 2
    assert stmt.order_by[0][1] is False


def test_star_and_qualified_star():
    stmt = parse("SELECT *, t.* FROM t")
    assert isinstance(stmt.items[0].expr, ast.Star)
    assert stmt.items[1].expr.table == "t"


def test_joins():
    stmt = parse(
        "SELECT 1 FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y CROSS JOIN d, e"
    )
    kinds = [j.kind for j in stmt.joins]
    assert kinds == ["inner", "left", "cross", "cross"]


def test_group_by_having():
    stmt = parse("SELECT x, COUNT(*) FROM t GROUP BY x HAVING COUNT(*) > 2")
    assert len(stmt.group_by) == 1
    assert stmt.having is not None


def test_subquery_in_from():
    stmt = parse("SELECT s.a FROM (SELECT a FROM t) s")
    assert stmt.from_table.subquery is not None
    assert stmt.from_table.alias == "s"


def test_expression_precedence():
    expr = parse_expression("1 + 2 * 3")
    assert str(expr) == "(1 + (2 * 3))"
    expr = parse_expression("NOT a = 1 AND b = 2 OR c = 3")
    assert str(expr) == "(((NOT (a = 1)) AND (b = 2)) OR (c = 3))"


def test_between_in_like_isnull():
    assert isinstance(parse_expression("a BETWEEN 1 AND 2"), ast.Between)
    in_list = parse_expression("a NOT IN (1, 2)")
    assert isinstance(in_list, ast.InList) and in_list.negated
    assert isinstance(parse_expression("a LIKE 'x%'"), ast.BinaryOp)
    null_check = parse_expression("a IS NOT NULL")
    assert isinstance(null_check, ast.IsNull) and null_check.negated


def test_case_expression():
    expr = parse_expression("CASE WHEN a > 1 THEN 'big' ELSE 'small' END")
    assert isinstance(expr, ast.CaseWhen)
    assert len(expr.branches) == 1


def test_date_and_timestamp_literals():
    assert parse_expression("DATE '2014-05-01'").value == dt.date(2014, 5, 1)
    assert parse_expression("TIMESTAMP '2014-05-01T10:00:00'").value == dt.datetime(2014, 5, 1, 10)


def test_function_calls_and_distinct():
    expr = parse_expression("COUNT(DISTINCT x)")
    assert expr.distinct
    star = parse_expression("COUNT(*)")
    assert isinstance(star.args[0], ast.Star)


def test_contains_predicate():
    expr = parse_expression("CONTAINS(body, 'fast database')")
    assert isinstance(expr, ast.FunctionCall)
    assert expr.name == "CONTAINS"


def test_insert_forms():
    stmt = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
    assert stmt.columns == ["a", "b"]
    assert len(stmt.rows) == 2
    sel = parse("INSERT INTO t SELECT a, b FROM s")
    assert sel.select is not None


def test_update_delete():
    stmt = parse("UPDATE t SET a = a + 1, b = 'x' WHERE a < 5")
    assert len(stmt.assignments) == 2
    stmt = parse("DELETE FROM t")
    assert stmt.where is None


def test_create_table_full():
    stmt = parse(
        "CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(20) NOT NULL, "
        "amount DECIMAL(10, 2) DEFAULT 0, PRIMARY KEY (id)) "
        "PARTITION BY HASH(id) PARTITIONS 4"
    )
    assert stmt.partition_kind == "hash"
    assert stmt.partition_count == 4
    assert stmt.columns[1].length == 20
    assert not stmt.columns[1].nullable
    assert stmt.columns[2].scale == 2


def test_create_range_partitioned():
    stmt = parse("CREATE TABLE t (y INT) PARTITION BY RANGE(y) BOUNDARIES (2013, 2015)")
    assert stmt.partition_kind == "range"
    assert stmt.partition_boundaries == [2013, 2015]


def test_create_variants():
    assert parse("CREATE ROW TABLE r (a INT)").store == "row"
    assert parse("CREATE FLEXIBLE TABLE f (a INT)").flexible
    assert parse("CREATE TABLE IF NOT EXISTS t (a INT)").if_not_exists


def test_drop_and_merge():
    assert parse("DROP TABLE IF EXISTS t").if_exists
    assert parse("MERGE DELTA OF t").table == "t"


def test_transaction_statements():
    assert parse("BEGIN").action == "begin"
    assert parse("COMMIT WORK").action == "commit"
    assert parse("ROLLBACK;").action == "rollback"


def test_negative_number_literal_folds():
    assert parse_expression("-5").value == -5


def test_errors():
    with pytest.raises(SqlSyntaxError):
        parse("SELECT FROM")
    with pytest.raises(SqlSyntaxError):
        parse("SELECT 1 extra garbage ,")
    with pytest.raises(SqlSyntaxError):
        parse("SELECT (SELECT 1)")
    with pytest.raises(SqlSyntaxError):
        parse_expression("a NOT = 1")
