"""Tests for the SQL tokenizer."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql.lexer import tokenize


def kinds(sql):
    return [(t.kind, t.value) for t in tokenize(sql) if t.kind != "EOF"]


def test_keywords_and_identifiers():
    assert kinds("SELECT foo") == [("KEYWORD", "SELECT"), ("IDENT", "foo")]
    assert kinds("select Foo") == [("KEYWORD", "SELECT"), ("IDENT", "Foo")]


def test_numbers():
    assert kinds("1 2.5 1e3 1.5E-2") == [
        ("NUMBER", "1"), ("NUMBER", "2.5"), ("NUMBER", "1e3"), ("NUMBER", "1.5E-2"),
    ]


def test_strings_with_escapes():
    assert kinds("'it''s'") == [("STRING", "it's")]
    with pytest.raises(SqlSyntaxError):
        tokenize("'open")


def test_quoted_identifiers():
    assert kinds('"Weird Name"') == [("IDENT", "Weird Name")]


def test_two_char_operators():
    assert [v for _k, v in kinds("a <= b <> c || d")] == ["a", "<=", "b", "<>", "c", "||", "d"]


def test_comments_are_skipped():
    assert kinds("SELECT 1 -- trailing\n + 2 /* block */ ") == [
        ("KEYWORD", "SELECT"), ("NUMBER", "1"), ("PUNCT", "+"), ("NUMBER", "2"),
    ]
    with pytest.raises(SqlSyntaxError):
        tokenize("/* open")


def test_unexpected_character():
    with pytest.raises(SqlSyntaxError):
        tokenize("SELECT ~")
