"""Cardinality feedback survives restarts: autosave at savepoint, autoload at open."""

from __future__ import annotations

from repro.core.database import Database


def _warm(database: Database) -> None:
    database.execute("CREATE TABLE t (amount INT)")
    database.execute("INSERT INTO t VALUES (1), (5), (10), (50)")
    database.query("SELECT amount FROM t WHERE amount > 3")


def test_feedback_round_trips_across_restart(tmp_path):
    database = Database(data_dir=tmp_path)
    _warm(database)
    observed = database.feedback.as_dict()["observed"]
    assert observed, "the warm-up query should record scan cardinalities"
    database.savepoint()
    assert (tmp_path / "feedback.json").exists()
    database.persistence.close()

    recovered = Database(data_dir=tmp_path)
    for signature, count in observed.items():
        assert recovered.feedback.observed(signature) == count


def test_physical_savepoint_also_persists_feedback(tmp_path):
    database = Database(data_dir=tmp_path)
    _warm(database)
    database.physical_savepoint()
    assert (tmp_path / "feedback.json").exists()


def test_persist_feedback_opt_out(tmp_path):
    database = Database(data_dir=tmp_path, persist_feedback=False)
    _warm(database)
    database.savepoint()
    assert not (tmp_path / "feedback.json").exists()
    database.persistence.close()

    # an opted-out restart starts cold even when a store file exists
    Database(data_dir=tmp_path).savepoint()
    assert (tmp_path / "feedback.json").exists()
    cold = Database(data_dir=tmp_path, persist_feedback=False)
    assert cold.feedback.as_dict()["observed"] == {}


def test_in_memory_database_never_touches_disk():
    database = Database()
    assert database._feedback_path is None
