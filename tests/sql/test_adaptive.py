"""Adaptive execution: mid-query re-optimization and feedback-aware plans.

End-to-end coverage of the loop described in docs/OPTIMIZER.md: a cold
plan whose estimate is off by more than 10x aborts mid-query with a
:class:`~repro.sql.feedback.ReplanSignal`, the database re-plans with the
just-recorded actuals and resumes (memoised scans are not re-read), and
the next execution of the same shape needs no re-optimization because the
feedback store now knows the real cardinalities.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.database import Database
from repro.errors import BudgetExceededError
from repro.qos import QueryBudget
from repro.sql.feedback import ReplanSignal
from repro.sql.parser import parse
from repro.sql.planner import plan_select
from repro.sql.volcano import execute_volcano

#: a 2-conjunct equality predicate gets static selectivity 0.15 * 0.15,
#: so a table where every row matches blows the estimate by ~44x
BLOWOUT_SQL = "SELECT COUNT(*) FROM skewed WHERE a = 1 AND b = 2"


def skewed_db(rows: int = 100) -> Database:
    db = Database()
    db.execute("CREATE TABLE skewed (id INT, a INT, b INT)")
    db.execute(
        "INSERT INTO skewed VALUES " + ", ".join(f"({i}, 1, 2)" for i in range(rows))
    )
    return db


class TestMidQueryReoptimization:
    def test_cold_blowout_replans_once_and_answers_correctly(self):
        db = skewed_db()
        result = db.execute(BLOWOUT_SQL)
        assert result.scalar() == 100
        assert result.reoptimizations == 1

    def test_warm_execution_needs_no_replan(self):
        db = skewed_db()
        db.execute(BLOWOUT_SQL)  # records actual=100 for the scan signature
        warm = db.execute("SELECT COUNT(*) FROM skewed WHERE a = 9 AND b = 9")
        assert warm.scalar() == 0
        assert warm.reoptimizations == 0  # estimate now observed, not static

    def test_adaptive_planning_can_be_disabled(self):
        db = skewed_db()
        db.adaptive_planning = False
        result = db.execute(BLOWOUT_SQL)
        assert result.scalar() == 100
        assert result.reoptimizations == 0

    def test_replans_are_bounded_by_max_reoptimizations(self):
        db = skewed_db()
        db.max_reoptimizations = 0
        result = db.execute(BLOWOUT_SQL)
        assert result.scalar() == 100
        assert result.reoptimizations == 0

    def test_completed_scans_are_reused_across_the_replan(self):
        db = skewed_db()
        registry, _ = obs.enable()
        result = db.execute(BLOWOUT_SQL)
        assert result.reoptimizations == 1
        # the aborted attempt's scan is memoised on the context and the
        # re-planned attempt resumes from it instead of re-reading
        assert registry.counter("sql.executor.scans_reused").value >= 1

    def test_replan_counters_are_reported(self):
        db = skewed_db()
        registry, _ = obs.enable()
        db.execute(BLOWOUT_SQL)
        assert registry.counter("sql.reopt.triggered").value == 1
        assert registry.counter("sql.reopt.replans").value == 1

    def test_join_blowout_triggers_on_the_volcano_engine(self):
        db = skewed_db()
        db.execute("CREATE TABLE tiny (k INT)")
        db.execute("INSERT INTO tiny VALUES (1), (2)")
        plan = plan_select(
            parse(
                "SELECT COUNT(*) FROM tiny JOIN skewed ON tiny.k = skewed.a "
                "WHERE skewed.a = 1 AND skewed.b = 2"
            ),
            db.catalog,
            feedback=db.feedback,
        )
        context = db._context(None, None)
        context.feedback = db.feedback
        context.replans_remaining = 1
        with pytest.raises(ReplanSignal):
            execute_volcano(plan, context)
        # the signal recorded the actual count into the store first
        assert any(
            value == pytest.approx(100.0)
            for value in db.feedback.as_dict()["observed"].values()
        )


class TestFeedbackDrivenReordering:
    def _two_table_db(self) -> Database:
        db = Database()
        db.execute("CREATE TABLE big (k INT, v INT)")
        db.execute("CREATE TABLE small (k INT, tag VARCHAR)")
        db.execute(
            "INSERT INTO big VALUES "
            + ", ".join(f"({i % 20}, {i})" for i in range(400))
        )
        # every small row matches the predicate, but the *static* planner
        # only sees 40 rows x 0.15 selectivity; feedback learns 40
        db.execute(
            "INSERT INTO small VALUES " + ", ".join(f"({i % 20}, 'x')" for i in range(40))
        )
        return db

    def test_observed_cardinalities_flip_the_join_order(self):
        db = self._two_table_db()
        sql = (
            "SELECT COUNT(*) FROM big JOIN small ON big.k = small.k "
            "WHERE small.tag = 'x'"
        )
        registry, _ = obs.enable()
        cold = db.execute(sql)
        warm = db.execute(sql)  # planned again with observed cardinalities
        assert cold.scalar() == warm.scalar() == 800
        assert registry.counter("sql.planner.reorders").value >= 1

    def test_reordering_never_changes_answers(self):
        db = self._two_table_db()
        sql = (
            "SELECT big.v, small.tag FROM big JOIN small ON big.k = small.k "
            "WHERE small.tag = 'x' AND big.v < 100 ORDER BY big.v"
        )
        first = db.execute(sql).rows
        again = db.execute(sql).rows
        assert first == again and len(first) > 0


class TestScanMemoCorrectness:
    """The per-query scan memo must never conflate distinct scans.

    Its key includes the bound literal values and the column subset on
    top of the literal-stripped signature — a self-join's two sides share
    a predicate *shape* but not (necessarily) constants or columns, and
    serving one side's batch for the other is a wrong-results bug.
    """

    def _db(self) -> Database:
        db = Database()
        db.execute("CREATE TABLE t (id INT, x INT, y VARCHAR)")
        db.execute(
            "INSERT INTO t VALUES "
            + ", ".join(f"({i}, {i % 3}, 'v{i}')" for i in range(30))
        )
        return db

    def test_self_join_with_different_literals(self):
        # x is a function of id, so no row has both x = 1 and x = 2
        db = self._db()
        result = db.execute(
            "SELECT a.id, b.id FROM t a JOIN t b ON a.id = b.id "
            "WHERE a.x = 1 AND b.x = 2"
        )
        assert result.rows == []

    def test_self_join_with_equal_literals_still_shares(self):
        db = self._db()
        result = db.execute(
            "SELECT COUNT(*) FROM t a JOIN t b ON a.id = b.id "
            "WHERE a.x = 1 AND b.x = 1"
        )
        assert result.scalar() == 10  # ids 1, 4, ..., 28

    def test_self_join_with_different_column_subsets(self):
        # both scans share shape and constants but need different columns;
        # serving the (id, x) batch for the (id, x, y) side would lose y
        db = self._db()
        result = db.execute(
            "SELECT a.x, b.y FROM t a JOIN t b ON a.id = b.id "
            "WHERE a.x >= 0 AND b.x >= 0 ORDER BY a.id LIMIT 2"
        )
        assert result.rows == [[0, "v0"], [1, "v1"]]


class TestFeedbackHygiene:
    """Only true, complete row counts may enter the feedback store."""

    def _scan_samples(self, db: Database) -> dict[str, int]:
        data = db.feedback.as_dict()
        return {
            signature: count
            for signature, count in data["samples"].items()
            if signature.startswith("scan:skewed|")
        }

    def test_memoised_scan_does_not_double_record(self):
        db = skewed_db()
        result = db.execute(BLOWOUT_SQL)
        assert result.reoptimizations == 1
        # the re-planned attempt served the scan from the memo; recording
        # it again would double-weight the EWMA and could re-trigger the
        # very blow-out that caused the re-plan
        samples = self._scan_samples(db)
        assert samples and all(count == 1 for count in samples.values()), samples

    def test_truncated_scan_is_not_recorded(self):
        db = skewed_db()
        result = db.execute(BLOWOUT_SQL, budget=QueryBudget(soft_rows=5))
        assert result.degraded
        # the governor cut the scan short: 5 rows is a degraded answer,
        # not the table's cardinality — recording it would bias future
        # estimates low and churn plan-cache versions
        assert self._scan_samples(db) == {}


class TestGovernorInterplay:
    def test_degraded_governor_suppresses_replanning(self):
        db = skewed_db()
        result = db.execute(BLOWOUT_SQL, budget=QueryBudget(soft_rows=5))
        assert result.degraded
        # a truncated answer must not be thrown away for a better plan
        assert result.reoptimizations == 0

    def test_replanning_time_is_charged_against_the_budget(self):
        db = skewed_db()
        registry, _ = obs.enable()
        result = db.execute(BLOWOUT_SQL, budget=QueryBudget(hard_rows=10_000))
        assert result.reoptimizations == 1
        assert registry.counter("qos.planning_charges").value == 1

    def test_replan_charge_can_itself_exceed_a_hard_budget(self):
        db = skewed_db()
        with pytest.raises(BudgetExceededError):
            db.execute(BLOWOUT_SQL, budget=QueryBudget(hard_seconds=0.004))

    def test_within_budget_adaptive_query_still_degrades_softly(self):
        db = skewed_db()
        result = db.execute(
            BLOWOUT_SQL, budget=QueryBudget(soft_rows=5, hard_rows=10_000)
        )
        assert result.degraded and "rows" in result.degraded_reasons
