"""Tests for the scalar function library."""

import datetime as dt

import pytest

from repro.core.database import Database
from repro.errors import ExpressionError


@pytest.fixture
def db():
    return Database()


def one(db, expression, **params):
    return db.query(f"SELECT {expression} AS v", **params).scalar()


def test_string_functions(db):
    assert one(db, "UPPER('abc')") == "ABC"
    assert one(db, "LOWER('AbC')") == "abc"
    assert one(db, "LENGTH('hello')") == 5
    assert one(db, "SUBSTR('hello', 2, 3)") == "ell"
    assert one(db, "SUBSTR('hello', 3)") == "llo"
    assert one(db, "TRIM('  x ')") == "x"
    assert one(db, "REPLACE('aXa', 'X', 'b')") == "aba"
    assert one(db, "CONCAT('a', 'b')") == "ab"
    assert one(db, "INSTR('hello', 'll')") == 3


def test_math_functions(db):
    assert one(db, "ABS(-4)") == 4
    assert one(db, "ROUND(3.14159, 2)") == 3.14
    assert one(db, "FLOOR(2.9)") == 2
    assert one(db, "CEIL(2.1)") == 3
    assert one(db, "SQRT(16)") == 4.0
    assert one(db, "POWER(2, 10)") == 1024.0
    assert one(db, "MOD(10, 3)") == 1
    assert one(db, "SIGN(-9)") == -1


def test_conditional_functions(db):
    assert one(db, "COALESCE(NULL, NULL, 5)") == 5
    assert one(db, "IFNULL(NULL, 'x')") == "x"
    assert one(db, "NULLIF(3, 3)") is None
    assert one(db, "LEAST(3, 1, 2)") == 1
    assert one(db, "GREATEST(3, 1, 2)") == 3


def test_null_propagation(db):
    assert one(db, "UPPER(NULL)") is None
    assert one(db, "ABS(NULL)") is None


def test_temporal_functions(db):
    assert one(db, "YEAR(DATE '2014-07-03')") == 2014
    assert one(db, "MONTH(DATE '2014-07-03')") == 7
    assert one(db, "DAY(DATE '2014-07-03')") == 3
    assert one(db, "ADD_DAYS(DATE '2014-01-30', 3)") == dt.date(2014, 2, 2)
    assert one(db, "DAYS_BETWEEN(DATE '2014-01-01', DATE '2014-01-31')") == 30
    pinned = one(db, "CURRENT_DATE()", current_date=dt.date(2015, 1, 1))
    assert pinned == dt.date(2015, 1, 1)


def test_conversion_functions(db):
    assert one(db, "TO_DOUBLE('2.5')") == 2.5
    assert one(db, "TO_INT('7')") == 7
    assert one(db, "TO_VARCHAR(12)") == "12"
    assert one(db, "TO_DATE('2014-02-03')") == dt.date(2014, 2, 3)


def test_currency_conversion_from_parameters(db):
    rates = {("USD", "EUR"): 0.8}
    assert one(db, "CONVERT_CURRENCY(100, 'USD', 'EUR')", currency_rates=rates) == 80.0
    # inverse rate derived automatically
    assert one(db, "CONVERT_CURRENCY(80, 'EUR', 'USD')", currency_rates=rates) == 100.0
    assert one(db, "CONVERT_CURRENCY(5, 'EUR', 'EUR')") == 5.0


def test_currency_conversion_from_catalog_table(db):
    db.execute("CREATE TABLE currency_rates (from_currency VARCHAR, to_currency VARCHAR, rate DOUBLE)")
    db.execute("INSERT INTO currency_rates VALUES ('GBP', 'EUR', 1.25)")
    assert one(db, "CONVERT_CURRENCY(4, 'GBP', 'EUR')") == 5.0


def test_currency_conversion_missing_rate(db):
    with pytest.raises(ExpressionError):
        one(db, "CONVERT_CURRENCY(1, 'XXX', 'YYY')")


def test_unit_conversion(db):
    factors = {("kg", "g"): 1000.0}
    assert one(db, "CONVERT_UNIT(2, 'kg', 'g')", unit_factors=factors) == 2000.0
    assert one(db, "CONVERT_UNIT(500, 'g', 'kg')", unit_factors=factors) == 0.5


def test_geo_functions(db):
    assert one(db, "ST_DISTANCE(ST_POINT(0, 0), ST_POINT(3, 4))") == 5.0
    assert one(db, "ST_WITHIN_DISTANCE(ST_POINT(0,0), ST_POINT(1,1), 2)") is True
    assert one(db, "ST_CONTAINS('POLYGON ((0 0, 2 0, 2 2, 0 2))', ST_POINT(1, 1))") is True
    assert one(db, "ST_AREA('POLYGON ((0 0, 2 0, 2 2, 0 2))')") == 4.0


def test_document_functions(db):
    doc = '{"a": {"b": [1, 2]}}'
    assert one(db, f"DOC_EXTRACT('{doc.replace(chr(39), chr(39)*2)}', '$.a.b[1]')") == 2


def test_unknown_function(db):
    with pytest.raises(ExpressionError):
        one(db, "NO_SUCH_FN(1)")


def test_registering_custom_function(db):
    db.functions.register("TWICE", lambda x: x * 2)
    assert one(db, "TWICE(21)") == 42
