"""Plan cache correctness: fingerprints, binding, invalidation, eviction.

The cache (:mod:`repro.sql.plancache`, docs/OPTIMIZER.md) keys plans on a
query-*shape* fingerprint with literals stripped, so repeated traffic that
differs only in constants skips planning. These tests pin the contract:
a hit must produce exactly the rows a fresh plan would, and every event
that could make a cached plan wrong (DDL, delta merge, significant
cardinality drift, capacity pressure) must turn the next lookup into a
miss.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.core.database import Database
from repro.sql import plancache
from repro.sql.feedback import CardinalityFeedback
from repro.sql.parser import parse


class TestFingerprint:
    def test_literals_do_not_change_the_shape(self):
        a = plancache.fingerprint(parse("SELECT id FROM t WHERE amount > 100"))
        b = plancache.fingerprint(parse("SELECT id FROM t WHERE amount > 250"))
        assert a == b

    def test_structure_changes_the_shape(self):
        base = plancache.fingerprint(parse("SELECT id FROM t WHERE a = 1"))
        assert base != plancache.fingerprint(parse("SELECT id FROM t WHERE a > 1"))
        assert base != plancache.fingerprint(parse("SELECT id FROM u WHERE a = 1"))
        assert base != plancache.fingerprint(parse("SELECT id, a FROM t WHERE a = 1"))

    def test_order_by_ordinals_stay_verbatim(self):
        # ORDER BY 1 and ORDER BY 2 are different plans, not different literals
        assert plancache.fingerprint(
            parse("SELECT a, b FROM t ORDER BY 1")
        ) != plancache.fingerprint(parse("SELECT a, b FROM t ORDER BY 2"))

    def test_limit_and_offset_stay_verbatim(self):
        assert plancache.fingerprint(
            parse("SELECT a FROM t LIMIT 5")
        ) != plancache.fingerprint(parse("SELECT a FROM t LIMIT 10"))

    def test_union_shape_distinguishes_all(self):
        assert plancache.fingerprint(
            parse("SELECT a FROM t UNION SELECT a FROM u")
        ) != plancache.fingerprint(parse("SELECT a FROM t UNION ALL SELECT a FROM u"))

    def test_collect_literals_skips_ordinals(self):
        statement = parse("SELECT a, b FROM t WHERE a = 7 ORDER BY 2")
        values = [slot.value for slot in plancache.collect_literals(statement)]
        assert values == [7]

    def test_boolean_order_keys_are_literals_not_ordinals(self):
        # bool is a subclass of int, but ORDER BY TRUE is a value literal:
        # it must be wildcarded in the fingerprint and stay patchable
        assert plancache.fingerprint(
            parse("SELECT a FROM t ORDER BY TRUE")
        ) == plancache.fingerprint(parse("SELECT a FROM t ORDER BY FALSE"))
        values = [
            slot.value
            for slot in plancache.collect_literals(parse("SELECT a FROM t ORDER BY TRUE"))
        ]
        assert values == [True]

    def test_instantiate_rejects_slot_count_mismatch(self):
        cached = parse("SELECT a FROM t WHERE a = 1")
        entry = plancache.PlanEntry(
            plan=None, slots=plancache.collect_literals(cached), tables=frozenset()
        )
        assert (
            plancache.instantiate(entry, parse("SELECT a FROM t WHERE a = 1 AND b = 2"))
            is None
        )

    def test_instantiate_never_mutates_the_cached_entry(self):
        from repro.sql.planner import plan_select
        from repro.core.database import Database

        db = Database()
        db.execute("CREATE TABLE t (a INT)")
        cached = parse("SELECT a FROM t WHERE a = 1")
        plan = plan_select(cached, db.catalog)
        entry = plancache.PlanEntry(
            plan=plan, slots=plancache.collect_literals(cached), tables=frozenset({"t"})
        )
        bound = plancache.instantiate(entry, parse("SELECT a FROM t WHERE a = 99"))
        assert bound is not None and bound is not plan
        assert [slot.value for slot in entry.slots] == [1]  # original untouched


def traffic_db() -> Database:
    db = Database()
    db.execute("CREATE TABLE t (id INT, grp VARCHAR, amount DOUBLE)")
    db.execute(
        "INSERT INTO t VALUES "
        + ", ".join(f"({i}, 'g{i % 4}', {float(i)})" for i in range(40))
    )
    db.plan_cache.clear()  # the INSERT warm-up planned nothing, but be explicit
    return db


class TestCacheBehaviour:
    def test_shape_lifecycle_cold_then_stale_then_hit(self):
        """A shape's lifecycle: cold miss, one feedback-stale re-plan, hits.

        The cold execution's own observations are the table's *first*
        feedback samples, which bumps its version — so the second
        execution deliberately re-plans (that is where feedback-aware
        ordering kicks in) and from the third on the shape is hit-hot.
        """
        db = traffic_db()
        sql = "SELECT COUNT(*) FROM t WHERE grp = '{}'"
        assert db.execute(sql.format("g1")).scalar() == 10
        assert db.execute(sql.format("g2")).scalar() == 10
        assert db.execute(sql.format("g3")).scalar() == 10
        stats = db.plan_cache.stats()
        assert stats["hits"] == 1 and stats["stale"] == 1 and stats["misses"] == 2

    def test_hit_patches_literals_into_the_cached_plan(self):
        db = traffic_db()
        sql = "SELECT COUNT(*) FROM t WHERE id < {}"
        db.execute(sql.format(10))  # cold
        db.execute(sql.format(10))  # absorbs the first-sample staleness
        assert db.execute(sql.format(25)).scalar() == 25  # hit, new literal
        assert db.execute(sql.format(3)).scalar() == 3
        assert db.plan_cache.stats()["hits"] >= 2

    def test_hit_returns_exactly_what_a_fresh_plan_would(self):
        db = traffic_db()
        sql = "SELECT id, amount FROM t WHERE grp = 'g1' AND amount > {} ORDER BY id"
        db.execute(sql.format(0.0))  # warm the entry
        cached = db.execute(sql.format(20.0)).rows
        db.plan_cache_enabled = False
        fresh = db.execute(sql.format(20.0)).rows
        assert cached == fresh and cached  # identical and non-empty

    def test_different_shape_misses(self):
        db = traffic_db()
        db.execute("SELECT COUNT(*) FROM t WHERE id < 10")
        db.execute("SELECT COUNT(*) FROM t WHERE id <= 10")
        assert db.plan_cache.stats()["hits"] == 0

    def test_ddl_invalidates(self):
        db = traffic_db()
        db.execute("SELECT COUNT(*) FROM t WHERE id < 10")
        db.execute("CREATE TABLE other (x INT)")  # unrelated DDL: entry survives
        assert len(db.plan_cache) == 1
        db.execute("DROP TABLE t")
        assert len(db.plan_cache) == 0
        db.execute("CREATE TABLE t (id INT, grp VARCHAR, amount DOUBLE)")
        db.execute("SELECT COUNT(*) FROM t WHERE id < 10")
        assert db.plan_cache.stats()["hits"] == 0
        assert db.plan_cache.stats()["invalidations"] >= 1

    def test_delta_merge_invalidates(self):
        db = traffic_db()
        db.execute("SELECT COUNT(*) FROM t WHERE id < 10")
        assert len(db.plan_cache) == 1
        db.execute("MERGE DELTA OF t")
        assert len(db.plan_cache) == 0
        db.execute("SELECT COUNT(*) FROM t WHERE id < 10")
        assert db.plan_cache.stats()["hits"] == 0

    def test_capacity_is_bounded_with_lru_eviction(self):
        db = traffic_db()
        db.plan_cache = plancache.PlanCache(capacity=2)
        db.execute("SELECT COUNT(*) FROM t")
        db.execute("SELECT MIN(id) FROM t")
        db.execute("SELECT MAX(id) FROM t")  # evicts the COUNT(*) entry
        assert len(db.plan_cache) == 2
        assert db.plan_cache.stats()["evictions"] == 1
        db.execute("SELECT MIN(id) FROM t")  # survivor still hits
        assert db.plan_cache.stats()["hits"] == 1

    def test_significant_feedback_drift_goes_stale(self):
        cache = plancache.PlanCache()
        feedback = CardinalityFeedback()
        feedback.record("scan:t|", 100)
        entry = plancache.PlanEntry(
            plan=None,
            slots=[],
            tables=frozenset({"t"}),
            versions=feedback.versions({"t"}),
        )
        cache.put("k", entry)
        assert cache.get("k", feedback) is entry  # steady state: hit
        feedback.record("scan:t|", 100)  # no drift, version unchanged
        assert cache.get("k", feedback) is entry
        feedback.record("scan:t|", 100_000)  # significant drift bumps the version
        assert cache.get("k", feedback) is None
        assert cache.stats()["stale"] == 1


class TestSeededDeterminism:
    """A cached plan must replay byte-identical results under seeded traffic.

    Composes with the chaos test matrix: ``REPRO_CHAOS_SEED`` shifts the
    literal traffic, and for every seed the cache-on database must agree
    row-for-row with a cache-off database executing the same statements.
    """

    SEED = 97 + int(os.environ.get("REPRO_CHAOS_SEED", "0"))

    SHAPES = [
        "SELECT COUNT(*) FROM t WHERE id < {}",
        "SELECT grp, SUM(amount) FROM t WHERE amount > {} GROUP BY grp ORDER BY grp",
        "SELECT id FROM t WHERE id BETWEEN {} AND {} ORDER BY id",
    ]

    def _run(self, cached: bool) -> list[list[list[object]]]:
        db = traffic_db()
        db.plan_cache_enabled = cached
        rng = random.Random(self.SEED)
        results = []
        for _ in range(25):
            shape = rng.choice(self.SHAPES)
            literals = [rng.randint(0, 40) for _ in range(shape.count("{}"))]
            if "BETWEEN" in shape:
                literals = sorted(literals)
            results.append(db.execute(shape.format(*literals)).rows)
        if cached:
            stats = db.plan_cache.stats()
            # 3 shapes over 25 statements: mostly hits once each shape
            # absorbs its cold miss + first-sample staleness (drifty
            # literals may cost a few extra stale re-plans)
            assert stats["hits"] >= 10
        return results

    def test_cache_on_equals_cache_off_for_seeded_traffic(self):
        assert self._run(cached=True) == self._run(cached=False)

    def test_replay_is_deterministic(self):
        assert self._run(cached=True) == self._run(cached=True)


class TestConcurrency:
    """Concurrent executions of one shape must not share bound constants.

    Each hit binds a private copy of the cached plan (``instantiate``),
    so one thread's literals can never leak into another thread's
    execution; the cache's own bookkeeping is lock-guarded.
    """

    def test_concurrent_same_shape_different_literals(self):
        import threading

        db = traffic_db()
        sql = "SELECT COUNT(*) FROM t WHERE id < {}"
        db.execute(sql.format(1))  # cold miss
        db.execute(sql.format(2))  # absorbs first-sample staleness
        failures: list[str] = []
        barrier = threading.Barrier(4)

        def worker(bound: int) -> None:
            barrier.wait()
            for _ in range(25):
                got = db.execute(sql.format(bound)).scalar()
                if got != bound:
                    failures.append(f"WHERE id < {bound} returned {got}")

        threads = [
            threading.Thread(target=worker, args=(bound,)) for bound in (5, 17, 29, 38)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures, failures
