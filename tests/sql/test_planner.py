"""Tests for the logical planner and its rewrites."""

import pytest

from repro.core.database import Database
from repro.errors import PlanError
from repro.sql.parser import parse
from repro.sql.planner import (
    AggregateNode,
    FilterNode,
    JoinNode,
    ProjectNode,
    ScanNode,
    explain,
    plan_select,
)


@pytest.fixture
def catalog():
    database = Database()
    database.execute("CREATE TABLE t (a INT, b INT, c VARCHAR)")
    database.execute("CREATE TABLE s (a INT, d VARCHAR)")
    return database.catalog


def plan_of(sql, catalog):
    return plan_select(parse(sql), catalog)


def find(node, node_type):
    found = []

    def visit(current):
        if isinstance(current, node_type):
            found.append(current)
        for child in current.children():
            visit(child)

    visit(node)
    return found


def test_single_table_predicate_pushed_into_scan(catalog):
    plan = plan_of("SELECT a FROM t WHERE b > 1 AND c = 'x'", catalog)
    scans = find(plan.root, ScanNode)
    assert len(scans) == 1
    assert scans[0].predicate is not None
    assert not find(plan.root, FilterNode)


def test_join_predicates_split_per_side(catalog):
    plan = plan_of(
        "SELECT t.a FROM t JOIN s ON t.a = s.a WHERE t.b > 1 AND s.d = 'x'",
        catalog,
    )
    scans = {scan.alias: scan for scan in find(plan.root, ScanNode)}
    assert scans["t"].predicate is not None
    assert scans["s"].predicate is not None
    joins = find(plan.root, JoinNode)
    assert len(joins) == 1
    assert len(joins[0].equi) == 1


def test_implicit_join_upgraded_from_cross(catalog):
    plan = plan_of("SELECT t.a FROM t, s WHERE t.a = s.a", catalog)
    joins = find(plan.root, JoinNode)
    assert joins[0].kind == "inner"
    assert len(joins[0].equi) == 1


def test_aggregate_extraction_and_having(catalog):
    plan = plan_of(
        "SELECT c, SUM(a) AS s FROM t GROUP BY c HAVING SUM(a) > 10 ORDER BY s",
        catalog,
    )
    aggregates = find(plan.root, AggregateNode)
    assert len(aggregates) == 1
    assert len(aggregates[0].aggregates) == 1  # SUM(a) shared by item/having
    filters = find(plan.root, FilterNode)
    assert len(filters) == 1  # the HAVING


def test_expression_over_aggregate(catalog):
    plan = plan_of("SELECT SUM(a) / COUNT(*) AS avg_a FROM t", catalog)
    aggregate = find(plan.root, AggregateNode)[0]
    assert len(aggregate.aggregates) == 2
    assert plan.output_names == ["avg_a"]


def test_order_by_ordinal_and_hidden_key(catalog):
    plan = plan_of("SELECT a, b FROM t ORDER BY 2", catalog)
    project = find(plan.root, ProjectNode)[0]
    assert project.hidden == []

    plan = plan_of("SELECT a FROM t ORDER BY c", catalog)
    project = find(plan.root, ProjectNode)[0]
    assert len(project.hidden) == 1
    assert plan.output_names == ["a"]


def test_duplicate_output_names_are_disambiguated(catalog):
    plan = plan_of("SELECT a, a FROM t", catalog)
    assert plan.output_names == ["a", "a_2"]


def test_star_expansion_order(catalog):
    plan = plan_of("SELECT * FROM t JOIN s ON t.a = s.a", catalog)
    assert plan.output_names == ["a", "b", "c", "a_2", "d"]


def test_having_without_group_rejected(catalog):
    with pytest.raises(PlanError):
        plan_of("SELECT a FROM t HAVING a > 1", catalog)


def test_order_by_ordinal_out_of_range(catalog):
    with pytest.raises(PlanError):
        plan_of("SELECT a FROM t ORDER BY 5", catalog)


def test_ambiguous_column_rejected(catalog):
    with pytest.raises(PlanError):
        plan_of("SELECT 1 FROM t JOIN s ON t.a = s.a WHERE a > 1", catalog)


def test_explain_renders_tree(catalog):
    plan = plan_of("SELECT c, SUM(a) FROM t WHERE b > 0 GROUP BY c", catalog)
    rendered = explain(plan)
    assert "Scan t" in rendered
    assert "Aggregate" in rendered
    assert "Project" in rendered
