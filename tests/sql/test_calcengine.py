"""Tests for the Calc Engine data-flow graphs."""

import pytest

from repro.core.database import Database
from repro.engines.ml.rops import make_r_adapter
from repro.errors import PlanError
from repro.sql.calcengine import CalcScenario


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE sales (region VARCHAR, x DOUBLE, y DOUBLE)")
    rows = ", ".join(
        f"('{'EU' if i % 2 == 0 else 'US'}', {float(i)}, {2.0 * i + 1.0})"
        for i in range(40)
    )
    database.execute(f"INSERT INTO sales VALUES {rows}")
    return database


def test_table_source_filter_project(db):
    scenario = CalcScenario("s", db)
    scenario.table_source("src", "sales")
    scenario.filter("eu", "src", "region", "=", "EU")
    scenario.project("out", "eu", ["x", "y"])
    columns, rows = scenario.execute("out")
    assert columns == ["x", "y"]
    assert len(rows) == 20


def test_python_operator_transforms_and_drops(db):
    scenario = CalcScenario("s", db)
    scenario.table_source("src", "sales")
    scenario.python_operator(
        "enrich",
        "src",
        lambda row: {"region": row["region"], "ratio": row["y"] / (row["x"] + 1)}
        if row["x"] > 0
        else None,
    )
    columns, rows = scenario.execute("enrich")
    assert columns == ["region", "ratio"]
    assert len(rows) == 39  # x == 0 dropped


def test_external_r_operator_in_dataflow(db):
    provider = make_r_adapter()
    scenario = CalcScenario("s", db)
    scenario.table_source("src", "sales", columns=["x", "y"])
    scenario.external_operator("lm", "src", provider, "lm")
    columns, rows = scenario.execute("lm")
    assert dict(rows)["slope"] == pytest.approx(2.0)
    assert provider.stats.rows_out == 40


def test_optimizer_embraces_filter_before_external_call(db):
    provider = make_r_adapter()
    scenario = CalcScenario("s", db)
    scenario.table_source("src", "sales", columns=["region", "x", "y"])
    scenario.filter("eu", "src", "region", "=", "EU")
    scenario.project("xy", "eu", ["x", "y"])
    scenario.external_operator("lm", "xy", provider, "lm")
    embraced = scenario.optimize()
    assert embraced == 1
    columns, rows = scenario.execute("lm")
    assert dict(rows)["slope"] == pytest.approx(2.0)
    # only the 20 qualifying rows were shipped to the external system
    assert provider.stats.rows_out == 20
    assert scenario.node_output_rows["src"] == 20


def test_optimizer_keeps_filter_when_source_is_shared(db):
    scenario = CalcScenario("s", db)
    scenario.table_source("src", "sales")
    scenario.filter("eu", "src", "region", "=", "EU")
    scenario.aggregate("all_agg", "src", [], [("count", None)])
    assert scenario.optimize() == 0  # src feeds all_agg unfiltered
    columns, rows = scenario.execute("all_agg")
    assert rows == [[40]]


def test_join_union_aggregate(db):
    db.execute("CREATE TABLE regions (code VARCHAR, continent VARCHAR)")
    db.execute("INSERT INTO regions VALUES ('EU', 'Europe'), ('US', 'America')")
    scenario = CalcScenario("s", db)
    scenario.table_source("sales_src", "sales")
    scenario.table_source("dim", "regions")
    scenario.join("joined", "sales_src", "dim", "region", "code")
    scenario.aggregate("agg", "joined", ["continent"], [("count", None), ("sum", "x")])
    columns, rows = scenario.execute("agg")
    assert columns == ["continent", "count", "sum_x"]
    assert rows == [["America", 20, sum(float(i) for i in range(1, 40, 2))],
                    ["Europe", 20, sum(float(i) for i in range(0, 40, 2))]]

    scenario.union("both", ["sales_src", "sales_src"])
    _cols, doubled = scenario.execute("both")
    assert len(doubled) == 80


def test_graph_validation(db):
    scenario = CalcScenario("s", db)
    scenario.table_source("src", "sales")
    with pytest.raises(PlanError):
        scenario.table_source("src", "sales")  # duplicate
    with pytest.raises(PlanError):
        scenario.filter("f", "ghost", "x", ">", 1)
    with pytest.raises(PlanError):
        scenario.filter("f", "src", "x", "~", 1)
    with pytest.raises(PlanError):
        scenario.union("u", ["src"])
    with pytest.raises(PlanError):
        scenario.execute("ghost")


def test_sql_source(db):
    scenario = CalcScenario("s", db)
    scenario.sql_source("top", "SELECT region, SUM(x) AS total FROM sales GROUP BY region")
    columns, rows = scenario.execute("top")
    assert columns == ["region", "total"]
    assert len(rows) == 2
