"""The three execution engines must produce identical results.

This is the correctness backbone of experiment E6: the compiled and the
tuple-at-a-time engines are only meaningful baselines if they agree with
the vectorised engine on every supported query shape.
"""

import math

import pytest

from repro.core.database import Database
from repro.sql.compiler import CompileError, compile_plan
from repro.sql.parser import parse
from repro.sql.planner import plan_select
from repro.sql.volcano import execute_volcano


@pytest.fixture(scope="module")
def db():
    database = Database()
    database.execute(
        "CREATE TABLE li (id INT, qty INT, price DOUBLE, cust VARCHAR, region VARCHAR)"
    )
    import random

    rng = random.Random(9)
    rows = []
    for index in range(800):
        rows.append(
            f"({index}, {rng.randint(1, 9)}, {rng.random() * 100:.4f}, "
            f"'c{index % 17}', '{['EU', 'US', 'APJ'][index % 3]}')"
        )
    database.execute("INSERT INTO li VALUES " + ", ".join(rows))
    database.execute("INSERT INTO li VALUES (9999, 1, NULL, NULL, 'EU')")
    database.execute("CREATE TABLE cust (cid VARCHAR, tier VARCHAR)")
    database.execute(
        "INSERT INTO cust VALUES "
        + ", ".join(f"('c{i}', 'tier{i % 3}')" for i in range(17))
    )
    return database


QUERIES = [
    "SELECT region, COUNT(*) AS n, SUM(qty * price) AS rev FROM li "
    "WHERE price > 10 GROUP BY region ORDER BY region",
    "SELECT COUNT(*) FROM li",
    "SELECT id, price FROM li WHERE price BETWEEN 20 AND 30 ORDER BY id LIMIT 10",
    "SELECT region, AVG(price) AS a, MIN(qty) AS mn, MAX(qty) AS mx FROM li "
    "GROUP BY region ORDER BY region",
    "SELECT c.tier, SUM(l.price) AS s FROM li l JOIN cust c ON l.cust = c.cid "
    "GROUP BY c.tier ORDER BY c.tier",
    "SELECT DISTINCT region FROM li ORDER BY region",
    "SELECT id FROM li WHERE cust IN ('c1', 'c2') AND qty >= 5 ORDER BY id",
    "SELECT COUNT(*) FROM li WHERE price IS NULL",
    "SELECT region, COUNT(*) FROM li GROUP BY region HAVING COUNT(*) > 100 ORDER BY region",
    "SELECT l.id, c.tier FROM li l LEFT JOIN cust c ON l.cust = c.cid "
    "WHERE l.id >= 9999 ORDER BY l.id",
]


def normalise(rows):
    out = []
    for row in rows:
        canonical = []
        for value in row:
            if isinstance(value, float):
                if math.isnan(value):
                    canonical.append(None)
                else:
                    canonical.append(round(value, 6))
            else:
                canonical.append(value)
        out.append(canonical)
    return out


@pytest.mark.parametrize("sql", QUERIES)
def test_engines_agree(db, sql):
    plan = plan_select(parse(sql), db.catalog)
    vectorised = normalise(db.query(sql).rows)
    volcano = normalise(execute_volcano(plan, db._context(None, None)))
    assert volcano == vectorised
    try:
        compiled = compile_plan(plan, db._context(None, None))
    except CompileError:
        return  # plan shape outside the compiler subset: acceptable
    assert normalise(compiled.run(db._context(None, None))) == vectorised


def test_compiler_rejects_subqueries(db):
    plan = plan_select(
        parse("SELECT x.region FROM (SELECT region FROM li) x"), db.catalog
    )
    with pytest.raises(CompileError):
        compile_plan(plan, db._context(None, None))


def test_compiled_source_is_inspectable(db):
    plan = plan_select(parse("SELECT COUNT(*) FROM li WHERE qty > 3"), db.catalog)
    compiled = compile_plan(plan, db._context(None, None))
    assert "def _compiled" in compiled.source
    assert "continue" in compiled.source  # the inlined filter
