"""Direct unit tests for Batch and vectorised expression evaluation."""

import numpy as np
import pytest

from repro.errors import ColumnNotFoundError, ExpressionError
from repro.sql.context import ExecutionContext
from repro.sql.expressions import Batch, compare, evaluate, is_null_mask
from repro.sql.functions import FunctionRegistry
from repro.sql.parser import parse_expression


@pytest.fixture
def batch():
    return Batch(
        {
            "t.a": np.array([1.0, 2.0, np.nan, 4.0]),
            "t.b": np.array([10, 20, 30, 40], dtype=np.int64),
            "t.name": np.array(["x", None, "y", "x"], dtype=object),
        }
    )


@pytest.fixture
def context():
    return ExecutionContext(functions=FunctionRegistry())


def eval_text(text, batch, context):
    return evaluate(parse_expression(text), batch, context)


def test_resolution_qualified_and_suffix(batch):
    assert batch.resolve("a", "t") == "t.a"
    assert batch.resolve("a") == "t.a"
    with pytest.raises(ColumnNotFoundError):
        batch.resolve("ghost")
    other = batch.with_column("s.a", np.zeros(4))
    with pytest.raises(ExpressionError):
        other.resolve("a")


def test_filter_take_concat(batch):
    filtered = batch.filter(np.array([True, False, True, False]))
    assert len(filtered) == 2
    taken = batch.take(np.array([3, 0]))
    assert list(taken.column("b")) == [40, 10]
    merged = Batch.concat([filtered, taken])
    assert len(merged) == 4


def test_concat_promotes_dtypes():
    a = Batch({"x": np.array([1, 2], dtype=np.int64)})
    b = Batch({"x": np.array([1.5])})
    merged = Batch.concat([a, b])
    assert merged.column("x").dtype == np.float64


def test_rows_unbox_nan_to_none(batch):
    rows = batch.rows()
    assert rows[2][0] is None
    assert rows[0] == [1.0, 10, "x"]


def test_is_null_mask_all_representations():
    assert list(is_null_mask(np.array([1.0, np.nan]))) == [False, True]
    assert list(is_null_mask(np.array(["a", None], dtype=object))) == [False, True]
    assert list(is_null_mask(np.array([1, 2], dtype=np.int64))) == [False, False]


def test_arithmetic_with_nan_propagates(batch, context):
    result = eval_text("a + b", batch, context)
    assert result[0] == 11.0
    assert np.isnan(result[2])


def test_division_by_zero_yields_null(batch, context):
    result = eval_text("b / (b - 10)", batch, context)
    assert np.isnan(result[0])
    assert result[1] == 2.0


def test_comparison_nan_never_matches(batch, context):
    mask = eval_text("a > 0", batch, context)
    assert list(mask) == [True, True, False, True]
    mask = eval_text("a <> 1", batch, context)
    assert list(mask) == [False, True, False, True]


def test_object_comparisons(batch, context):
    mask = eval_text("name = 'x'", batch, context)
    assert list(mask) == [True, False, False, True]
    mask = eval_text("name >= 'x'", batch, context)
    assert list(mask) == [True, False, True, True]


def test_compare_mixed_numeric_object():
    left = np.array([1, 2], dtype=object)
    right = np.array([1.0, 3.0])
    assert list(compare(left, right, "=")) == [True, False]


def test_and_short_circuits_right_side(batch, context):
    # the right side would raise if evaluated on all rows (unknown column);
    # AND must skip it when the left side is all-false
    expr = parse_expression("a > 100 AND ghost = 1")
    result = evaluate(expr, batch, context)
    assert not result.any()


def test_in_list_and_negation(batch, context):
    assert list(eval_text("b IN (10, 40)", batch, context)) == [True, False, False, True]
    assert list(eval_text("name NOT IN ('x')", batch, context)) == [False, False, True, False]


def test_between_negated_excludes_nulls(batch, context):
    result = eval_text("a NOT BETWEEN 1 AND 2", batch, context)
    assert list(result) == [False, False, False, True]  # NaN row excluded


def test_like_patterns(batch, context):
    assert list(eval_text("name LIKE 'x'", batch, context)) == [True, False, False, True]
    assert list(eval_text("name LIKE '_'", batch, context)) == [True, False, True, True]


def test_concat_operator(batch, context):
    result = eval_text("name || '!'", batch, context)
    assert list(result) == ["x!", None, "y!", "x!"]


def test_case_narrowing_numeric(batch, context):
    result = eval_text("CASE WHEN b > 20 THEN 1 ELSE 0 END", batch, context)
    assert result.dtype == np.float64
    assert list(result) == [0.0, 0.0, 1.0, 1.0]


def test_unary_minus_object_and_numeric(batch, context):
    assert list(eval_text("-b", batch, context)) == [-10, -20, -30, -40]


def test_star_rejected(batch, context):
    from repro.sql import ast

    with pytest.raises(ExpressionError):
        evaluate(ast.Star(), batch, context)


def test_function_requires_registry(batch):
    bare = ExecutionContext(functions=None)
    with pytest.raises(ExpressionError):
        evaluate(parse_expression("UPPER(name)"), batch, bare)
