"""Circuit breakers: trip/cool-down state machine, fail-fast, zero retries."""

from __future__ import annotations

import pytest

from repro.errors import (
    CircuitOpenError,
    LogStallError,
    QosError,
    RemoteSourceUnavailableError,
    RetryableError,
)
from repro.qos import BreakerConfig, CircuitBreaker, STATE_CODES
from repro.soe.services.transaction_broker import TransactionBroker
from repro.soe.replication import make_insert
from repro.util.retry import RetryPolicy, SimulatedClock


def failing():
    raise RemoteSourceUnavailableError("remote down")


def make_breaker(clock=None, **overrides) -> CircuitBreaker:
    defaults = dict(
        failure_threshold=0.5, min_calls=2, window=4, cooldown_seconds=10.0
    )
    defaults.update(overrides)
    return CircuitBreaker("seam", BreakerConfig(**defaults), clock=clock or SimulatedClock())


def trip(breaker: CircuitBreaker) -> None:
    for _ in range(breaker.config.min_calls):
        with pytest.raises(RetryableError):
            breaker.call(failing)
    assert breaker.state == "open"


# -- config --------------------------------------------------------------------


def test_config_validation():
    with pytest.raises(QosError):
        BreakerConfig(failure_threshold=0.0)
    with pytest.raises(QosError):
        BreakerConfig(failure_threshold=1.5)
    with pytest.raises(QosError):
        BreakerConfig(min_calls=0)
    with pytest.raises(QosError):
        BreakerConfig(min_calls=5, window=4)
    with pytest.raises(QosError):
        BreakerConfig(cooldown_seconds=-1)


# -- tripping ------------------------------------------------------------------


def test_trips_at_failure_threshold():
    breaker = make_breaker()
    with pytest.raises(RetryableError):
        breaker.call(failing)
    assert breaker.state == "closed"  # min_calls not reached
    with pytest.raises(RetryableError):
        breaker.call(failing)
    assert breaker.state == "open"
    assert breaker.transitions[-1].source == "closed"
    assert breaker.transitions[-1].target == "open"


def test_successes_keep_failure_rate_below_threshold():
    breaker = make_breaker(window=4, min_calls=4)
    for _ in range(3):
        breaker.call(lambda: "ok")
    with pytest.raises(RetryableError):
        breaker.call(failing)
    assert breaker.state == "closed"  # 1/4 failures < 0.5


def test_domain_errors_do_not_count_as_failures():
    breaker = make_breaker()

    def bad_query():
        raise ValueError("unknown table")

    for _ in range(5):
        with pytest.raises(ValueError):
            breaker.call(bad_query)
    assert breaker.state == "closed"
    assert breaker.transitions == []


def test_open_breaker_fails_fast_with_typed_error():
    breaker = make_breaker()
    trip(breaker)
    calls = []
    with pytest.raises(CircuitOpenError) as exc_info:
        breaker.call(lambda: calls.append(1))
    assert calls == []  # the seam was never touched
    assert exc_info.value.breaker == "seam"
    # deliberately NOT retryable: it must punch through retry loops
    assert not isinstance(exc_info.value, RetryableError)
    assert breaker.fast_fails == 1


# -- cool-down and recovery ----------------------------------------------------


def test_cooldown_elapses_into_half_open_probe_then_closed():
    clock = SimulatedClock()
    breaker = make_breaker(clock=clock)
    trip(breaker)
    clock.advance(9.99)
    with pytest.raises(CircuitOpenError):
        breaker.call(lambda: "ok")
    clock.advance(0.01)
    assert breaker.call(lambda: "ok") == "ok"  # the probe
    assert breaker.state == "closed"
    targets = [t.target for t in breaker.transitions]
    assert targets == ["open", "half_open", "closed"]


def test_failed_probe_reopens_and_rearms_cooldown():
    clock = SimulatedClock()
    breaker = make_breaker(clock=clock)
    trip(breaker)
    clock.advance(10.0)
    with pytest.raises(RetryableError):
        breaker.call(failing)  # probe fails
    assert breaker.state == "open"
    # cool-down restarted from the probe failure
    clock.advance(9.0)
    with pytest.raises(CircuitOpenError):
        breaker.call(lambda: "ok")
    clock.advance(1.0)
    breaker.call(lambda: "ok")
    assert breaker.state == "closed"


def test_recovery_clears_the_outcome_window():
    clock = SimulatedClock()
    breaker = make_breaker(clock=clock)
    trip(breaker)
    clock.advance(10.0)
    breaker.call(lambda: "ok")
    # one fresh failure must not re-trip against the stale window
    with pytest.raises(RetryableError):
        breaker.call(failing)
    assert breaker.state == "closed"


def test_transitions_are_stamped_with_simulated_time():
    clock = SimulatedClock()
    breaker = make_breaker(clock=clock)
    clock.advance(5.0)
    trip(breaker)
    assert breaker.transitions[0].at == pytest.approx(5.0)
    clock.advance(10.0)
    breaker.call(lambda: "ok")
    half_open = breaker.transitions[1]
    assert half_open.target == "half_open"
    assert half_open.at - breaker.transitions[0].at >= breaker.config.cooldown_seconds


def test_snapshot_and_state_codes():
    breaker = make_breaker()
    snap = breaker.snapshot()
    assert snap["state"] == "closed"
    assert set(STATE_CODES) == {"closed", "half_open", "open"}
    trip(breaker)
    assert breaker.snapshot()["failure_rate"] == 1.0


# -- zero retries against an open breaker --------------------------------------


def test_retry_policy_does_not_retry_an_open_breaker():
    clock = SimulatedClock()
    breaker = make_breaker(clock=clock, cooldown_seconds=1000.0)
    policy = RetryPolicy(max_attempts=4)
    retries = []

    def guarded():
        return breaker.call(failing)

    # first policy.call: failures count, breaker opens mid-schedule, and
    # the resulting CircuitOpenError aborts the loop (it is not retryable)
    with pytest.raises((RetryableError, CircuitOpenError)):
        policy.call(guarded, clock=clock, on_retry=lambda a, e: retries.append(a))
    assert breaker.state == "open"
    retries_before = len(retries)
    attempts = []

    def probe():
        attempts.append(1)
        return breaker.call(failing)

    with pytest.raises(CircuitOpenError):
        policy.call(probe, clock=clock, on_retry=lambda a, e: retries.append(a))
    # fail-fast: exactly one attempt, zero retries, seam never touched
    assert attempts == [1]
    assert len(retries) == retries_before


class StallingLog:
    """A shared log that is down and staying down."""

    def __init__(self) -> None:
        self.appends = 0
        self.tail = 0

    def append(self, payload):
        self.appends += 1
        raise LogStallError("log stalled")

    def reconfigure(self):
        pass


def test_broker_stops_retrying_once_log_breaker_opens():
    clock = SimulatedClock()
    log = StallingLog()
    breaker = CircuitBreaker(
        "soe.log_append",
        BreakerConfig(failure_threshold=0.5, min_calls=2, window=4,
                      cooldown_seconds=10_000.0),
        clock=clock,
    )
    broker = TransactionBroker(
        log,
        retry_policy=RetryPolicy(max_attempts=5),
        clock=clock,
        breaker=breaker,
    )
    # first submit: the breaker opens after min_calls stalls, then the
    # CircuitOpenError punches through the broker's retry loop
    with pytest.raises(CircuitOpenError):
        broker.submit([make_insert("t", [[1]])])
    assert breaker.state == "open"
    appends_before = log.appends
    retries_before = broker.retries
    with pytest.raises(CircuitOpenError):
        broker.submit([make_insert("t", [[2]])])
    # zero retry attempts and zero seam touches against the open breaker
    assert broker.retries == retries_before
    assert log.appends == appends_before
    assert breaker.fast_fails >= 1
