"""Bit-for-bit reproducibility of the whole overload-protection stack.

The ISSUE's acceptance bar: an identical seeded chaos schedule plus an
identical submit schedule must yield identical shed/degraded/breaker-trip
behaviour across runs — asserted on ``schedule_fingerprint()`` and the
full ``qos.*`` counter dump, not on summary statistics.
"""

from __future__ import annotations

import os

from repro import obs
from repro.chaos import ChaosController, FaultPlan
from repro.errors import AdmissionRejectedError, ReproError
from repro.qos import AdmissionConfig, AdmissionController, BreakerConfig
from repro.soe.engine import SoeEngine

SEED = 4242 + int(os.environ.get("REPRO_CHAOS_SEED", "0"))
WORKERS = ["worker0", "worker1", "worker2"]


def build_soe(controller: ChaosController | None) -> SoeEngine:
    soe = SoeEngine(
        node_count=3,
        node_modes="olap",
        replication=2,
        chaos=controller,
        breaker_config=BreakerConfig(
            failure_threshold=0.5, min_calls=4, window=8, cooldown_seconds=0.5
        ),
    )
    soe.create_table(
        "readings", ["sensor_id", "region", "value"], ["sensor_id"], partition_count=6
    )
    soe.load("readings", [[i, f"r{i % 5}", float(i % 97)] for i in range(300)])
    return soe


def run_overloaded_landscape() -> tuple:
    """One seeded chaos + admission + breaker run; returns its full trace."""
    obs.reset()
    obs.enable()
    plan = FaultPlan.from_seed(
        seed=SEED,
        horizon=120,
        nodes=WORKERS,
        drop_rate=0.25,
        delay_rate=0.1,
        stall_rate=0.2,
    )
    controller = ChaosController(plan)
    soe = build_soe(controller)
    admission = AdmissionController(
        AdmissionConfig(queue_depth=4), clock=soe.clock, stats=soe.stats
    )

    def olap_job():
        rows, _cost = soe.aggregate("readings", group_by=["region"])
        return len(rows)

    def oltp_job():
        return soe.insert("readings", [[1000 + admission.queued(), "r9", 1.0]])

    outcomes: list[str] = []
    for step in range(60):
        controller.tick()
        query_class = ("oltp", "olap", "olap", "background")[step % 4]
        job = oltp_job if query_class == "oltp" else olap_job
        try:
            admission.submit(
                query_class, job, target_nodes=(WORKERS[step % 3],)
            )
            outcomes.append("admitted")
        except AdmissionRejectedError as exc:
            outcomes.append(f"shed:{exc.reason}")
        if step % 3 == 0:
            for ticket in admission.run_all(limit=2):
                if ticket.state == "failed" and not isinstance(
                    ticket.error, ReproError
                ):
                    raise ticket.error  # only landscape faults are expected
                outcomes.append(f"{ticket.query_class}:{ticket.state}")
    for ticket in admission.run_all():
        outcomes.append(f"{ticket.query_class}:{ticket.state}")

    counters = {
        key: series["value"]
        for key, series in obs.metrics_dump().items()
        if series.get("type") == "counter" and key.startswith("qos.")
    }
    breaker_trace = {
        name: [(t.source, t.target, t.at) for t in breaker.transitions]
        for name, breaker in sorted(soe.breakers.items())
    }
    assert admission.conserved()
    return (
        controller.schedule_fingerprint(),
        tuple(outcomes),
        counters,
        breaker_trace,
        admission.counts(),
    )


def test_identical_seeds_reproduce_shed_and_breaker_trace_bit_for_bit():
    first = run_overloaded_landscape()
    second = run_overloaded_landscape()
    assert first[0] == second[0], "chaos schedule fingerprint diverged"
    assert first[1] == second[1], "admission outcome trace diverged"
    assert first[2] == second[2], "qos.* counters diverged"
    assert first[3] == second[3], "breaker transition trace diverged"
    assert first[4] == second[4], "admission counts diverged"


def test_overloaded_run_actually_sheds():
    fingerprint, outcomes, counters, _breakers, counts = run_overloaded_landscape()
    assert fingerprint  # the plan scheduled real faults
    assert counts["shed"] > 0, "depth 4 under a 60-submit burst must shed"
    assert counts["submitted"] == counts["admitted"] + counts["shed"]
    assert any(key.startswith("qos.shed") for key in counters)
