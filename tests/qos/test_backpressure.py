"""Bounded buffers and the backpressured stream processor."""

from __future__ import annotations

import pytest

from repro.errors import BackpressureError, QosError, RetryableError
from repro.qos import BoundedBuffer, POLICIES
from repro.streaming.esp import (
    BackpressuredProcessor,
    CollectSink,
    DeriveOperator,
    FilterOperator,
    TumblingWindowAggregate,
)


# -- BoundedBuffer -------------------------------------------------------------


def test_buffer_validation():
    with pytest.raises(QosError):
        BoundedBuffer("b", 0)
    with pytest.raises(QosError):
        BoundedBuffer("b", 4, policy="spill")
    assert POLICIES == ("drop_oldest", "drop_newest", "block")


def test_drop_oldest_keeps_the_freshest():
    buffer = BoundedBuffer("b", 3, policy="drop_oldest")
    for i in range(5):
        assert buffer.offer(i)  # always admitted; oldest evicted
    assert buffer.drain() == [2, 3, 4]
    assert buffer.dropped_oldest == 2
    assert buffer.offered == 5


def test_drop_newest_keeps_the_backlog():
    buffer = BoundedBuffer("b", 3, policy="drop_newest")
    admitted = [buffer.offer(i) for i in range(5)]
    assert admitted == [True, True, True, False, False]
    assert buffer.drain() == [0, 1, 2]
    assert buffer.dropped_newest == 2


def test_block_policy_raises_retryable_backpressure():
    buffer = BoundedBuffer("b", 2, policy="block")
    buffer.offer("a")
    buffer.offer("b")
    with pytest.raises(BackpressureError) as exc_info:
        buffer.offer("c")
    assert isinstance(exc_info.value, RetryableError)
    # draining clears it — the producer's retry succeeds
    buffer.take()
    assert buffer.offer("c")
    assert buffer.drain() == ["b", "c"]


def test_watermark_tracks_high_water():
    buffer = BoundedBuffer("b", 10)
    for i in range(6):
        buffer.offer(i)
    for _ in range(6):
        buffer.take()
    buffer.offer("late")
    assert buffer.watermark == 6
    assert len(buffer) == 1


def test_take_empty_is_a_pump_bug():
    buffer = BoundedBuffer("b", 2)
    with pytest.raises(QosError):
        buffer.take()


def test_snapshot_accounting():
    buffer = BoundedBuffer("b", 2, policy="drop_oldest")
    for i in range(4):
        buffer.offer(i)
    buffer.take()
    snap = buffer.snapshot()
    assert snap["offered"] == 4
    assert snap["taken"] == 1
    assert snap["dropped"] == 2
    assert snap["depth"] == 1
    assert snap["watermark"] == 2


# -- BackpressuredProcessor ----------------------------------------------------


def events(n: int) -> list[dict]:
    return [{"t": i, "key": "k", "value": float(i)} for i in range(n)]


def passthrough() -> list:
    return [DeriveOperator("tag", lambda e: "seen")]


def test_drop_oldest_processor_keeps_freshest_events():
    sink = CollectSink()
    proc = BackpressuredProcessor(passthrough(), [sink], capacity=4, policy="drop_oldest")
    for event in events(20):
        assert proc.offer(event)
    proc.finish()
    assert [e["t"] for e in sink.events] == [16, 17, 18, 19]
    assert proc.dropped == 16
    assert proc.events_in == 20
    assert proc.events_out == 4


def test_drop_newest_processor_keeps_earliest_events():
    sink = CollectSink()
    proc = BackpressuredProcessor(passthrough(), [sink], capacity=4, policy="drop_newest")
    admitted = proc.offer_many(events(20))
    proc.finish()
    assert admitted == 4
    assert [e["t"] for e in sink.events] == [0, 1, 2, 3]
    assert proc.dropped == 16


def test_block_policy_is_lossless():
    sink = CollectSink()
    proc = BackpressuredProcessor(passthrough(), [sink], capacity=4, policy="block")
    for event in events(50):
        assert proc.offer(event)
    proc.finish()
    assert [e["t"] for e in sink.events] == list(range(50))
    assert proc.dropped == 0


def test_pumping_consumer_loses_nothing_under_drop_policy():
    sink = CollectSink()
    proc = BackpressuredProcessor(passthrough(), [sink], capacity=4, policy="drop_oldest")
    for event in events(40):
        proc.offer(event)
        proc.pump()  # consumer keeps pace with the producer
    proc.finish()
    assert [e["t"] for e in sink.events] == list(range(40))
    assert proc.dropped == 0


def test_operators_run_and_windows_flush_through_buffers():
    sink = CollectSink()
    proc = BackpressuredProcessor(
        [
            FilterOperator(lambda e: e["t"] % 2 == 0),
            TumblingWindowAggregate("t", "key", "value", width=10),
        ],
        [sink],
        capacity=64,
        policy="block",
    )
    proc.offer_many(events(20))
    proc.finish()
    # events 0..18 even → windows [0,10) and [10,20), one key each
    assert len(sink.events) == 2
    assert sink.events[0]["count"] == 5
    assert sink.events[1]["window_start"] == 10


def test_snapshot_reports_per_stage_buffers():
    proc = BackpressuredProcessor(passthrough(), [CollectSink()], capacity=4)
    proc.offer_many(events(10))
    snap = proc.snapshot()
    assert snap["events_in"] == 10
    assert len(snap["stages"]) == 2  # ingest→op, op→sinks
    assert snap["stages"][0]["name"] == "esp.stage0"
    assert snap["dropped"] == 6


def test_drop_counts_surface_on_obs_metrics():
    from repro import obs

    obs.reset()
    obs.enable()
    buffer = BoundedBuffer("metered", 1, policy="drop_oldest")
    buffer.offer(1)
    buffer.offer(2)
    counters = {
        key: series["value"]
        for key, series in obs.metrics_dump().items()
        if series.get("type") == "counter"
    }
    assert counters["qos.buffer.dropped{buffer=metered,policy=drop_oldest}"] == 1
