"""Admission controller: weighted scheduling, shedding, conservation."""

from __future__ import annotations

import pytest

from repro import obs
from repro.errors import AdmissionRejectedError, QosError, RetryableError
from repro.qos import AdmissionConfig, AdmissionController, DEFAULT_WEIGHTS, QUERY_CLASSES
from repro.util.retry import SimulatedClock


class StubStats:
    """Stands in for ClusterStatisticsService.hotspots()."""

    def __init__(self, hot: list[str]) -> None:
        self.hot = hot
        self.factor_seen: float | None = None

    def hotspots(self, factor: float = 2.0) -> list[str]:
        self.factor_seen = factor
        return list(self.hot)


def fill(ac: AdmissionController, spec: dict[str, int]) -> None:
    for query_class, count in spec.items():
        for _ in range(count):
            ac.submit(query_class)


# -- lifecycle -----------------------------------------------------------------


def test_submit_and_run_one_executes_job_exactly_once():
    calls = []
    ac = AdmissionController()
    ticket = ac.submit("oltp", lambda: calls.append(1) or "ok")
    assert ticket.state == "queued"
    served = ac.run_one()
    assert served is ticket
    assert ticket.state == "executed"
    assert ticket.result == "ok"
    assert calls == [1]
    assert ac.run_one() is None


def test_failing_job_marks_ticket_failed_and_keeps_error():
    def boom():
        raise ValueError("job blew up")

    ac = AdmissionController()
    ac.submit("olap", boom)
    ticket = ac.run_one()
    assert ticket.state == "failed"
    assert isinstance(ticket.error, ValueError)
    assert ac.counts("olap")["failed"] == 1
    # a failed job still counts as executed (it was served exactly once)
    assert ac.counts("olap")["executed"] == 1


def test_wait_seconds_measured_on_simulated_clock():
    clock = SimulatedClock()
    ac = AdmissionController(clock=clock)
    ac.submit("oltp")
    clock.advance(2.5)
    ticket = ac.run_one()
    assert ticket.wait_seconds == pytest.approx(2.5)
    assert ticket.started_at == pytest.approx(clock.now)


def test_unknown_class_rejected():
    ac = AdmissionController()
    with pytest.raises(QosError):
        ac.submit("adhoc")


def test_config_validation():
    with pytest.raises(QosError):
        AdmissionConfig(weights={"oltp": 0})
    with pytest.raises(QosError):
        AdmissionConfig(weights={"mystery": 1})
    with pytest.raises(QosError):
        AdmissionConfig(queue_depth=0)
    with pytest.raises(QosError):
        AdmissionConfig(queue_depth={"olap": -1})
    with pytest.raises(QosError):
        AdmissionConfig(hotspot_shed_classes=("mystery",))


# -- shedding ------------------------------------------------------------------


def test_depth_overflow_sheds_with_retryable_error():
    ac = AdmissionController(AdmissionConfig(queue_depth=2))
    ac.submit("olap")
    ac.submit("olap")
    with pytest.raises(AdmissionRejectedError) as exc_info:
        ac.submit("olap")
    assert exc_info.value.reason == "overload"
    assert exc_info.value.query_class == "olap"
    # load shedding is the client's cue to back off and resubmit
    assert isinstance(exc_info.value, RetryableError)
    # other classes still have room
    ac.submit("oltp")


def test_per_class_depth_mapping():
    ac = AdmissionController(AdmissionConfig(queue_depth={"oltp": 1, "background": 3}))
    ac.submit("oltp")
    with pytest.raises(AdmissionRejectedError):
        ac.submit("oltp")
    fill(ac, {"background": 3})
    with pytest.raises(AdmissionRejectedError):
        ac.submit("background")
    # unlisted classes fall back to the default depth
    fill(ac, {"olap": 4})


def test_conservation_under_shedding():
    ac = AdmissionController(AdmissionConfig(queue_depth=3))
    admitted = shed = 0
    for _ in range(10):
        try:
            ac.submit("streaming")
            admitted += 1
        except AdmissionRejectedError:
            shed += 1
    assert (admitted, shed) == (3, 7)
    totals = ac.counts()
    assert totals["submitted"] == 10
    assert totals["admitted"] == 3
    assert totals["shed"] == 7
    ac.run_all()
    assert ac.conserved()
    assert not set(ac.shed_tickets) & set(ac.executed_tickets)


# -- scheduling ----------------------------------------------------------------


def test_swrr_serves_proportionally_to_weights():
    ac = AdmissionController(AdmissionConfig(queue_depth=100))
    fill(ac, {"oltp": 40, "background": 40})
    first_nine = [t.query_class for t in ac.run_all(limit=9)]
    # weights 8:1 — in any 9-slot window oltp gets 8 slots
    assert first_nine.count("oltp") == 8
    assert first_nine.count("background") == 1


def test_swrr_full_drain_respects_weight_ratio():
    ac = AdmissionController(AdmissionConfig(queue_depth=100))
    fill(ac, {"oltp": 24, "olap": 24})
    served = [t.query_class for t in ac.run_all(limit=10)]
    # 8:2 → every 5-slot window is 4 oltp + 1 olap
    assert served.count("oltp") == 8
    assert served.count("olap") == 2


def test_swrr_is_deterministic():
    def trace() -> list[str]:
        ac = AdmissionController(AdmissionConfig(queue_depth=100))
        fill(ac, {"oltp": 10, "olap": 10, "streaming": 10, "background": 10})
        return [t.query_class for t in ac.run_all()]

    assert trace() == trace()


def test_fifo_mode_serves_in_arrival_order():
    ac = AdmissionController(AdmissionConfig(fifo=True, queue_depth=100))
    ac.submit("background")
    ac.submit("oltp")
    ac.submit("olap")
    served = [t.query_class for t in ac.run_all()]
    assert served == ["background", "oltp", "olap"]


def test_exhausted_class_yields_slots_to_the_rest():
    ac = AdmissionController(AdmissionConfig(queue_depth=100))
    fill(ac, {"oltp": 2, "background": 5})
    served = [t.query_class for t in ac.run_all()]
    assert served.count("oltp") == 2
    assert served.count("background") == 5
    # once oltp drains, background gets every remaining slot
    assert served[-3:] == ["background"] * 3


# -- hotspot placement penalty -------------------------------------------------


def test_background_targeting_hot_node_is_shed():
    stats = StubStats(["worker1"])
    ac = AdmissionController(
        AdmissionConfig(hotspot_factor=3.0), stats=stats
    )
    with pytest.raises(AdmissionRejectedError) as exc_info:
        ac.submit("background", target_nodes=("worker1", "worker2"))
    assert exc_info.value.reason == "hotspot"
    assert stats.factor_seen == 3.0
    assert ac.counts("background")["shed"] == 1
    assert ac.conserved()


def test_hotspot_penalty_spares_other_classes_and_cold_targets():
    stats = StubStats(["worker1"])
    ac = AdmissionController(stats=stats)
    # oltp is not in hotspot_shed_classes — admitted even on the hot node
    ac.submit("oltp", target_nodes=("worker1",))
    # background on a cold node is admitted
    ac.submit("background", target_nodes=("worker2",))
    # background with no placement constraint is admitted
    ac.submit("background")
    assert ac.counts()["shed"] == 0


def test_no_stats_service_disables_hotspot_penalty():
    ac = AdmissionController()
    ac.submit("background", target_nodes=("worker0",))
    assert ac.counts("background")["admitted"] == 1


# -- accounting / metrics ------------------------------------------------------


def test_obs_counters_track_lifecycle():
    obs.reset()
    obs.enable()
    ac = AdmissionController(AdmissionConfig(queue_depth=1))
    ac.submit("oltp", lambda: 1)
    with pytest.raises(AdmissionRejectedError):
        ac.submit("oltp")
    ac.run_all()
    counters = {
        key: series["value"]
        for key, series in obs.metrics_dump().items()
        if series.get("type") == "counter" and key.startswith("qos.")
    }
    assert counters["qos.submitted{cls=oltp}"] == 2
    assert counters["qos.admitted{cls=oltp}"] == 1
    assert counters["qos.shed{cls=oltp,reason=overload}"] == 1
    assert counters["qos.executed{cls=oltp}"] == 1


def test_snapshot_shape():
    ac = AdmissionController()
    ac.submit("streaming")
    snap = ac.snapshot()
    assert snap["queued"]["streaming"] == 1
    assert snap["counts"]["streaming"]["admitted"] == 1
    assert set(snap["queued"]) == set(QUERY_CLASSES)


def test_default_weights_cover_all_classes():
    assert set(DEFAULT_WEIGHTS) == set(QUERY_CLASSES)
    assert all(weight >= 1 for weight in DEFAULT_WEIGHTS.values())
