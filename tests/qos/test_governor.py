"""Resource governor: soft degradation, hard cutoffs, engine integration."""

from __future__ import annotations

import pytest

from repro.core.database import Database
from repro.errors import BudgetExceededError, QosError
from repro.qos import QueryBudget, ResourceGovernor
from repro.sql.parser import parse
from repro.sql.planner import plan_select
from repro.sql.volcano import execute_volcano
from repro.util.retry import SimulatedClock


def make_db(rows: int = 50) -> Database:
    db = Database()
    db.execute("CREATE TABLE t (id INT, grp VARCHAR, val INT)")
    db.execute(
        "INSERT INTO t VALUES "
        + ", ".join(f"({i}, 'g{i % 5}', {i * 10})" for i in range(rows))
    )
    return db


def run(db: Database, sql: str, budget: QueryBudget | None, engine: str):
    """Run ``sql`` under ``budget`` on either engine; returns
    (rows, degraded, reasons) with the same surfacing for both."""
    if engine == "vectorized":
        result = db.execute(sql, budget=budget)
        return result.rows, result.degraded, result.degraded_reasons
    plan = plan_select(parse(sql), db.catalog)
    context = db._context(None, None)
    governor = ResourceGovernor(budget) if budget is not None else None
    context.governor = governor
    rows = execute_volcano(plan, context)
    if governor is not None and governor.degraded:
        return rows, True, list(governor.degraded_reasons)
    return rows, False, []


# -- budget validation ---------------------------------------------------------


def test_budget_rejects_hard_below_soft():
    with pytest.raises(QosError):
        QueryBudget(soft_rows=10, hard_rows=5)
    with pytest.raises(QosError):
        QueryBudget(soft_bytes=100, hard_bytes=50)
    with pytest.raises(QosError):
        QueryBudget(soft_seconds=1.0, hard_seconds=0.5)
    with pytest.raises(QosError):
        QueryBudget(soft_rows=-1)
    with pytest.raises(QosError):
        QueryBudget(seconds_per_row=-0.1)


def test_unbudgeted_governor_never_stops():
    gov = ResourceGovernor()
    gov.charge(rows=10_000, bytes_=10**9)
    assert not gov.should_stop
    assert gov.remaining_rows() is None


# -- soft limits (degradation) -------------------------------------------------


def test_soft_rows_latches_degraded():
    gov = ResourceGovernor(QueryBudget(soft_rows=5))
    for _ in range(4):
        gov.charge(rows=1)
    assert not gov.should_stop
    gov.charge(rows=1)
    assert gov.should_stop
    assert gov.degraded_reasons == ["rows"]
    # latched: further charges don't raise, reason recorded once
    gov.charge(rows=1)
    assert gov.degraded_reasons == ["rows"]


def test_soft_bytes_and_seconds_record_their_reasons():
    clock = SimulatedClock()
    gov = ResourceGovernor(
        QueryBudget(soft_bytes=16, soft_seconds=1.0, seconds_per_row=0.6),
        clock=clock,
    )
    gov.charge(rows=1, bytes_=20)  # bytes latch; 0.6s elapsed
    assert gov.degraded_reasons == ["bytes"]
    gov.charge(rows=1)  # 1.2s elapsed — seconds latch too
    assert gov.degraded_reasons == ["bytes", "seconds"]


def test_remaining_rows_tracks_soft_budget():
    gov = ResourceGovernor(QueryBudget(soft_rows=10))
    assert gov.remaining_rows() == 10
    gov.charge(rows=7)
    assert gov.remaining_rows() == 3
    gov.charge(rows=7)
    assert gov.remaining_rows() == 0


def test_seconds_per_row_advances_shared_clock():
    clock = SimulatedClock()
    gov = ResourceGovernor(QueryBudget(seconds_per_row=0.25), clock=clock)
    gov.charge(rows=8)
    assert clock.now == pytest.approx(2.0)
    assert gov.elapsed_seconds == pytest.approx(2.0)


# -- hard limits ---------------------------------------------------------------


def test_hard_rows_raises():
    gov = ResourceGovernor(QueryBudget(hard_rows=3))
    gov.charge(rows=3)
    with pytest.raises(BudgetExceededError):
        gov.charge(rows=1)


def test_hard_seconds_raises_on_simulated_time():
    gov = ResourceGovernor(
        QueryBudget(hard_seconds=1.0, seconds_per_row=0.3)
    )
    gov.charge(rows=3)  # 0.9s — fine
    with pytest.raises(BudgetExceededError, match="seconds"):
        gov.charge(rows=1)


def test_soft_then_hard_in_one_budget():
    gov = ResourceGovernor(QueryBudget(soft_rows=2, hard_rows=4))
    gov.charge(rows=2)
    assert gov.should_stop
    gov.charge(rows=2)  # at the hard limit, not over
    with pytest.raises(BudgetExceededError):
        gov.charge(rows=1)


# -- engine integration --------------------------------------------------------


@pytest.mark.parametrize("engine", ["vectorized", "volcano"])
def test_soft_budget_returns_degraded_prefix(engine):
    db = make_db()
    rows, degraded, reasons = run(
        db, "SELECT id FROM t", QueryBudget(soft_rows=10), engine
    )
    assert degraded
    assert "rows" in reasons
    assert 1 <= len(rows) <= 10
    # the truncated answer is a prefix of the full answer
    full, full_degraded, _ = run(db, "SELECT id FROM t", None, engine)
    assert not full_degraded
    assert [list(r) for r in rows] == [list(r) for r in full[: len(rows)]]


@pytest.mark.parametrize("engine", ["vectorized", "volcano"])
def test_hard_budget_raises_through_execute(engine):
    db = make_db()
    with pytest.raises(BudgetExceededError):
        run(db, "SELECT id FROM t", QueryBudget(hard_rows=5), engine)


@pytest.mark.parametrize("engine", ["vectorized", "volcano"])
def test_generous_budget_leaves_result_untouched(engine):
    db = make_db()
    budgeted, degraded, _ = run(
        db, "SELECT id, val FROM t", QueryBudget(soft_rows=10_000), engine
    )
    plain, _, _ = run(db, "SELECT id, val FROM t", None, engine)
    assert not degraded
    assert [list(r) for r in budgeted] == [list(r) for r in plain]


def test_degraded_flag_survives_aggregation_pipeline():
    db = make_db()
    result = db.execute(
        "SELECT grp, COUNT(*) FROM t GROUP BY grp",
        budget=QueryBudget(soft_rows=2),
    )
    assert result.degraded
    assert len(result.rows) <= 2


def test_repr_marks_degraded_results():
    db = make_db()
    result = db.execute("SELECT id FROM t", budget=QueryBudget(soft_rows=3))
    assert "degraded=True" in repr(result)
