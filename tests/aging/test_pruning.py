"""Tests for the aging run, semantic pruning, and join pruning."""

import pytest

from repro.aging.pruning import AgingManager
from repro.aging.rules import AgingDependency
from repro.aging.tiering import aged_ordinals, hot_ordinals
from repro.core.database import Database
from repro.errors import AgingError
from repro.sql.executor import execute as execute_plan
from repro.sql.parser import parse
from repro.sql.planner import plan_select


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE orders (id INT PRIMARY KEY, status VARCHAR, year INT, amount DOUBLE)"
    )
    database.execute(
        "CREATE TABLE invoices (inv INT PRIMARY KEY, order_id INT, paid VARCHAR)"
    )
    order_rows = ", ".join(
        f"({i}, '{'closed' if i < 60 else 'open'}', {2012 + i % 3}, {float(i)})"
        for i in range(100)
    )
    invoice_rows = ", ".join(
        f"({i}, {i}, '{'paid' if i < 60 else 'due'}')" for i in range(100)
    )
    database.execute(f"INSERT INTO orders VALUES {order_rows}")
    database.execute(f"INSERT INTO invoices VALUES {invoice_rows}")
    return database


def metrics_for(database, sql):
    plan = plan_select(parse(sql), database.catalog)
    context = database._context(None, None)
    batch = execute_plan(plan, context)
    return batch, context.metrics


def test_aging_run_moves_eligible_rows(db):
    manager = AgingManager(db)
    manager.define_rule("orders", "status = 'closed'")
    moved = manager.run("orders")
    assert moved == {"orders": 60}
    table = db.table("orders")
    assert len(aged_ordinals(table)) == 1
    # data is unchanged from the query perspective
    assert db.query("SELECT COUNT(*) FROM orders").scalar() == 100


def test_aging_run_is_idempotent(db):
    manager = AgingManager(db)
    manager.define_rule("orders", "status = 'closed'")
    manager.run("orders")
    assert manager.run("orders") == {"orders": 0}


def test_semantic_pruning_skips_aged_partition(db):
    manager = AgingManager(db)
    manager.define_rule("orders", "status = 'closed'")
    manager.run("orders")
    _batch, metrics = metrics_for(db, "SELECT COUNT(*) FROM orders WHERE status = 'open'")
    assert metrics.get("semantic_prunes", 0) == 1
    assert metrics.get("rows_scanned", 0) == 40  # only the hot partition
    # a query that *can* match aged rows must not prune
    _batch, metrics = metrics_for(db, "SELECT COUNT(*) FROM orders WHERE amount > 10")
    assert metrics.get("semantic_prunes", 0) == 0


def test_pruning_preserves_correctness(db):
    manager = AgingManager(db)
    manager.define_rule("orders", "status = 'closed' AND year <= 2014")
    manager.run("orders")
    assert db.query("SELECT COUNT(*) FROM orders WHERE year = 2015").scalar() == 0
    assert db.query("SELECT COUNT(*) FROM orders WHERE status = 'open'").scalar() == 40
    assert db.query("SELECT COUNT(*) FROM orders WHERE status = 'closed'").scalar() == 60


def test_dependency_gates_child_aging(db):
    manager = AgingManager(db)
    manager.define_rule("orders", "status = 'closed'")
    manager.define_rule(
        "invoices",
        "paid = 'paid'",
        dependencies=[AgingDependency("orders", "order_id", "id")],
    )
    # child alone cannot age anything: no parents aged yet
    assert manager.run("invoices") == {"invoices": 0}
    moved = manager.run()
    assert moved["orders"] == 60
    assert moved["invoices"] == 60
    assert manager.aged_keys("invoices") == {(i,) for i in range(60)}


def test_join_prunable_requires_dependency_and_hot_parent(db):
    manager = AgingManager(db)
    manager.define_rule("orders", "status = 'closed'")
    manager.define_rule(
        "invoices",
        "paid = 'paid'",
        dependencies=[AgingDependency("orders", "order_id", "id")],
    )
    manager.run()
    table = db.table("invoices")
    assert manager.join_prunable("invoices", parent_hot_only=True) == hot_ordinals(table)
    assert manager.join_prunable("invoices", parent_hot_only=False) == list(
        range(len(table.partitions))
    )


def test_run_without_rule_raises(db):
    manager = AgingManager(db)
    with pytest.raises(AgingError):
        manager.run("orders")


def test_propose_rule_from_statistics(db):
    db.execute("CREATE TABLE events (id INT, d DATE)")
    db.execute(
        "INSERT INTO events VALUES (1, DATE '2012-01-01'), (2, DATE '2013-01-01'), "
        "(3, DATE '2014-01-01'), (4, DATE '2015-01-01')"
    )
    manager = AgingManager(db)
    proposal = manager.propose_rule("events", "d", quantile=0.5)
    assert proposal == "d < DATE '2014-01-01'"
    # the proposal parses as a valid rule predicate
    manager.define_rule("events", proposal)
    assert manager.run("events") == {"events": 2}
