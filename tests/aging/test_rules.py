"""Tests for aging rules, fact extraction, and the dependency graph."""

import datetime as dt

import pytest

from repro.aging.rules import (
    AgingDependency,
    AgingRule,
    Fact,
    RuleSet,
    contradicts,
    extract_facts,
)
from repro.errors import AgingError
from repro.sql.parser import parse_expression


def test_facts_from_simple_conjuncts():
    rule = AgingRule("orders", "status = 'closed' AND odate < DATE '2014-01-01'")
    assert Fact("status", "=", "closed") in rule.facts
    assert Fact("odate", "<", dt.date(2014, 1, 1)) in rule.facts


def test_facts_from_between_and_reversed_comparison():
    facts = extract_facts(parse_expression("amount BETWEEN 1 AND 5 AND 100 > qty"))
    assert Fact("amount", ">=", 1) in facts
    assert Fact("amount", "<=", 5) in facts
    assert Fact("qty", "<", 100) in facts


def test_unrecognised_conjuncts_yield_no_facts():
    assert extract_facts(parse_expression("UPPER(status) = 'X' OR a = 1")) == []


def test_contradiction_equality_vs_equality():
    fact = Fact("status", "=", "closed")
    assert contradicts(fact, parse_expression("status = 'open'"))
    assert not contradicts(fact, parse_expression("status = 'closed'"))


def test_contradiction_equality_vs_range():
    fact = Fact("odate", "<", dt.date(2014, 1, 1))
    assert contradicts(fact, parse_expression("odate >= DATE '2014-01-01'"))
    assert contradicts(fact, parse_expression("odate = DATE '2015-06-01'"))
    assert not contradicts(fact, parse_expression("odate > DATE '2013-01-01'"))


def test_contradiction_range_vs_range_boundaries():
    below = Fact("x", "<=", 10)
    assert contradicts(below, parse_expression("x > 10"))
    assert not contradicts(below, parse_expression("x >= 10"))
    strictly_below = Fact("x", "<", 10)
    assert contradicts(strictly_below, parse_expression("x >= 10"))


def test_different_columns_never_contradict():
    assert not contradicts(Fact("a", "=", 1), parse_expression("b = 2"))


def test_rule_set_detects_cycles():
    rules = RuleSet()
    rules.register(
        AgingRule("a", "x = 1", [AgingDependency("b", "k", "k")])
    )
    with pytest.raises(AgingError):
        rules.register(
            AgingRule("b", "x = 1", [AgingDependency("a", "k", "k")])
        )


def test_rule_set_aging_order_parents_first():
    rules = RuleSet()
    rules.register(AgingRule("invoices", "paid = 'paid'", [AgingDependency("orders", "oid", "id")]))
    rules.register(AgingRule("orders", "status = 'closed'"))
    order = rules.aging_order()
    assert order.index("orders") < order.index("invoices")
