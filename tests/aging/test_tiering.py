"""Tests for extended-storage eviction and reload."""

import pytest

from repro.aging.pruning import AgingManager
from repro.aging.tiering import (
    aged_ordinals,
    ensure_aged_partition,
    evict_partition,
    rehydrate_partition,
)
from repro.core.database import Database
from repro.errors import AgingError


@pytest.fixture
def aged_db():
    database = Database()
    database.execute("CREATE TABLE t (id INT, status VARCHAR)")
    rows = ", ".join(f"({i}, '{'old' if i < 70 else 'new'}')" for i in range(100))
    database.execute(f"INSERT INTO t VALUES {rows}")
    manager = AgingManager(database)
    manager.define_rule("t", "status = 'old'")
    manager.run("t")
    database.merge("t")
    return database


def test_evict_and_transparent_reload(aged_db, tmp_path):
    table = aged_db.table("t")
    partition = table.partitions[aged_ordinals(table)[0]]
    path = evict_partition(partition, tmp_path)
    assert path.exists()
    assert not partition.is_loaded
    assert partition.tier == "extended"
    # query that touches the aged partition transparently reloads it
    assert aged_db.query("SELECT COUNT(*) FROM t WHERE status = 'old'").scalar() == 70
    assert partition.is_loaded
    assert partition.cold_reads > 0


def test_pruned_queries_do_not_reload(aged_db, tmp_path):
    table = aged_db.table("t")
    partition = table.partitions[aged_ordinals(table)[0]]
    evict_partition(partition, tmp_path)
    assert aged_db.query("SELECT COUNT(*) FROM t WHERE status = 'new'").scalar() == 30
    assert not partition.is_loaded  # semantic pruning skipped the cold tier


def test_evict_requires_merged_delta(tmp_path):
    database = Database()
    database.execute("CREATE TABLE t (id INT)")
    database.execute("INSERT INTO t VALUES (1)")
    partition = database.table("t").partitions[0]
    with pytest.raises(AgingError):
        evict_partition(partition, tmp_path)


def test_rehydrate(aged_db, tmp_path):
    table = aged_db.table("t")
    partition = table.partitions[aged_ordinals(table)[0]]
    evict_partition(partition, tmp_path)
    rehydrate_partition(partition)
    assert partition.tier == "hot"
    assert partition.is_loaded
    assert partition.storage_path is None


def test_ensure_aged_partition_is_idempotent():
    database = Database()
    database.execute("CREATE TABLE t (id INT)")
    table = database.table("t")
    first = ensure_aged_partition(table)
    second = ensure_aged_partition(table)
    assert first is second
    assert len(table.partitions) == 2
