"""Tests for planning disaggregation/aggregation operators."""

import pytest

from repro.engines.graph.hierarchy import HierarchyView
from repro.errors import PlanningError
from repro.planning.disaggregation import (
    aggregate_up,
    disaggregate,
    disaggregate_hierarchy,
)


def test_proportional_split_exact_sum():
    allocation = disaggregate(100.0, {"a": 1.0, "b": 2.0, "c": 1.0})
    assert allocation == {"a": 25.0, "b": 50.0, "c": 25.0}
    assert sum(allocation.values()) == 100.0


def test_rounding_residue_assigned_exactly():
    allocation = disaggregate(100.0, {"a": 1.0, "b": 1.0, "c": 1.0})
    assert sum(allocation.values()) == pytest.approx(100.0, abs=1e-9)
    assert all(round(v, 2) == v for v in allocation.values())
    assert sorted(allocation.values()) == [33.33, 33.33, 33.34]


def test_equal_split_ignores_weights():
    allocation = disaggregate(90.0, {"a": 100.0, "b": 0.0, "c": 0.0}, method="equal")
    assert allocation == {"a": 30.0, "b": 30.0, "c": 30.0}


def test_zero_weights_fall_back_to_equal():
    allocation = disaggregate(10.0, {"a": 0.0, "b": 0.0})
    assert allocation == {"a": 5.0, "b": 5.0}


def test_negative_total_splits():
    allocation = disaggregate(-50.0, {"a": 1.0, "b": 1.0})
    assert sum(allocation.values()) == -50.0


def test_validation():
    with pytest.raises(PlanningError):
        disaggregate(10.0, {})
    with pytest.raises(PlanningError):
        disaggregate(10.0, {"a": -1.0})
    with pytest.raises(PlanningError):
        disaggregate(10.0, {"a": 1.0}, method="magic")


HIERARCHY = HierarchyView(
    "org",
    {"all": None, "eu": "all", "us": "all", "de": "eu", "fr": "eu"},
)


def test_hierarchy_disaggregation_targets_leaves():
    allocation = disaggregate_hierarchy(HIERARCHY, "eu", 90.0, {"de": 2.0, "fr": 1.0})
    assert allocation == {"de": 60.0, "fr": 30.0}


def test_hierarchy_disaggregation_of_leaf_is_identity():
    allocation = disaggregate_hierarchy(HIERARCHY, "us", 42.0, {})
    assert allocation == {"us": 42.0}


def test_aggregate_up_rolls_to_all_levels():
    totals = aggregate_up(HIERARCHY, {"de": 10.0, "fr": 5.0, "us": 7.0})
    assert totals["eu"] == 15.0
    assert totals["all"] == 22.0


def test_disaggregate_then_aggregate_is_consistent():
    allocation = disaggregate_hierarchy(HIERARCHY, "all", 1000.0, {"de": 3, "fr": 1, "us": 4})
    totals = aggregate_up(HIERARCHY, allocation)
    assert totals["all"] == pytest.approx(1000.0, abs=1e-9)
