"""Tests for planning cubes: versions, copy, compare."""

import pytest

from repro.errors import PlanningError
from repro.planning.versions import PlanningCube


@pytest.fixture
def cube():
    cube = PlanningCube("sales", ["region", "quarter"])
    cube.set("actuals", ("de", "q1"), 100.0)
    cube.set("actuals", ("de", "q2"), 120.0)
    cube.set("actuals", ("us", "q1"), 200.0)
    return cube


def test_version_branching_is_copy_on_write(cube):
    cube.create_version("plan")
    assert cube.get("plan", ("de", "q1")) == 100.0  # inherited
    cube.set("plan", ("de", "q1"), 111.0)
    assert cube.get("plan", ("de", "q1")) == 111.0
    assert cube.get("actuals", ("de", "q1")) == 100.0  # untouched
    assert cube.override_count("plan") == 1


def test_chained_versions_resolve_through_parents(cube):
    cube.create_version("plan")
    cube.set("plan", ("de", "q1"), 111.0)
    cube.create_version("whatif", from_version="plan")
    assert cube.get("whatif", ("de", "q1")) == 111.0
    cube.delete("whatif", ("de", "q1"))
    assert cube.get("whatif", ("de", "q1")) == 0.0
    assert cube.get("plan", ("de", "q1")) == 111.0


def test_copy_cells_with_scale_and_slice(cube):
    cube.create_version("plan")
    copied = cube.copy_cells("actuals", "plan", scale=1.1, where={0: "de"})
    assert copied == 2
    assert cube.get("plan", ("de", "q1")) == pytest.approx(110.0)
    assert cube.get("plan", ("us", "q1")) == 200.0  # inherited, unscaled


def test_totals_with_filter(cube):
    assert cube.total("actuals") == 420.0
    assert cube.total("actuals", where={1: "q1"}) == 300.0


def test_compare_versions(cube):
    cube.create_version("plan")
    cube.set("plan", ("de", "q1"), 150.0)
    diff = cube.compare("actuals", "plan")
    assert diff == {("de", "q1"): (100.0, 150.0)}


def test_validation(cube):
    with pytest.raises(PlanningError):
        cube.create_version("actuals")
    with pytest.raises(PlanningError):
        cube.create_version("x", from_version="ghost")
    with pytest.raises(PlanningError):
        cube.get("ghost", ("de", "q1"))
    with pytest.raises(PlanningError):
        cube.set("actuals", ("de",), 1.0)  # wrong arity
    with pytest.raises(PlanningError):
        cube.drop_version("actuals")
    with pytest.raises(PlanningError):
        PlanningCube("empty", [])


def test_drop_version_guards_dependants(cube):
    cube.create_version("plan")
    cube.create_version("child", from_version="plan")
    with pytest.raises(PlanningError):
        cube.drop_version("plan")
    cube.drop_version("child")
    cube.drop_version("plan")
    assert cube.versions == ["actuals"]
