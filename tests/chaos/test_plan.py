"""FaultSpec/FaultPlan: validation, ordering, and seeded determinism."""

from __future__ import annotations

import pytest

from repro.chaos import SEAM_KINDS, FaultPlan, FaultSpec
from repro.errors import ChaosError


class TestFaultSpec:
    def test_rejects_unknown_seam_and_kind(self):
        with pytest.raises(ChaosError):
            FaultSpec("drop", "nonsense", 0)
        with pytest.raises(ChaosError):
            FaultSpec("crash", "transfer", 0)  # crash is a service/tick kind

    def test_rejects_negative_event_and_seconds(self):
        with pytest.raises(ChaosError):
            FaultSpec("drop", "transfer", -1)
        with pytest.raises(ChaosError):
            FaultSpec("delay", "transfer", 0, seconds=-0.5)

    def test_every_declared_kind_is_constructible(self):
        for seam, kinds in SEAM_KINDS.items():
            for kind in kinds:
                spec = FaultSpec(kind, seam, 3, target="worker0")
                assert kind in spec.describe()

    def test_describe_mentions_seam_event_and_target(self):
        spec = FaultSpec("crash", "service", 7, target="worker1")
        text = spec.describe()
        assert "service" in text and "7" in text and "worker1" in text


class TestFaultPlan:
    def test_plans_are_sorted_and_value_equal(self):
        a = FaultSpec("drop", "transfer", 5)
        b = FaultSpec("stall", "log_append", 1)
        assert FaultPlan([a, b]) == FaultPlan([b, a])
        assert hash(FaultPlan([a, b])) == hash(FaultPlan([b, a]))

    def test_addition_merges_schedules(self):
        a = FaultPlan([FaultSpec("drop", "transfer", 0)])
        b = FaultPlan([FaultSpec("seal", "log_append", 2)])
        merged = a + b
        assert len(merged) == 2
        assert {spec.seam for spec in merged} == {"transfer", "log_append"}

    def test_for_seam_indexes_by_event(self):
        plan = FaultPlan(
            [
                FaultSpec("drop", "transfer", 2),
                FaultSpec("delay", "transfer", 2, seconds=0.001),
                FaultSpec("stall", "log_append", 0),
            ]
        )
        by_event = plan.for_seam("transfer")
        assert sorted(by_event) == [2]
        assert len(by_event[2]) == 2
        assert plan.for_seam("service") == {}

    def test_describe_round_trip_is_line_per_fault(self):
        plan = FaultPlan(
            [FaultSpec("drop", "transfer", 0), FaultSpec("stall", "log_append", 4)]
        )
        assert len(plan.describe().splitlines()) == 2
        assert FaultPlan().describe() == "<empty fault plan>"


class TestSeededConstructors:
    def test_from_seed_is_deterministic(self):
        kwargs = dict(
            horizon=200,
            nodes=["n0", "n1"],
            sources=["hadoop"],
            drop_rate=0.1,
            delay_rate=0.1,
            crash_rate=0.05,
            slow_rate=0.05,
            stall_rate=0.02,
            seal_rate=0.01,
            outage_rate=0.1,
        )
        assert FaultPlan.from_seed(7, **kwargs) == FaultPlan.from_seed(7, **kwargs)
        assert FaultPlan.from_seed(7, **kwargs) != FaultPlan.from_seed(8, **kwargs)

    def test_from_seed_respects_zero_rates(self):
        plan = FaultPlan.from_seed(1, horizon=500)
        assert len(plan) == 0

    def test_from_seed_only_emits_valid_seam_kinds(self):
        plan = FaultPlan.from_seed(
            3, horizon=300, nodes=["a"], sources=["s"],
            drop_rate=0.2, crash_rate=0.2, stall_rate=0.2, outage_rate=0.2,
        )
        assert len(plan) > 0
        for spec in plan:
            assert spec.kind in SEAM_KINDS[spec.seam]

    def test_kill_schedule_never_leaves_two_nodes_dead(self):
        plan = FaultPlan.kill_schedule(
            seed=42, ticks=300, rate=0.3, nodes=["w0", "w1", "w2"]
        )
        dead: set[str] = set()
        by_tick = plan.for_seam("tick")
        for tick in sorted(by_tick):
            # revives are ordered after crashes within a tick only by kind
            # sort; apply revive first as the controller does
            for spec in sorted(by_tick[tick], key=lambda s: s.kind != "revive"):
                if spec.kind == "revive":
                    dead.discard(spec.target)
                else:
                    dead.add(spec.target)
            assert len(dead) <= 1

    def test_kill_schedule_deterministic_and_needs_nodes(self):
        a = FaultPlan.kill_schedule(seed=9, ticks=50, rate=0.2, nodes=["x", "y"])
        b = FaultPlan.kill_schedule(seed=9, ticks=50, rate=0.2, nodes=["y", "x"])
        assert a == b
        with pytest.raises(ChaosError):
            FaultPlan.kill_schedule(seed=1, ticks=10, rate=0.5, nodes=[])
