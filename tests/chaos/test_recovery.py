"""Failure-aware execution: retry, failover, deadlines, and determinism.

Every scenario here injects faults through repro.chaos and asserts the
landscape's recovery machinery — coordinator re-planning, replica
failover, broker seal-and-reopen, federation retries — produces the
same answers a fault-free run produces (or fails cleanly when the data
is truly gone).
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.chaos import ChaosController, FaultPlan, FaultSpec
from repro.core.database import Database
from repro.errors import (
    ClusterError,
    CoordinationError,
    DeadlineExceededError,
    FederationError,
    RetryableError,
)
from repro.federation.adapters import HanaAdapter
from repro.federation.sda import SmartDataAccess
from repro.soe.engine import SoeEngine
from repro.util.retry import RetryPolicy


def build_soe(replication: int = 2, **kwargs) -> SoeEngine:
    soe = SoeEngine(node_count=3, node_modes="olap", replication=replication, **kwargs)
    soe.create_table(
        "readings", ["sensor_id", "region", "value"], ["sensor_id"], partition_count=6
    )
    soe.load("readings", [[i, f"r{i % 3}", float(i % 100)] for i in range(600)])
    return soe


BASELINE_GROUPS = sorted(
    build_soe().aggregate("readings", group_by=["region"])[0]
)


class TestReplicaFailover:
    def test_failover_preserves_results_and_is_counted(self):
        soe = build_soe(replication=2)
        soe.cluster.kill("worker0")
        rows, cost = soe.aggregate("readings", group_by=["region"])
        assert sorted(rows) == BASELINE_GROUPS
        # worker0 is the deterministic primary of two partitions
        assert cost.failovers == 2
        assert not cost.degraded  # bound 0 forces full catch-up

    def test_strong_reads_survive_failover(self):
        soe = build_soe(replication=2)
        soe.insert("readings", [[1000 + i, "new", 1.0] for i in range(10)])
        soe.cluster.kill("worker0")
        rows, cost = soe.aggregate("readings", consistency="strong")
        assert rows == [[610]]
        assert cost.failovers >= 1

    def test_stale_replica_within_bound_marks_degraded(self):
        soe = build_soe(replication=2, staleness_bound=100)
        soe.insert("readings", [[2000, "new", 5.0]])  # nobody catches up
        soe.cluster.kill("worker0")
        rows, cost = soe.aggregate("readings")
        # the stale fallback serves without catching up: the insert is
        # invisible, exactly the degraded answer the flag advertises
        assert rows == [[600]]
        assert cost.degraded
        assert cost.failovers == 2

    def test_failover_disabled_raises_retryable_cluster_error(self):
        soe = build_soe(replication=2, failover=False)
        soe.cluster.kill("worker0")
        with pytest.raises(ClusterError) as exc_info:
            soe.aggregate("readings")
        assert isinstance(exc_info.value, RetryableError)

    def test_unreplicated_partition_loss_fails_cleanly(self):
        soe = build_soe(replication=1)
        soe.cluster.kill("worker1")
        with pytest.raises(CoordinationError):
            soe.aggregate("readings")

    def test_joins_survive_failover(self):
        soe = build_soe(replication=2)
        soe.create_table("sensors", ["sensor_id", "kind"], ["sensor_id"], partition_count=6)
        soe.load("sensors", [[i, f"k{i % 2}"] for i in range(600)])
        baseline = sorted(
            soe.join(
                "readings", "sensors", "sensor_id", "sensor_id", "kind",
                [("sum", "value")], strategy="broadcast",
            )[0]
        )
        soe.cluster.kill("worker0")
        for strategy in ("broadcast", "repartition", "colocated"):
            rows, cost = soe.join(
                "readings", "sensors", "sensor_id", "sensor_id", "kind",
                [("sum", "value")], strategy=strategy,
            )
            assert sorted(rows) == baseline, strategy
            assert cost.failovers >= 1, strategy


class TestChaosDrivenRecovery:
    def test_dropped_transfers_are_resent(self):
        plan = FaultPlan(
            [FaultSpec("drop", "transfer", 0), FaultSpec("drop", "transfer", 2)]
        )
        soe = build_soe(replication=2, chaos=ChaosController(plan))
        rows, cost = soe.aggregate("readings", group_by=["region"])
        assert sorted(rows) == BASELINE_GROUPS
        assert cost.retries >= 2
        assert soe.clock.now > 0.0  # backoff charged to the simulated clock

    def test_service_crash_mid_plan_recovers_via_replan(self):
        plan = FaultPlan([FaultSpec("crash", "service", 0, target="worker0")])
        soe = build_soe(replication=2, chaos=ChaosController(plan))
        rows, cost = soe.aggregate("readings", group_by=["region"])
        assert sorted(rows) == BASELINE_GROUPS
        assert cost.retries >= 1
        assert cost.failovers >= 1
        assert not soe.cluster.node("worker0").alive

    def test_tick_schedule_kill_and_revive(self):
        plan = FaultPlan.kill_schedule(
            seed=42, ticks=20, rate=0.3, nodes=["worker0", "worker1", "worker2"]
        )
        controller = ChaosController(plan)
        soe = build_soe(replication=2, chaos=controller)
        for _ in range(20):
            controller.tick()
            rows, _cost = soe.aggregate("readings", group_by=["region"])
            assert sorted(rows) == BASELINE_GROUPS
        assert any(event.kind == "crash" for event in controller.fired)

    def test_deadline_aborts_are_not_retried(self):
        soe = build_soe(replication=2, deadline_seconds=0.0)
        with pytest.raises(DeadlineExceededError):
            soe.aggregate("readings")

    def test_generous_deadline_passes(self):
        soe = build_soe(replication=2, deadline_seconds=60.0)
        rows, _cost = soe.aggregate("readings", group_by=["region"])
        assert sorted(rows) == BASELINE_GROUPS


class TestBrokerLogRecovery:
    def test_chaos_seal_triggers_reconfigure_and_commit_succeeds(self):
        plan = FaultPlan([FaultSpec("seal", "log_append", 0)])
        soe = build_soe(replication=2, chaos=ChaosController(plan))
        lsn = soe.insert("readings", [[5000, "late", 9.0]])
        assert lsn == 0  # the sealed attempt never burned an address
        assert soe.broker.log_recoveries == 1
        assert soe.log.epoch == 1
        rows, _ = soe.aggregate("readings", consistency="strong")
        assert rows == [[601]]

    def test_chaos_stall_is_retried_with_backoff(self):
        plan = FaultPlan(
            [FaultSpec("stall", "log_append", 0), FaultSpec("stall", "log_append", 1)]
        )
        soe = build_soe(replication=2, chaos=ChaosController(plan))
        soe.insert("readings", [[5001, "late", 9.0]])
        assert soe.broker.retries == 2
        assert soe.clock.now > 0.0

    def test_persistent_stall_exhausts_and_reraises(self):
        plan = FaultPlan(
            [FaultSpec("stall", "log_append", event) for event in range(10)]
        )
        soe = build_soe(
            replication=2,
            chaos=ChaosController(plan),
            retry_policy=RetryPolicy(max_attempts=3),
        )
        from repro.errors import LogError

        with pytest.raises(LogError):
            soe.insert("readings", [[5002, "late", 9.0]])
        assert soe.broker.retries == 2  # attempts 1 and 2 of 3


class TestFederationRetry:
    def _sda_with_chaos(self, plan: FaultPlan):
        remote = Database(name="remote")
        remote.execute("CREATE TABLE inventory (sku VARCHAR, qty INT)")
        remote.execute("INSERT INTO inventory VALUES ('a', 5), ('b', 9)")
        controller = ChaosController(plan)
        local = Database(name="local")
        access = SmartDataAccess(local, clock=controller.clock)
        access.register_source(controller.wrap_source(HanaAdapter("erp", remote)))
        return access, controller

    def test_transient_outage_is_retried(self):
        plan = FaultPlan([FaultSpec("outage", "remote_scan", 0)])
        access, controller = self._sda_with_chaos(plan)
        rows = access.pushdown_aggregate("erp", "inventory", [], [("sum", "qty")])
        assert rows == [[14]]
        assert controller.clock.now > 0.0

    def test_virtual_table_scan_retries_and_succeeds(self):
        plan = FaultPlan(
            [FaultSpec("outage", "remote_scan", 0), FaultSpec("outage", "remote_scan", 1)]
        )
        access, _ = self._sda_with_chaos(plan)
        virtual = access.create_virtual_table("inv", "erp", "inventory")
        rows = virtual.scan(snapshot_cid=0)
        assert sorted(rows) == [["a", 5], ["b", 9]]

    def test_persistent_outage_surfaces_federation_error(self):
        plan = FaultPlan(
            [FaultSpec("outage", "remote_scan", event) for event in range(8)]
        )
        access, _ = self._sda_with_chaos(plan)
        with pytest.raises(FederationError):
            access.pushdown_aggregate("erp", "inventory", [], [("sum", "qty")])


class TestDeterministicReplay:
    SEED = 1234

    def _run_once(self):
        """One seeded chaos session; returns every observable artefact."""
        workers = ["worker0", "worker1", "worker2"]
        plan = FaultPlan.from_seed(
            self.SEED,
            horizon=120,
            nodes=workers,
            drop_rate=0.05,
            delay_rate=0.05,
            stall_rate=0.1,
        ) + FaultPlan.kill_schedule(
            self.SEED, ticks=10, rate=0.4, nodes=workers
        )
        controller = ChaosController(plan)
        obs.reset()
        obs.enable()
        try:
            soe = build_soe(replication=2, chaos=controller)
            outcomes = []
            for step in range(10):
                controller.tick()
                if step % 3 == 2:
                    soe.insert("readings", [[9000 + step, "x", 1.0]])
                rows, cost = soe.aggregate(
                    "readings", group_by=["region"], consistency="strong"
                )
                outcomes.append((sorted(rows), cost.retries, cost.failovers))
            counters = {
                key: summary["value"]
                for key, summary in obs.metrics_dump().items()
                if summary.get("type") == "counter"
            }
        finally:
            obs.reset()
        return controller.schedule_fingerprint(), outcomes, counters

    def test_identical_seed_identical_faults_and_recovery(self):
        first = self._run_once()
        second = self._run_once()
        assert first[0] == second[0]  # same faults at the same events
        assert first[1] == second[1]  # same results and recovery counts
        assert first[2] == second[2]  # same obs counters, bit for bit
        assert len(first[0]) > 0  # the schedule actually fired something
