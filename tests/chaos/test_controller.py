"""ChaosController seams: each fault kind fires at its scheduled event."""

from __future__ import annotations

import pytest

from repro import obs
from repro.chaos import ChaosController, FaultPlan, FaultSpec
from repro.errors import (
    LogSealedError,
    LogStallError,
    NodeUnavailableError,
    RemoteSourceUnavailableError,
    TransferDroppedError,
)
from repro.soe.cluster import SimulatedCluster
from repro.soe.services.shared_log import SharedLog


def make_cluster(*node_ids: str) -> SimulatedCluster:
    cluster = SimulatedCluster()
    for node_id in node_ids:
        cluster.add_node(node_id)
    return cluster


class TestTransferSeam:
    def test_drop_fires_at_the_scheduled_event_only(self):
        plan = FaultPlan([FaultSpec("drop", "transfer", 1)])
        cluster = make_cluster("a", "b")
        ChaosController(plan).install(cluster=cluster)
        cluster.transfer("a", "b", 100)  # event 0: clean
        with pytest.raises(TransferDroppedError):
            cluster.transfer("a", "b", 100)  # event 1: dropped
        cluster.transfer("a", "b", 100)  # event 2: clean again

    def test_drop_with_target_filter_skips_other_routes(self):
        plan = FaultPlan([FaultSpec("drop", "transfer", 0, target="c")])
        cluster = make_cluster("a", "b", "c")
        ChaosController(plan).install(cluster=cluster)
        # event 0 is a->b; the fault is bound to node c, so nothing fires
        cluster.transfer("a", "b", 10)
        assert cluster.stats.messages == 1

    def test_delay_charges_extra_seconds_and_the_clock(self):
        plan = FaultPlan([FaultSpec("delay", "transfer", 0, seconds=0.5)])
        cluster = make_cluster("a", "b")
        controller = ChaosController(plan).install(cluster=cluster)
        base = cluster.network.cost(100)
        seconds = cluster.transfer("a", "b", 100)
        assert seconds == pytest.approx(base + 0.5)
        assert controller.clock.now == pytest.approx(0.5)

    def test_local_transfers_never_consult_chaos(self):
        plan = FaultPlan([FaultSpec("drop", "transfer", 0)])
        cluster = make_cluster("a")
        controller = ChaosController(plan).install(cluster=cluster)
        assert cluster.transfer("a", "a", 100) == 0.0
        assert controller.events_seen("transfer") == 0


class TestServiceSeam:
    def test_crash_kills_the_accessed_node_and_raises(self):
        plan = FaultPlan([FaultSpec("crash", "service", 0)])
        cluster = make_cluster("a")
        cluster.node("a").host("svc", object())
        ChaosController(plan).install(cluster=cluster)
        with pytest.raises(NodeUnavailableError):
            cluster.node("a").service("svc")
        assert not cluster.node("a").alive

    def test_crash_with_target_kills_that_node_not_the_caller(self):
        plan = FaultPlan([FaultSpec("crash", "service", 0, target="b")])
        cluster = make_cluster("a", "b")
        cluster.node("a").host("svc", object())
        ChaosController(plan).install(cluster=cluster)
        cluster.node("a").service("svc")  # survives: the victim was b
        assert not cluster.node("b").alive
        assert cluster.node("a").alive

    def test_slow_charges_the_clock_without_failing(self):
        plan = FaultPlan([FaultSpec("slow", "service", 0, seconds=0.25)])
        cluster = make_cluster("a")
        cluster.node("a").host("svc", "payload")
        controller = ChaosController(plan).install(cluster=cluster)
        assert cluster.node("a").service("svc") == "payload"
        assert controller.clock.now == pytest.approx(0.25)

    def test_dead_node_raises_even_without_chaos(self):
        cluster = make_cluster("a")
        cluster.node("a").host("svc", object())
        cluster.kill("a")
        with pytest.raises(NodeUnavailableError):
            cluster.node("a").service("svc")


class TestLogSeam:
    def test_stall_raises_without_burning_an_address(self):
        plan = FaultPlan([FaultSpec("stall", "log_append", 0)])
        log = SharedLog(stripes=1, replication=1)
        ChaosController(plan).install(log=log)
        with pytest.raises(LogStallError):
            log.append({"x": 1})
        assert log.tail == 0  # no hole left behind
        assert log.append({"x": 1}) == 0

    def test_seal_fences_the_log_until_reconfigure(self):
        plan = FaultPlan([FaultSpec("seal", "log_append", 0)])
        log = SharedLog(stripes=1, replication=1)
        ChaosController(plan).install(log=log)
        with pytest.raises(LogSealedError):
            log.append({"x": 1})
        with pytest.raises(LogSealedError):
            log.append({"x": 2})  # still fenced
        assert log.reconfigure() == 1
        assert log.append({"x": 3}) == 0


class FakeSchema:
    def __init__(self, name):
        self.name = name


class FakeSource:
    name = "fake"

    def capabilities(self):
        return {"filter", "aggregate", "sql"}

    def table_schema(self, remote_table):
        return FakeSchema(remote_table)

    def scan(self, remote_table, filters=None):
        return [[1]]

    def aggregate(self, remote_table, group_by, aggregates, filters):
        return [[1]]

    def execute_sql(self, sql):
        return [[1]]


class TestRemoteScanSeam:
    def test_outage_fires_then_clears(self):
        plan = FaultPlan([FaultSpec("outage", "remote_scan", 0, target="fake")])
        controller = ChaosController(plan)
        wrapped = controller.wrap_source(FakeSource())
        with pytest.raises(RemoteSourceUnavailableError):
            wrapped.scan("t")
        assert wrapped.scan("t") == [[1]]

    def test_outage_for_other_source_passes_through(self):
        plan = FaultPlan([FaultSpec("outage", "remote_scan", 0, target="other")])
        controller = ChaosController(plan)
        wrapped = controller.wrap_source(FakeSource())
        assert wrapped.scan("t") == [[1]]

    def test_wrapper_preserves_schema_and_capabilities(self):
        wrapped = ChaosController(FaultPlan()).wrap_source(FakeSource())
        assert wrapped.name == "fake"
        assert "aggregate" in wrapped.capabilities()
        assert wrapped.table_schema("t").name == "t"


class TestTickSeamAndRecords:
    def test_tick_applies_crash_and_revive(self):
        plan = FaultPlan(
            [
                FaultSpec("crash", "tick", 0, target="a"),
                FaultSpec("revive", "tick", 1, target="a"),
            ]
        )
        cluster = make_cluster("a")
        controller = ChaosController(plan).install(cluster=cluster)
        fired = controller.tick()
        assert [event.kind for event in fired] == ["crash"]
        assert not cluster.node("a").alive
        controller.tick()
        assert cluster.node("a").alive
        assert controller.tick() == []  # nothing scheduled at tick 2

    def test_fired_events_and_fingerprint_record_everything(self):
        plan = FaultPlan(
            [
                FaultSpec("drop", "transfer", 0),
                FaultSpec("crash", "tick", 0, target="a"),
            ]
        )
        cluster = make_cluster("a", "b")
        controller = ChaosController(plan).install(cluster=cluster)
        controller.tick()
        with pytest.raises(TransferDroppedError):
            cluster.transfer("a", "b", 10)
        assert controller.schedule_fingerprint() == (
            ("tick", 0, "crash", "a"),
            ("transfer", 0, "drop", None),
        )

    def test_faults_counted_into_obs(self):
        obs.reset()
        obs.enable()
        try:
            plan = FaultPlan([FaultSpec("drop", "transfer", 0)])
            cluster = make_cluster("a", "b")
            ChaosController(plan).install(cluster=cluster)
            with pytest.raises(TransferDroppedError):
                cluster.transfer("a", "b", 10)
            dump = obs.metrics_dump(prefix="chaos.faults")
            assert any("kind=drop" in key for key in dump)
        finally:
            obs.reset()
