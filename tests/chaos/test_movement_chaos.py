"""The seeded kill matrix for online partition movement.

Kill the donor or the recipient at *every* phase boundary of the
five-phase protocol and assert the crash-safety invariants the ISSUE
demands: every partition ends with exactly one catalog owner, the
owning data node agrees with the catalog, no rows are lost (post-move
strong scan equals the pre-move scan once the victim revives), and the
whole schedule is bit-for-bit replayable from its seed/plan.
"""

from __future__ import annotations

import os

import pytest

from repro.chaos import ChaosController, FaultPlan, FaultSpec
from repro.soe.engine import SoeEngine
from repro.soe.movement import PHASES

SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))
ROWS = [[i, f"r{i % 3}", float(i % 97)] for i in range(600)]

#: the flip is the commit point: a kill at or before its boundary (the
#: seam fires *before* the install/swap) rolls back; later kills roll
#: forward
LAST_ABORTING_PHASE = PHASES.index("flip")


def build_soe(chaos: ChaosController | None = None) -> SoeEngine:
    soe = SoeEngine(node_count=3, node_modes="olap", chaos=chaos)
    soe.create_table(
        "readings", ["sensor_id", "region", "value"], ["sensor_id"], partition_count=6
    )
    soe.load("readings", ROWS)
    return soe


def strong_count(soe: SoeEngine) -> int:
    rows, _ = soe.aggregate(
        "readings", aggregates=[("count", None)], consistency="strong"
    )
    return rows[0][0]


def run_move_under_kill(kind: str, phase_index: int):
    plan = FaultPlan([FaultSpec(kind, "partition_move", phase_index)])
    chaos = ChaosController(plan)
    soe = build_soe(chaos=chaos)
    # mix log-committed rows in so the catch-up phase has real work
    soe.insert("readings", [[10_000 + i, "new", 1.0] for i in range(30)])
    pid = soe.catalog.partitions_on("readings", "worker0")[0]
    mover = soe.make_mover()
    state = mover.move("readings", pid, "worker0", "worker1")
    return soe, chaos, mover, state, pid


class TestKillMatrix:
    @pytest.mark.parametrize("phase_index", range(len(PHASES)))
    @pytest.mark.parametrize("kind", ["kill_donor", "kill_recipient"])
    def test_exactly_one_owner_and_no_lost_rows(self, kind, phase_index):
        soe, chaos, _mover, state, pid = run_move_under_kill(kind, phase_index)
        # the scheduled kill actually fired at the intended phase
        assert chaos.schedule_fingerprint() == (
            ("partition_move", phase_index, kind, None),
        )
        assert state.done
        # exactly one catalog owner, and the data node agrees
        owners = soe.catalog.nodes_of("readings", pid)
        assert len(owners) == 1
        owner = owners[0]
        assert pid in soe.data_nodes[owner].owned_partitions("readings")
        for node_id in soe.worker_ids:
            if node_id != owner:
                assert pid not in soe.data_nodes[node_id].owned_partitions(
                    "readings"
                )
        # kills up to the flip boundary roll back (donor authoritative);
        # later kills roll forward (recipient owns)
        if phase_index <= LAST_ABORTING_PHASE:
            assert state.aborted
            assert not state.flip_committed
            assert owner == "worker0"
        else:
            assert not state.aborted
            assert state.flip_committed
            assert state.rolled_forward
            assert owner == "worker1"
        # no rows lost: revive the victim and scan everything
        victim = "worker0" if kind == "kill_donor" else "worker1"
        soe.cluster.revive(victim)
        assert strong_count(soe) == 630

    @pytest.mark.parametrize("phase_index", range(len(PHASES)))
    def test_kill_schedule_is_replayable(self, phase_index):
        first = run_move_under_kill("kill_donor", phase_index)
        second = run_move_under_kill("kill_donor", phase_index)
        soe_a, chaos_a, _mover_a, state_a, pid_a = first
        soe_b, chaos_b, _mover_b, state_b, pid_b = second
        # bit-for-bit: same fired schedule, same terminal move state,
        # same final placement
        assert chaos_a.schedule_fingerprint() == chaos_b.schedule_fingerprint()
        assert pid_a == pid_b
        assert state_a.to_dict() == state_b.to_dict()
        assert soe_a.catalog.placement_of("readings") == soe_b.catalog.placement_of(
            "readings"
        )

    def test_seeded_multi_move_schedule_is_deterministic(self):
        # a seeded plan over many sequential moves: the same seed must
        # fire the same faults and leave the same landscape, twice
        def run(seed: int):
            import random

            rng = random.Random(seed)
            faults = [
                FaultSpec(
                    rng.choice(["kill_donor", "kill_recipient"]),
                    "partition_move",
                    event,
                )
                for event in range(20)
                if rng.random() < 0.2
            ]
            chaos = ChaosController(FaultPlan(faults))
            soe = build_soe(chaos=chaos)
            mover = soe.make_mover()
            for _ in range(4):
                placement = soe.catalog.placement_of("readings")
                donors = sorted(
                    {nodes[0] for nodes in placement.values()},
                    key=lambda n: -len(soe.catalog.partitions_on("readings", n)),
                )
                donor = donors[0]
                pid = soe.catalog.partitions_on("readings", donor)[0]
                target = next(w for w in soe.worker_ids if w != donor)
                mover.move("readings", pid, donor, target)
                for worker in soe.worker_ids:
                    soe.cluster.revive(worker)
            return chaos.schedule_fingerprint(), soe.catalog.placement_of("readings")

        assert run(SEED + 7) == run(SEED + 7)


class TestCrashRecovery:
    @pytest.mark.parametrize("phase_index", range(len(PHASES)))
    def test_recovery_journals_a_terminal_record(self, phase_index):
        """The in-flight recovery leaves a terminal journal record, so a
        restarted mover sharing the journal has nothing left to resume —
        and resuming the move anyway just replays the terminal state."""
        soe, chaos, mover, state, pid = run_move_under_kill(
            "kill_donor", phase_index
        )
        latest = mover.journal.latest(state.move_id)
        assert latest["phase"] in ("done", "aborted")
        restarted = soe.make_mover(journal=mover.journal)
        assert restarted.recover_all() == []
        replayed = restarted.resume(state.move_id)
        assert replayed.phase == state.phase
        assert replayed.flip_committed == state.flip_committed

    def test_queries_keep_running_while_donor_dies_mid_move(self):
        plan = FaultPlan(
            [FaultSpec("kill_donor", "partition_move", PHASES.index("catch_up"))]
        )
        chaos = ChaosController(plan)
        soe = build_soe(chaos=chaos)
        pid = soe.catalog.partitions_on("readings", "worker0")[0]
        counts: list[int] = []

        def hook(state):
            # queries run at every boundary up to the kill; the donor is
            # still alive (the seam fires after the hook), so they succeed
            counts.append(strong_count(soe))

        mover = soe.make_mover(phase_hook=hook)
        state = mover.move("readings", pid, "worker0", "worker1")
        assert state.aborted
        assert counts and all(count == 600 for count in counts)
