"""The seeded partition matrix for online movement under gray failures.

PR 8's kill matrix crashes the donor or recipient at every phase
boundary; this file runs the same 5×2 matrix with *network partitions*
instead — the victim is isolated but keeps running (the zombie-owner
gray failure), the chaos seam does NOT raise, and the move only fails
when a transfer actually hits the cut link. The invariants are the
membership module's Jepsen-style bargain: exactly one valid
lease-holder per partition per epoch, no committed rows lost after the
heal, and the whole schedule bit-for-bit replayable from its seed.
"""

from __future__ import annotations

import os

import pytest

from repro.chaos import ChaosController, FaultPlan, FaultSpec
from repro.soe.engine import SoeEngine
from repro.soe.movement import PHASES

SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))
ROWS = [[i, f"r{i % 3}", float(i % 97)] for i in range(600)]


def build_soe(chaos: ChaosController | None = None):
    soe = SoeEngine(node_count=3, node_modes="olap", chaos=chaos)
    soe.create_table(
        "readings", ["sensor_id", "region", "value"], ["sensor_id"], partition_count=6
    )
    soe.load("readings", ROWS)
    membership = soe.enable_membership()
    return soe, membership


def strong_count(soe: SoeEngine) -> int:
    rows, _ = soe.aggregate(
        "readings", aggregates=[("count", None)], consistency="strong"
    )
    return rows[0][0]


def run_move_under_partition(kind: str, phase_index: int):
    plan = FaultPlan([FaultSpec(kind, "partition_move", phase_index)])
    chaos = ChaosController(plan)
    soe, membership = build_soe(chaos=chaos)
    soe.insert("readings", [[10_000 + i, "new", 1.0] for i in range(30)])
    pid = soe.catalog.partitions_on("readings", "worker0")[0]
    mover = soe.make_mover()
    state = mover.move("readings", pid, "worker0", "worker1")
    return soe, membership, chaos, mover, state, pid


class TestPartitionMatrix:
    @pytest.mark.parametrize("phase_index", range(len(PHASES)))
    @pytest.mark.parametrize("kind", ["partition_donor", "partition_recipient"])
    def test_exactly_one_owner_and_no_lost_rows(self, kind, phase_index):
        soe, membership, chaos, _mover, state, pid = run_move_under_partition(
            kind, phase_index
        )
        # the scheduled isolation actually fired at the intended phase
        assert chaos.schedule_fingerprint() == (
            ("partition_move", phase_index, kind, None),
        )
        # gray failure: nobody died — the victim kept running the whole time
        assert all(node.alive for node in soe.cluster.nodes.values())
        assert state.done
        # exactly one catalog owner, and the data node agrees
        owners = soe.catalog.nodes_of("readings", pid)
        assert len(owners) == 1
        owner = owners[0]
        assert pid in soe.data_nodes[owner].owned_partitions("readings")
        for node_id in soe.worker_ids:
            if node_id != owner:
                assert pid not in soe.data_nodes[node_id].owned_partitions(
                    "readings"
                )
        # a terminal move under a partition lands in one of exactly two
        # places: rolled back (donor authoritative) or committed
        # (recipient owns) — never both, never neither
        if state.flip_committed:
            assert owner == "worker1"
        else:
            assert state.aborted
            assert owner == "worker0"
        # the Jepsen invariant holds over everything journaled
        assert membership.check_invariants() == []
        # no committed rows lost: heal the network and scan everything
        soe.cluster.heal()
        assert strong_count(soe) == 630

    @pytest.mark.parametrize("phase_index", range(len(PHASES)))
    def test_front_door_writes_still_land_after_heal(self, phase_index):
        soe, membership, _chaos, _mover, _state, pid = run_move_under_partition(
            "partition_donor", phase_index
        )
        soe.cluster.heal()
        # one membership tick re-seats any lease that lapsed during the
        # partition; the coordinator then routes by the live lease view,
        # so front-door traffic works whatever the move's outcome was
        step = membership.step()
        assert membership.check_invariants() == []
        assert all(
            membership.holder("readings", pid) is not None for pid in range(6)
        ), step
        soe.insert("readings", [[20_000, "post", 2.0]])
        soe.catch_up_all()
        assert strong_count(soe) == 631
        assert membership.check_invariants() == []

    @pytest.mark.parametrize("kind", ["partition_donor", "partition_recipient"])
    @pytest.mark.parametrize("phase_index", range(len(PHASES)))
    def test_partition_schedule_is_replayable(self, kind, phase_index):
        first = run_move_under_partition(kind, phase_index)
        second = run_move_under_partition(kind, phase_index)
        _soe_a, membership_a, chaos_a, _mover_a, state_a, pid_a = first
        _soe_b, membership_b, chaos_b, _mover_b, state_b, pid_b = second
        assert chaos_a.schedule_fingerprint() == chaos_b.schedule_fingerprint()
        assert pid_a == pid_b
        assert state_a.to_dict() == state_b.to_dict()
        assert first[0].catalog.placement_of("readings") == second[
            0
        ].catalog.placement_of("readings")
        # the lease journals agree entry for entry — epochs included
        assert (
            membership_a.leases.journal.all_entries()
            == membership_b.leases.journal.all_entries()
        )


class TestRollingPartitions:
    def run(self, seed: int):
        plan = FaultPlan.partition_schedule(
            seed,
            ticks=24,
            rate=0.35,
            nodes=["worker0", "worker1", "worker2"],
            heal_after=3,
        )
        chaos = ChaosController(plan)
        soe, membership = build_soe(chaos=chaos)
        accepted = 0
        for tick in range(24):
            chaos.tick()
            membership.step()
            try:
                soe.insert("readings", [[30_000 + tick, "live", 0.5]])
                accepted += 1
            except Exception:
                pass  # a cut toward the log replica set can drop a write
        soe.cluster.heal()
        for _ in range(6):
            membership.step()
        soe.catch_up_all()
        return (
            chaos.schedule_fingerprint(),
            accepted,
            strong_count(soe),
            soe.catalog.placement_of("readings"),
            membership.check_invariants(),
        )

    def test_rolling_isolations_preserve_committed_rows(self):
        fingerprint, accepted, count, _placement, violations = self.run(SEED + 11)
        assert fingerprint  # the seeded schedule fired at least one fault
        assert violations == []
        # every acknowledged write survived the partitions and the heal
        assert count == 600 + accepted

    def test_rolling_schedule_is_deterministic(self):
        assert self.run(SEED + 11) == self.run(SEED + 11)
