"""Tests for the shared catalog."""

import pytest

from repro.core import types
from repro.core.catalog import Catalog
from repro.core.schema import schema
from repro.columnstore.table import ColumnTable
from repro.errors import DuplicateObjectError, TableNotFoundError


def make_table(name="t"):
    return ColumnTable(name, schema(("a", types.INTEGER)))


def test_register_and_lookup_case_insensitive():
    catalog = Catalog()
    catalog.register_table(make_table("Orders"))
    assert catalog.has_table("ORDERS")
    assert catalog.table("orders").name == "Orders"


def test_duplicate_table_rejected():
    catalog = Catalog()
    catalog.register_table(make_table())
    with pytest.raises(DuplicateObjectError):
        catalog.register_table(make_table())


def test_drop_unknown_table():
    with pytest.raises(TableNotFoundError):
        Catalog().drop_table("ghost")


def test_drop_removes_annotations():
    catalog = Catalog()
    catalog.register_table(make_table())
    catalog.annotate("t", "aging_rule", "x")
    catalog.drop_table("t")
    catalog.register_table(make_table())
    assert catalog.annotation("t", "aging_rule") is None


def test_views_registry():
    catalog = Catalog()
    catalog.register_view("h", object())
    assert catalog.has_view("H")
    with pytest.raises(DuplicateObjectError):
        catalog.register_view("h", object())
    with pytest.raises(TableNotFoundError):
        catalog.view("missing")


def test_annotations_round_trip():
    catalog = Catalog()
    catalog.annotate("t", "key_generation", "monotone")
    assert catalog.annotation("t", "key_generation") == "monotone"
    assert catalog.annotation("t", "other", 42) == 42
    assert catalog.annotations("t") == {"key_generation": "monotone"}
