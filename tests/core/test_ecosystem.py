"""Tests for the ecosystem orchestrator."""

import pytest

from repro.core.ecosystem import Ecosystem
from repro.errors import ReproError


def test_lazy_components_raise_before_attach():
    eco = Ecosystem()
    with pytest.raises(ReproError):
        _ = eco.soe
    with pytest.raises(ReproError):
        _ = eco.hdfs


def test_attach_is_idempotent():
    eco = Ecosystem()
    first = eco.attach_hadoop(datanodes=2)
    second = eco.attach_hadoop(datanodes=9)
    assert first is second
    soe_a = eco.attach_soe(node_count=2)
    soe_b = eco.attach_soe(node_count=7)
    assert soe_a is soe_b


def test_session_and_hierarchy_functions_preinstalled():
    eco = Ecosystem()
    from repro.engines.graph.hierarchy import HierarchyView

    eco.hana.catalog.register_view("h", HierarchyView("h", {"r": None, "c": "r"}))
    session = eco.session()
    assert session.query("SELECT HIER_DESCENDANT_COUNT('h', 'r') AS d").scalar() == 1


def test_business_object_repository():
    eco = Ecosystem()
    eco.hana.execute("CREATE TABLE orders (id INT)")
    eco.deploy_business_object(
        "SalesOrder", {"tables": ["orders"], "key": "id", "aging": "status = 'closed'"}
    )
    assert eco.business_objects() == ["salesorder"]
    assert eco.business_object("SalesOrder")["key"] == "id"
    assert eco.hana.catalog.annotation("orders", "business_object") == "salesorder"
    with pytest.raises(ReproError):
        eco.business_object("ghost")


def test_unified_statistics_and_health():
    eco = Ecosystem()
    eco.attach_hadoop(datanodes=2)
    eco.attach_soe(node_count=2)
    stats = eco.statistics()
    assert {"hana", "soe", "hdfs", "yarn", "hive"} <= set(stats)
    health = eco.health_check()
    assert health["hana"] == "ok"
    eco.hdfs.kill_datanode("dn0")
    assert "degraded" in eco.health_check()["hdfs"]


def test_federation_shortcuts():
    eco = Ecosystem()
    eco.attach_hadoop(datanodes=2)
    eco.hdfs.write_file("/t.csv", ["1", "2"])
    eco.hive.create_external_table("nums", "/t.csv", [("n", "INT")])
    eco.federate_hive()
    eco.sda.create_virtual_table("v_nums", "hadoop", "nums")
    assert eco.hana.query("SELECT SUM(n) FROM v_nums").scalar() == 3
    assert "sda" in eco.statistics()
