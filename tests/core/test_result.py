"""Tests for QueryResult."""

from repro.core.result import QueryResult


def test_scalar_and_first():
    result = QueryResult(["n"], [[5]])
    assert result.scalar() == 5
    assert result.first() == [5]
    assert QueryResult(["n"], []).scalar() is None
    assert QueryResult(["n"], []).first() is None


def test_column_access_and_dicts():
    result = QueryResult(["a", "b"], [[1, "x"], [2, "y"]])
    assert result.column("b") == ["x", "y"]
    assert result.to_dicts() == [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]


def test_iteration_len_bool():
    result = QueryResult(["a"], [[1], [2]])
    assert len(result) == 2
    assert bool(result)
    assert [row for row in result] == [[1], [2]]
    assert not QueryResult(["a"], [])


def test_format_table_truncates():
    result = QueryResult(["a"], [[i] for i in range(30)])
    rendered = result.format_table(max_rows=5)
    assert "more rows" in rendered
    assert rendered.splitlines()[0].strip() == "a"


def test_format_table_renders_null():
    rendered = QueryResult(["a"], [[None]]).format_table()
    assert "NULL" in rendered
