"""Tests for TableSchema and ColumnSpec."""

import pytest

from repro.core import types
from repro.core.schema import ColumnSpec, TableSchema, schema
from repro.errors import ColumnNotFoundError, SchemaError


def make():
    return schema(
        ("id", types.INTEGER),
        ("name", types.VARCHAR),
        ("amount", types.DOUBLE),
        primary_key=["id"],
    )


def test_duplicate_column_rejected():
    with pytest.raises(SchemaError):
        schema(("a", types.INTEGER), ("A", types.VARCHAR))


def test_primary_key_must_exist():
    with pytest.raises(SchemaError):
        schema(("a", types.INTEGER), primary_key=["missing"])


def test_position_is_case_insensitive():
    sch = make()
    assert sch.position("ID") == 0
    assert sch.position("Amount") == 2
    with pytest.raises(ColumnNotFoundError):
        sch.position("nope")


def test_coerce_row_positional():
    sch = make()
    assert sch.coerce_row(["1", "x", "2.5"]) == [1, "x", 2.5]


def test_coerce_row_wrong_width():
    with pytest.raises(SchemaError):
        make().coerce_row([1, "x"])


def test_coerce_row_mapping_fills_nulls():
    sch = make()
    assert sch.coerce_row({"id": 5, "amount": 1}) == [5, None, 1.0]


def test_coerce_row_mapping_unknown_column():
    with pytest.raises(SchemaError):
        make().coerce_row({"id": 1, "bogus": 2})


def test_not_null_enforced():
    sch = TableSchema([ColumnSpec("a", types.INTEGER, nullable=False)])
    with pytest.raises(SchemaError):
        sch.coerce_row([None])


def test_default_applied_when_missing():
    sch = TableSchema([ColumnSpec("a", types.INTEGER, default=9)])
    assert sch.coerce_row([None]) == [9]


def test_key_of():
    sch = make()
    assert sch.key_of([7, "x", 1.0]) == (7,)


def test_add_column_for_flexible_tables():
    sch = make()
    sch.add_column(ColumnSpec("extra", types.VARCHAR))
    assert sch.position("extra") == 3
    with pytest.raises(SchemaError):
        sch.add_column(ColumnSpec("EXTRA", types.VARCHAR))
