"""Tests for the Database facade."""

import pytest

from repro.core import types
from repro.core.database import Database
from repro.core.schema import schema
from repro.errors import DuplicateObjectError, PlanError, TableNotFoundError


def test_programmatic_create_and_drop():
    db = Database()
    db.create_table("t", schema(("a", types.INTEGER)))
    assert db.catalog.has_table("t")
    db.drop_table("t")
    assert not db.catalog.has_table("t")


def test_create_if_not_exists_and_duplicate():
    db = Database()
    db.execute("CREATE TABLE t (a INT)")
    db.execute("CREATE TABLE IF NOT EXISTS t (a INT)")
    with pytest.raises(DuplicateObjectError):
        db.execute("CREATE TABLE t (a INT)")


def test_drop_if_exists():
    db = Database()
    db.execute("DROP TABLE IF EXISTS ghost")
    with pytest.raises(TableNotFoundError):
        db.execute("DROP TABLE ghost")


def test_flexible_table_via_sql():
    db = Database()
    db.execute("CREATE FLEXIBLE TABLE f (id INT)")
    db.execute("INSERT INTO f (id, color) VALUES (1, 'red')")
    db.execute("INSERT INTO f (id, shape) VALUES (2, 'round')")
    rows = db.query("SELECT id, color, shape FROM f ORDER BY id").rows
    assert rows == [[1, "red", None], [2, None, "round"]]


def test_merge_delta_statement_reports_stats():
    db = Database()
    db.execute("CREATE TABLE t (a INT)")
    db.execute("INSERT INTO t VALUES (1), (2)")
    result = db.execute("MERGE DELTA OF t")
    assert result.rows[0][0] == 2  # rows merged
    assert db.table("t").delta_rows() == 0


def test_merge_all():
    db = Database()
    db.execute("CREATE TABLE a (x INT)")
    db.execute("CREATE TABLE b (x INT)")
    db.execute("INSERT INTO a VALUES (1)")
    db.execute("INSERT INTO b VALUES (1), (2)")
    stats = db.merge_all()
    assert stats.rows_merged == 3


def test_transaction_statements_rejected_at_database_level():
    db = Database()
    with pytest.raises(PlanError):
        db.execute("BEGIN")


def test_dml_autocommit_rolls_back_on_error():
    db = Database()
    db.execute("CREATE TABLE t (a INT NOT NULL)")
    with pytest.raises(Exception):
        db.execute("INSERT INTO t VALUES (1), (NULL)")
    assert db.query("SELECT COUNT(*) FROM t").scalar() == 0


def test_statistics_snapshot():
    db = Database()
    db.execute("CREATE TABLE t (a INT)")
    db.execute("INSERT INTO t VALUES (1)")
    stats = db.statistics()
    assert stats["commits"] >= 1
    assert any(entry["table"] == "t" for entry in stats["tables"])


def test_range_partitioned_table_via_sql_prunes():
    db = Database()
    db.execute(
        "CREATE TABLE events (y INT, v DOUBLE) PARTITION BY RANGE(y) BOUNDARIES (2013, 2015)"
    )
    db.execute(
        "INSERT INTO events VALUES (2012, 1.0), (2013, 2.0), (2014, 3.0), (2015, 4.0)"
    )
    table = db.table("events")
    assert [len(p) for p in table.partitions] == [1, 2, 1]
    from repro.sql.executor import execute as run
    from repro.sql.parser import parse
    from repro.sql.planner import plan_select

    plan = plan_select(parse("SELECT SUM(v) FROM events WHERE y >= 2015"), db.catalog)
    context = db._context(None, None)
    batch = run(plan, context)
    assert batch.rows() == [[4.0]]
    assert context.metrics["partitions_pruned"] == 2


def test_session_default_parameters_flow_into_queries():
    from repro.core.session import Session

    db = Database()
    session = Session(db, parameters={"currency_rates": {("USD", "EUR"): 0.5}})
    assert session.query("SELECT CONVERT_CURRENCY(10, 'USD', 'EUR') AS v").scalar() == 5.0
    # per-call parameters override session defaults
    assert session.query(
        "SELECT CONVERT_CURRENCY(10, 'USD', 'EUR') AS v",
        currency_rates={("USD", "EUR"): 2.0},
    ).scalar() == 20.0


def test_database_level_default_parameters():
    db = Database()
    db.parameters["unit_factors"] = {("kg", "g"): 1000.0}
    assert db.query("SELECT CONVERT_UNIT(3, 'kg', 'g') AS v").scalar() == 3000.0


def test_error_hierarchy_is_catchable_at_the_root():
    from repro import errors

    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception) and obj is not errors.ReproError:
            if issubclass(obj, errors.ReproError):
                assert issubclass(obj, errors.ReproError)
    db = Database()
    import pytest as _pytest

    with _pytest.raises(errors.ReproError):
        db.query("SELECT * FROM nope")
    with _pytest.raises(errors.ReproError):
        db.execute("SELECT !!!")
