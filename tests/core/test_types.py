"""Tests for repro.core.types: coercion, ranges, parameterised types."""

import datetime as dt

import pytest

from repro.core import types
from repro.errors import TypeMismatchError


def test_integer_coercion_accepts_strings_and_floats():
    assert types.INTEGER.coerce("42") == 42
    assert types.INTEGER.coerce(7.0) == 7


def test_integer_rejects_fractional_float():
    with pytest.raises(TypeMismatchError):
        types.INTEGER.coerce(1.5)


def test_integer_range_check():
    with pytest.raises(TypeMismatchError):
        types.INTEGER.coerce(2**31)
    assert types.BIGINT.coerce(2**31) == 2**31
    with pytest.raises(TypeMismatchError):
        types.BIGINT.coerce(2**63)


def test_null_passes_through_every_type():
    for dtype in (types.INTEGER, types.VARCHAR, types.DATE, types.DOUBLE):
        assert dtype.coerce(None) is None


def test_varchar_length_enforced():
    bounded = types.type_from_name("varchar", length=3)
    assert bounded.coerce("abc") == "abc"
    with pytest.raises(TypeMismatchError):
        bounded.coerce("abcd")


def test_varchar_coerces_numbers():
    assert types.VARCHAR.coerce(12) == "12"


def test_boolean_coercion():
    assert types.BOOLEAN.coerce("true") is True
    assert types.BOOLEAN.coerce(0) is False
    with pytest.raises(TypeMismatchError):
        types.BOOLEAN.coerce("maybe")


def test_date_from_iso_and_epoch_days():
    assert types.DATE.coerce("2014-03-01") == dt.date(2014, 3, 1)
    assert types.DATE.coerce(0) == dt.date(1970, 1, 1)
    assert types.DATE.coerce(dt.datetime(2014, 3, 1, 12)) == dt.date(2014, 3, 1)


def test_timestamp_from_string_and_seconds():
    assert types.TIMESTAMP.coerce("2014-03-01T10:30:00") == dt.datetime(2014, 3, 1, 10, 30)
    assert types.TIMESTAMP.coerce(60) == dt.datetime(1970, 1, 1, 0, 1)


def test_decimal_rounds_to_scale():
    money = types.type_from_name("decimal", precision=10, scale=2)
    assert money.coerce(1.005) == pytest.approx(1.0, abs=0.011)
    assert money.coerce("3.14159") == 3.14


def test_geometry_stores_wkt():
    assert types.GEOMETRY.coerce("POINT (1 2)") == "POINT (1 2)"

    class FakeGeom:
        def wkt(self):
            return "POINT (3 4)"

    assert types.GEOMETRY.coerce(FakeGeom()) == "POINT (3 4)"


def test_document_canonicalises_json():
    a = types.DOCUMENT.coerce({"b": 1, "a": 2})
    b = types.DOCUMENT.coerce('{"a": 2, "b": 1}')
    assert a == b


def test_type_from_name_unknown():
    with pytest.raises(TypeMismatchError):
        types.type_from_name("blob")


def test_type_aliases():
    assert types.type_from_name("INT") == types.INTEGER
    assert types.type_from_name("string") == types.VARCHAR
    assert types.type_from_name("json") == types.DOCUMENT


def test_classification_flags():
    assert types.DOUBLE.is_numeric
    assert types.DATE.is_temporal
    assert types.GEOMETRY.is_engine_type
    assert not types.VARCHAR.is_numeric
