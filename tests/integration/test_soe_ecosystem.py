"""Integration: SOE inside the Ecosystem, containers, federation."""

from repro.core.ecosystem import Ecosystem
from repro.soe.containers import ContainerRuntime, ResourceLimits


def test_ecosystem_federates_soe_tables():
    eco = Ecosystem()
    soe = eco.attach_soe(node_count=2)
    soe.create_table("readings", ["sensor_id", "value"], ["sensor_id"], partition_count=4)
    soe.load("readings", [[i, float(i % 10)] for i in range(200)])
    eco.federate_soe()
    rows = eco.sda.pushdown_aggregate(
        "soe", "readings", [], [("count", None), ("sum", "value")]
    )
    assert rows[0][0] == 200
    # virtual table over the SOE joins with a HANA-side table
    eco.sda.create_virtual_table("v_readings", "soe", "readings")
    eco.hana.execute("CREATE TABLE hot_sensors (sensor_id INT)")
    eco.hana.execute("INSERT INTO hot_sensors VALUES (1), (2), (3)")
    joined = eco.hana.query(
        "SELECT COUNT(*) FROM v_readings v JOIN hot_sensors h "
        "ON TO_INT(v.sensor_id) = h.sensor_id"
    ).scalar()
    assert joined == 3


def test_soe_services_run_in_containers():
    eco = Ecosystem()
    soe = eco.attach_soe(node_count=2)
    runtime = ContainerRuntime(soe.cluster, node_cpu_capacity=8)
    containers = []
    for worker in soe.worker_ids:
        service = soe.cluster.node(worker).service("v2lqp")
        containers.append(
            runtime.deploy("v2lqp-containerised", service, node_id=worker,
                           limits=ResourceLimits(cpu_shares=2))
        )
    stats = runtime.statistics()
    assert stats["containers"] == 2
    assert all(c.state == "RUNNING" for c in containers)
    # the containerised services still answer queries
    soe.create_table("t", ["k"], ["k"], partition_count=4)
    soe.load("t", [[i] for i in range(50)])
    rows, _cost = soe.aggregate("t", aggregates=[("count", None)])
    assert rows == [[50]]


def test_unified_monitoring_covers_everything():
    eco = Ecosystem()
    eco.attach_soe(node_count=2)
    eco.attach_hadoop(datanodes=2)
    soe = eco.soe
    soe.create_table("t", ["k"], ["k"])
    soe.load("t", [[1], [2]])
    eco.hdfs.write_file("/x", ["line"])
    stats = eco.statistics()
    assert stats["soe"]["nodes"] == 3
    assert stats["hdfs"]["files"] == 1
    assert stats["hana"]["tables"] == []
