"""Integration: the five Section V real-world scenarios, end to end."""

import pytest

from repro.core.ecosystem import Ecosystem
from repro.workloads.generators import (
    dispenser_events,
    hurricane_tracks,
    pipeline_graph,
    stock_ticks,
)


def test_scenario_1_financial_analytics_with_external_algebra():
    """V.1: stock prices in the RDBMS + linear-algebra correlation via the
    external-operator protocol, without manual data export."""
    eco = Ecosystem()
    eco.hana.execute("CREATE TABLE ticks (symbol VARCHAR, ts BIGINT, price DOUBLE)")
    ticks = stock_ticks(symbols=4, days=120)
    txn = eco.hana.begin()
    for symbol, series in ticks.items():
        for ts, price in series:
            eco.hana.table("ticks").insert([symbol, ts, price], txn)
    eco.hana.commit(txn)

    # pivot returns per symbol straight out of SQL
    symbols = sorted(ticks)
    columns = {}
    for symbol in symbols:
        prices = eco.hana.query(
            f"SELECT price FROM ticks WHERE symbol = '{symbol}' ORDER BY ts"
        ).column("price")
        import numpy as np

        columns[symbol] = list(np.diff(np.asarray(prices)) / np.asarray(prices[:-1]))

    from repro.engines.ml.rops import make_r_adapter

    provider = make_r_adapter()
    rows = [list(values) for values in zip(*(columns[s] for s in symbols))]
    header, correlation = provider.operator("cor")(symbols, rows)
    matrix = {row[0]: dict(zip(header[1:], row[1:])) for row in correlation}
    assert matrix["SYM0"]["SYM1"] > 0.5  # the planted common factor
    assert matrix["SYM0"]["SYM0"] == pytest.approx(1.0)


def test_scenario_2_predictive_maintenance_hadoop_plus_erp():
    """V.2: sensor data in Hadoop correlated with ERP production events."""
    eco = Ecosystem()
    hdfs = eco.attach_hadoop(datanodes=3, block_size_lines=100)
    # sensor archive in HDFS: machine 7 runs hot before each failure window
    lines = []
    for hour in range(500):
        for machine in range(10):
            temperature = 60.0 + (25.0 if machine == 7 and hour % 100 > 90 else 0.0)
            lines.append(f"{machine},{hour},{temperature}")
    hdfs.write_file("/iot/temps.csv", lines)
    eco.hive.create_external_table(
        "temps", "/iot/temps.csv",
        [("machine", "INT"), ("hour", "INT"), ("temp", "DOUBLE")],
    )
    # ERP: production problems recorded relationally
    eco.hana.execute("CREATE TABLE incidents (machine INT, hour INT)")
    eco.hana.execute("INSERT INTO incidents VALUES (7, 95), (7, 195), (7, 395)")

    eco.federate_hive()
    eco.sda.create_virtual_table("v_temps", "hadoop", "temps")
    rows = eco.hana.query(
        "SELECT t.machine, AVG(t.temp) AS avg_temp FROM v_temps t "
        "JOIN incidents i ON t.machine = i.machine AND t.hour = i.hour - 1 "
        "GROUP BY t.machine"
    ).rows
    assert rows == [[7, 85.0]]  # elevated temperature right before failures


def test_scenario_3_dispenser_routing():
    """V.3: streaming fill-grades trigger refills; geo routing for the
    service team; ERP holds the master data."""
    eco = Ecosystem()
    eco.hana.execute(
        "CREATE TABLE dispensers (dispenser_id INT PRIMARY KEY, loc GEOMETRY)"
    )
    for dispenser in range(20):
        x, y = dispenser % 5, dispenser // 5
        eco.hana.execute(
            f"INSERT INTO dispensers VALUES ({dispenser}, 'POINT ({x} {y})')"
        )
    eco.hana.execute(
        "CREATE TABLE refill_alerts (dispenser_id INT, mean DOUBLE, threshold DOUBLE, alert VARCHAR)"
    )
    from repro.streaming.esp import SlidingWindowThreshold, StreamProcessor, TableSink

    processor = StreamProcessor(
        [SlidingWindowThreshold("dispenser_id", "fill_grade", size=5, threshold=25.0)],
        [TableSink(eco.hana, "refill_alerts", batch_size=5)],
    )
    processor.push_many(dispenser_events(dispensers=20, steps=180))
    processor.finish()
    alerts = eco.hana.query(
        "SELECT COUNT(DISTINCT dispenser_id) FROM refill_alerts"
    ).scalar()
    assert alerts > 0

    # route the service tour near the depot: alerts within distance 3
    nearby = eco.hana.query(
        "SELECT d.dispenser_id FROM dispensers d "
        "JOIN refill_alerts a ON d.dispenser_id = a.dispenser_id "
        "WHERE ST_WITHIN_DISTANCE(d.loc, ST_POINT(0, 0), 3) "
        "ORDER BY d.dispenser_id"
    ).rows
    for (dispenser_id,) in nearby:
        x, y = dispenser_id % 5, dispenser_id // 5
        assert (x**2 + y**2) ** 0.5 <= 3


def test_scenario_4_hurricane_risk():
    """V.4: hurricane history on HDFS + customers in the geo store →
    risk scores back into ERP."""
    eco = Ecosystem()
    hdfs = eco.attach_hadoop(datanodes=3, block_size_lines=200)
    tracks = hurricane_tracks(storms=30)
    hdfs.write_file(
        "/weather/tracks.csv",
        (",".join(str(v) for v in row) for row in tracks),
    )
    eco.hive.create_external_table(
        "tracks", "/weather/tracks.csv",
        [("storm", "INT"), ("step", "INT"), ("lon", "DOUBLE"),
         ("lat", "DOUBLE"), ("wind", "DOUBLE")],
    )
    eco.hana.execute(
        "CREATE TABLE customers (cid INT PRIMARY KEY, lon DOUBLE, lat DOUBLE, premium DOUBLE)"
    )
    eco.hana.execute(
        "INSERT INTO customers VALUES (1, -75.0, 25.0, 100.0), (2, 10.0, 50.0, 100.0)"
    )
    eco.federate_hive()
    eco.sda.create_virtual_table("v_tracks", "hadoop", "tracks")

    # risk = number of historical track points within ~5 degrees
    risky = {}
    for cid, lon, lat in [(1, -75.0, 25.0), (2, 10.0, 50.0)]:
        count = eco.hana.query(
            f"SELECT COUNT(*) FROM v_tracks WHERE lon BETWEEN {lon - 5} AND {lon + 5} "
            f"AND lat BETWEEN {lat - 5} AND {lat + 5}"
        ).scalar()
        risky[cid] = count
    assert risky[1] > 0       # Florida customer sees hurricanes
    assert risky[2] == 0      # Bavarian customer does not

    # write the model back to the ERP (the paper's "computed models have
    # to go back to the ERP for consumption")
    eco.hana.execute("CREATE TABLE risk_profile (cid INT, risk_points INT)")
    for cid, points in risky.items():
        eco.hana.execute(f"INSERT INTO risk_profile VALUES ({cid}, {points})")
    joined = eco.hana.query(
        "SELECT c.cid, c.premium * (1 + r.risk_points / 100.0) AS adjusted "
        "FROM customers c JOIN risk_profile r ON c.cid = r.cid ORDER BY c.cid"
    ).rows
    assert joined[0][1] > 100.0
    assert joined[1][1] == 100.0


def test_scenario_5_pipeline_evacuation():
    """V.5: the gas-pipeline graph + geo positions; a leak triggers an
    evacuation plan in real time."""
    eco = Ecosystem()
    junctions, pipes = pipeline_graph(segments=50)
    eco.hana.execute("CREATE TABLE junctions (id INT PRIMARY KEY, x DOUBLE, y DOUBLE)")
    eco.hana.execute("CREATE TABLE pipes (s INT, t INT, length DOUBLE)")
    txn = eco.hana.begin()
    eco.hana.table("junctions").insert_many(junctions, txn)
    # pipes are walkable in both directions for evacuation
    eco.hana.table("pipes").insert_many(pipes, txn)
    eco.hana.table("pipes").insert_many([[t, s, w] for s, t, w in pipes], txn)
    eco.hana.commit(txn)

    from repro.engines.graph.algorithms import evacuation_plan, reachable
    from repro.engines.graph.graph import create_graph_view

    graph = create_graph_view(
        eco.hana, "pipeline", "junctions", "id", "pipes", "s", "t", "length"
    )
    leak = 25
    exits = [0, 49]
    plan = evacuation_plan(graph, leak=leak, exits=exits, blocked_radius=1)
    blocked = {leak} | {v for v in graph.vertices() if plan[v] is None}
    # every junction that can reach an exit without the leak zone has a route
    routed = [v for v, route in plan.items() if route is not None]
    assert len(routed) > 30
    for vertex in routed:
        cost, path = plan[vertex]
        assert path[0] == vertex
        assert path[-1] in exits
        assert not (set(path) & {leak})
        # the route length matches the geo distance of its hops roughly
        assert cost >= 0
