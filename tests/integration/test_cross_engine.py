"""Integration: cross-engine combinations the paper motivates (§I, §V)."""

import pytest

from repro.core.database import Database
from repro.engines.geo.geometry import Point
from repro.engines.graph.graph import create_graph_view
from repro.engines.graph.algorithms import shortest_path
from repro.engines.text.index import create_text_index


def test_text_plus_relational_in_one_query():
    db = Database()
    db.execute("CREATE TABLE tickets (id INT, region VARCHAR, body VARCHAR)")
    db.execute(
        "INSERT INTO tickets VALUES "
        "(1, 'EU', 'database crash urgent'), (2, 'US', 'printer jam'), "
        "(3, 'EU', 'database slow today'), (4, 'EU', 'coffee machine')"
    )
    create_text_index(db, "tickets", "body")
    rows = db.query(
        "SELECT region, COUNT(*) AS n FROM tickets "
        "WHERE CONTAINS(body, 'database') GROUP BY region"
    ).rows
    assert rows == [["EU", 2]]


def test_geo_plus_relational_revenue_by_area():
    db = Database()
    db.execute("CREATE TABLE stores (id INT, loc GEOMETRY, revenue DOUBLE)")
    db.execute(
        "INSERT INTO stores VALUES "
        "(1, 'POINT (1 1)', 100.0), (2, 'POINT (9 9)', 50.0), (3, 'POINT (2 1)', 70.0)"
    )
    rows = db.query(
        "SELECT SUM(revenue) FROM stores "
        "WHERE ST_CONTAINS('POLYGON ((0 0, 4 0, 4 4, 0 4))', loc)"
    ).rows
    assert rows == [[170.0]]


def test_graph_routing_with_geo_weights():
    db = Database()
    db.execute("CREATE TABLE sites (id INT, x DOUBLE, y DOUBLE)")
    db.execute("CREATE TABLE roads (s INT, t INT, km DOUBLE)")
    sites = [(0, 0.0, 0.0), (1, 3.0, 4.0), (2, 6.0, 8.0)]
    for site in sites:
        db.execute(f"INSERT INTO sites VALUES {site}")
    # weight edges by true euclidean distance computed in the geo engine
    from repro.engines.geo.operations import euclidean

    for s, t in [(0, 1), (1, 2), (0, 2)]:
        a = Point(sites[s][1], sites[s][2])
        b = Point(sites[t][1], sites[t][2])
        db.execute(f"INSERT INTO roads VALUES ({s}, {t}, {euclidean(a, b)})")
    graph = create_graph_view(db, "roads_g", "sites", "id", "roads", "s", "t", "km")
    cost, path = shortest_path(graph, 0, 2)
    assert cost == pytest.approx(10.0)
    assert path in ([0, 2], [0, 1, 2])  # both cost exactly 10


def test_document_column_in_relational_query():
    db = Database()
    db.execute("CREATE TABLE orders (id INT, doc DOCUMENT)")
    import json

    for i, country in enumerate(["DE", "US", "DE"]):
        payload = json.dumps({"customer": {"country": country}, "total": 10 * (i + 1)})
        txn = db.begin()
        db.table("orders").insert([i, payload], txn)
        db.commit(txn)
    rows = db.query(
        "SELECT COUNT(*) FROM orders WHERE DOC_MATCH(doc, '$.customer.country', 'DE')"
    ).rows
    assert rows == [[2]]
    totals = db.query(
        "SELECT SUM(TO_DOUBLE(DOC_EXTRACT(doc, '$.total'))) FROM orders"
    ).scalar()
    assert totals == 60.0


def test_timeseries_column_round_trip():
    from repro.engines.timeseries.compression import decode, encode
    from repro.engines.timeseries.series import TimeSeries
    import base64

    db = Database()
    db.execute("CREATE TABLE sensors (id INT, series VARCHAR)")
    series = TimeSeries(range(0, 100, 10), [float(i) for i in range(10)])
    blob = base64.b64encode(encode(series)).decode("ascii")
    db.execute(f"INSERT INTO sensors VALUES (1, '{blob}')")
    stored = db.query("SELECT series FROM sensors WHERE id = 1").scalar()
    restored = decode(base64.b64decode(stored))
    assert restored == series
