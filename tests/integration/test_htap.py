"""Integration: OLTP and OLAP on one column store (the §II.A claim)."""

import random

import pytest

from repro.core.database import Database
from repro.core.session import Session


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE orders (id INT PRIMARY KEY, customer INT, amount DOUBLE, status VARCHAR)"
    )
    rows = ", ".join(
        f"({i}, {i % 20}, {float(i)}, 'open')" for i in range(500)
    )
    database.execute(f"INSERT INTO orders VALUES {rows}")
    return database


def test_mixed_workload_single_system(db):
    """Interleave point writes and analytics; analytics always see a
    consistent committed state, no replication step needed."""
    rng = random.Random(0)
    expected_total = sum(float(i) for i in range(500))
    for step in range(50):
        # OLTP: update one order
        order = rng.randrange(500)
        db.execute(f"UPDATE orders SET amount = amount + 1 WHERE id = {order}")
        expected_total += 1
        # OLAP: full aggregate over the same store, same snapshot domain
        total = db.query("SELECT SUM(amount) FROM orders").scalar()
        assert total == pytest.approx(expected_total)


def test_analytics_during_open_write_transaction(db):
    writer = Session(db)
    writer.begin()
    writer.execute("UPDATE orders SET amount = 0 WHERE id < 100")
    # a concurrent analyst is unaffected by the uncommitted bulk update
    total = db.query("SELECT SUM(amount) FROM orders").scalar()
    assert total == sum(float(i) for i in range(500))
    writer.commit()
    total_after = db.query("SELECT SUM(amount) FROM orders").scalar()
    assert total_after == sum(float(i) for i in range(100, 500))


def test_merge_during_mixed_workload(db):
    db.execute("UPDATE orders SET status = 'closed' WHERE id < 250")
    db.merge("orders")
    assert db.query("SELECT COUNT(*) FROM orders WHERE status = 'closed'").scalar() == 250
    db.execute("DELETE FROM orders WHERE status = 'closed'")
    db.merge("orders", compact=True)
    assert db.query("SELECT COUNT(*) FROM orders").scalar() == 250
    table = db.table("orders")
    assert sum(p.n_main for p in table.partitions) == 250
