"""Tests for the simulated HDFS."""

import pytest

from repro.errors import HdfsError
from repro.hadoop.hdfs import HdfsCluster


def test_write_read_round_trip(hdfs):
    lines = [f"line {i}" for i in range(60)]
    meta = hdfs.write_file("/data/f.txt", lines)
    assert meta.line_count == 60
    assert len(meta.blocks) == 3  # block size 25
    assert list(hdfs.read_file("/data/f.txt")) == lines


def test_replication_factor_respected(hdfs):
    meta = hdfs.write_file("/f", ["x"] * 10)
    for block in meta.blocks:
        assert len(block.replicas) == 2
        assert len(set(block.replicas)) == 2


def test_overwrite_and_exists(hdfs):
    hdfs.write_file("/f", ["a"])
    with pytest.raises(HdfsError):
        hdfs.write_file("/f", ["b"])
    hdfs.write_file("/f", ["b"], overwrite=True)
    assert list(hdfs.read_file("/f")) == ["b"]
    assert hdfs.exists("/f")
    assert not hdfs.exists("/ghost")


def test_append_extends_blocks(hdfs):
    hdfs.write_file("/f", ["a"] * 10)
    hdfs.append("/f", ["b"] * 30)
    assert sum(1 for _ in hdfs.read_file("/f")) == 40
    assert hdfs.append("/new", ["x"]).line_count == 1  # creates missing file


def test_delete_frees_blocks(hdfs):
    hdfs.write_file("/f", ["a"] * 100)
    blocks_before = hdfs.statistics()["blocks"]
    hdfs.delete("/f")
    assert hdfs.statistics()["blocks"] < blocks_before
    with pytest.raises(HdfsError):
        hdfs.read_file("/f").__next__()


def test_list_dir(hdfs):
    hdfs.write_file("/logs/a", ["1"])
    hdfs.write_file("/logs/b", ["1"])
    hdfs.write_file("/other/c", ["1"])
    assert hdfs.list_dir("/logs") == ["/logs/a", "/logs/b"]


def test_locality_preferred_read(hdfs):
    meta = hdfs.write_file("/f", ["x"] * 10)
    block = meta.blocks[0]
    preferred = block.replicas[1]
    _lines, served_by = hdfs.read_block(block, prefer_node=preferred)
    assert served_by == preferred


def test_datanode_failure_and_re_replication(hdfs):
    meta = hdfs.write_file("/f", ["x"] * 100)
    victim = meta.blocks[0].replicas[0]
    hdfs.kill_datanode(victim)
    # still readable through surviving replicas
    assert sum(1 for _ in hdfs.read_file("/f")) == 100
    copied = hdfs.re_replicate()
    assert copied > 0
    for block in meta.blocks:
        assert victim not in block.replicas
        assert len(block.replicas) == 2


def test_total_block_loss_detected():
    cluster = HdfsCluster(datanode_ids=2, replication=2, block_size_lines=10)
    cluster.write_file("/f", ["x"])
    cluster.kill_datanode("dn0")
    cluster.kill_datanode("dn1")
    with pytest.raises(HdfsError):
        list(cluster.read_file("/f"))


def test_validation():
    with pytest.raises(HdfsError):
        HdfsCluster(datanode_ids=0)
    with pytest.raises(HdfsError):
        HdfsCluster(datanode_ids=2, replication=3)


def test_re_replication_restores_factor_for_all_blocks():
    cluster = HdfsCluster(datanode_ids=4, replication=2, block_size_lines=10)
    cluster.write_file("/f", [f"l{i}" for i in range(40)])
    meta = cluster.file_meta("/f")
    victim = meta.blocks[0].replicas[0]
    cluster.kill_datanode(victim)
    copied = cluster.re_replicate()
    assert copied >= 1
    for block in meta.blocks:
        assert victim not in block.replicas
        assert len(block.replicas) == 2
    assert sum(1 for _ in cluster.read_file("/f")) == 40


def test_losing_both_replicas_is_reported():
    cluster = HdfsCluster(datanode_ids=4, replication=2, block_size_lines=10)
    cluster.write_file("/f", [f"l{i}" for i in range(40)])
    meta = cluster.file_meta("/f")
    # kill both replicas of block 0: the data is gone and HDFS says so
    for node in meta.blocks[0].replicas:
        cluster.kill_datanode(node)
    with pytest.raises(HdfsError):
        cluster.re_replicate()
