"""Tests for the YARN-style resource manager."""

import pytest

from repro.errors import YarnError
from repro.hadoop.yarn import ResourceManager


def test_allocate_prefers_local_node():
    manager = ResourceManager({"a": 1, "b": 1})
    application = manager.submit_application("app")
    container = manager.allocate(application.application_id, preferred_node="b")
    assert container.node_id == "b"
    assert manager.granted_local == 1


def test_falls_back_to_other_node_when_local_full():
    manager = ResourceManager({"a": 1, "b": 1})
    application = manager.submit_application("app")
    manager.allocate(application.application_id, preferred_node="a")
    second = manager.allocate(application.application_id, preferred_node="a")
    assert second.node_id == "b"
    assert manager.granted_remote == 1


def test_queueing_when_full_and_drain_on_release():
    manager = ResourceManager({"a": 1})
    application = manager.submit_application("app")
    first = manager.allocate(application.application_id)
    assert manager.allocate(application.application_id) is None
    assert manager.statistics()["pending"] == 1
    manager.release(first.container_id)
    # the queued request was granted during release
    assert manager.statistics()["pending"] == 0
    assert manager.available("a") == 0


def test_finish_application_releases_everything():
    manager = ResourceManager({"a": 2})
    application = manager.submit_application("app")
    manager.allocate(application.application_id)
    manager.allocate(application.application_id)
    manager.finish_application(application.application_id)
    assert manager.total_available() == 2
    with pytest.raises(YarnError):
        manager.allocate(application.application_id)


def test_validation():
    with pytest.raises(YarnError):
        ResourceManager({})
    manager = ResourceManager({"a": 1})
    with pytest.raises(YarnError):
        manager.application(99)
    with pytest.raises(YarnError):
        manager.release(42)


def test_pending_requests_preserve_fifo_order():
    manager = ResourceManager({"a": 1})
    app = manager.submit_application("app")
    held = manager.allocate(app.application_id)
    assert manager.allocate(app.application_id, preferred_node="a") is None
    assert manager.allocate(app.application_id) is None
    assert manager.statistics()["pending"] == 2
    manager.release(held.container_id)
    # exactly one pending request was granted on release
    assert manager.statistics()["pending"] == 1
    assert manager.available("a") == 0
