"""Tests for the MapReduce runner."""

import pytest

from repro.errors import MapReduceError
from repro.hadoop.mapreduce import MapReduceJob, word_count_job
from repro.hadoop.yarn import ResourceManager


def test_word_count_correctness(hdfs):
    hdfs.write_file("/in", ["a b a", "b c", "a"])
    result = word_count_job().run(hdfs, "/in")
    assert result == {"a": 3, "b": 2, "c": 1}


def test_one_map_task_per_block(hdfs):
    hdfs.write_file("/in", [f"w{i}" for i in range(60)])  # 3 blocks of 25
    job = word_count_job()
    job.run(hdfs, "/in")
    assert job.stats.map_tasks == 3
    assert job.stats.map_input_lines == 60


def test_combiner_reduces_shuffle_volume(hdfs):
    hdfs.write_file("/in", ["same same same"] * 50)
    with_combiner = word_count_job()
    with_combiner.run(hdfs, "/in")
    without = MapReduceJob(
        "wc-nocombine",
        with_combiner.mapper,
        with_combiner.reducer,
        combiner=None,
        reduce_tasks=2,
    )
    without.run(hdfs, "/in")
    assert with_combiner.stats.shuffle_pairs < without.stats.shuffle_pairs


def test_locality_with_yarn(hdfs):
    hdfs.write_file("/in", [f"w{i}" for i in range(75)])
    manager = ResourceManager({node: 2 for node in hdfs.datanodes})
    job = word_count_job()
    job.run(hdfs, "/in", resource_manager=manager)
    assert job.stats.local_map_tasks == 3
    assert job.stats.remote_map_tasks == 0
    # all containers released
    assert manager.total_available() == 6


def test_output_to_hdfs(hdfs):
    hdfs.write_file("/in", ["x y", "y"])
    word_count_job().run(hdfs, "/in", output_path="/out")
    lines = list(hdfs.read_file("/out"))
    assert "x\t1" in lines and "y\t2" in lines


def test_multiple_reduce_tasks_partition_keys(hdfs):
    hdfs.write_file("/in", [" ".join(f"k{i}" for i in range(40))])
    job = word_count_job(reduce_tasks=4)
    result = job.run(hdfs, "/in")
    assert len(result) == 40
    assert job.stats.reduce_tasks == 4


def test_validation(hdfs):
    hdfs.write_file("/in", ["x"])
    job = word_count_job(reduce_tasks=0)
    with pytest.raises(MapReduceError):
        job.run(hdfs, "/in")
