"""Tests for the HANA ↔ HDFS connectors."""

import pytest

from repro.aging.pruning import AgingManager
from repro.core.database import Database
from repro.errors import HadoopError
from repro.hadoop.connectors import (
    HdfsSegmentStore,
    deploy_soe_on_datanodes,
    export_aged_partition_to_hdfs,
    load_hdfs_csv_into_database,
    load_hdfs_csv_into_soe,
    load_hdfs_file_colocated,
)
from repro.soe.services.shared_log import SharedLog


def test_file_reader_into_database(hdfs):
    hdfs.write_file("/d.csv", ["1,a", "2,b", "", "3,"])
    database = Database()
    database.execute("CREATE TABLE t (id INT, name VARCHAR)")
    count = load_hdfs_csv_into_database(database, hdfs, "/d.csv", "t")
    assert count == 3
    assert database.query("SELECT COUNT(*) FROM t WHERE name IS NULL").scalar() == 1


def test_file_reader_into_soe(hdfs):
    from repro.soe.engine import SoeEngine

    hdfs.write_file("/d.csv", [f"{i},{i * 2}" for i in range(50)])
    soe = SoeEngine(node_count=2)
    soe.create_table("t", ["k", "v"], ["k"], partition_count=4)
    count = load_hdfs_csv_into_soe(soe, hdfs, "/d.csv", "t", types=[int, float])
    assert count == 50
    rows, _ = soe.aggregate("t", aggregates=[("sum", "v")])
    assert rows[0][0] == sum(i * 2 for i in range(50))


def test_hdfs_backed_shared_log_recovers(hdfs):
    factory = HdfsSegmentStore.make_factory(hdfs)
    log = SharedLog(stripes=2, replication=1, store_factory=factory)
    for i in range(6):
        log.append({"n": i})
    # simulate process restart: rebuild stores from the HDFS files
    recovered_store = HdfsSegmentStore("stripe0_replica0", hdfs)
    assert recovered_store.recover() == 3
    assert recovered_store.read(0) == {"n": 0}
    assert recovered_store.read(4) == {"n": 4}


def test_hdfs_log_trim_rewrites_file(hdfs):
    factory = HdfsSegmentStore.make_factory(hdfs)
    log = SharedLog(stripes=1, replication=1, store_factory=factory)
    for i in range(4):
        log.append(i)
    log.trim(2)
    store = HdfsSegmentStore("check", hdfs)
    recovered = HdfsSegmentStore("stripe0_replica0", hdfs)
    assert recovered.recover() == 2


def test_export_aged_partition(hdfs):
    database = Database()
    database.execute("CREATE TABLE t (id INT, status VARCHAR)")
    database.execute("INSERT INTO t VALUES (1, 'old'), (2, 'new'), (3, 'old')")
    manager = AgingManager(database)
    manager.define_rule("t", "status = 'old'")
    manager.run("t")
    exported = export_aged_partition_to_hdfs(database, "t", hdfs, "/aged/t.csv")
    assert exported == 2
    assert database.query("SELECT COUNT(*) FROM t").scalar() == 1
    assert len(list(hdfs.read_file("/aged/t.csv"))) == 2
    assert database.catalog.annotation("t", "hdfs_aged_path") == "/aged/t.csv"


def test_export_requires_aged_partition(hdfs):
    database = Database()
    database.execute("CREATE TABLE t (id INT)")
    with pytest.raises(HadoopError):
        export_aged_partition_to_hdfs(database, "t", hdfs, "/x")


def test_colocated_load_avoids_network(hdfs):
    hdfs.write_file("/sensors.csv", [f"{i},{i * 1.0}" for i in range(75)])  # 3 blocks
    soe = deploy_soe_on_datanodes(hdfs)
    soe.create_table("s", ["k", "v"], ["k"], partition_count=3)
    stats = load_hdfs_file_colocated(soe, hdfs, "/sensors.csv", "s", types=[int, float])
    assert stats["rows"] == 75
    assert stats["local_blocks"] == 3
    assert stats["remote_blocks"] == 0
    assert soe.cluster.stats.bytes_total == 0
    rows, _ = soe.aggregate("s", aggregates=[("count", None)])
    assert rows[0][0] == 75


def test_colocated_load_requires_deployment(hdfs):
    from repro.soe.engine import SoeEngine

    hdfs.write_file("/f.csv", ["1,2"])
    soe = SoeEngine(node_count=2)
    soe.create_table("s", ["k", "v"], ["k"])
    with pytest.raises(HadoopError):
        load_hdfs_file_colocated(soe, hdfs, "/f.csv", "s")
