"""Tests for the Hive-flavoured SQL endpoint."""

import pytest

from repro.core.database import Database
from repro.errors import HadoopError
from repro.hadoop.hive import HiveServer, export_query_to_hdfs


@pytest.fixture
def hive(hdfs):
    hdfs.write_file(
        "/warehouse/sales.csv",
        [f"{i},r{i % 3},{i * 1.5}" for i in range(90)],
    )
    server = HiveServer(hdfs, job_latency_seconds=1.5)
    server.create_external_table(
        "sales", "/warehouse/sales.csv",
        [("id", "INT"), ("region", "VARCHAR"), ("amount", "DOUBLE")],
    )
    return server


def test_aggregation_over_external_table(hive):
    result = hive.execute(
        "SELECT region, COUNT(*) AS n FROM sales GROUP BY region ORDER BY region"
    )
    assert result.rows == [["r0", 30], ["r1", 30], ["r2", 30]]
    assert hive.queries_run == 1
    assert hive.simulated_seconds == 1.5
    assert hive.rows_scanned == 90


def test_metastore_validation(hive, hdfs):
    with pytest.raises(HadoopError):
        hive.create_external_table("sales", "/warehouse/sales.csv", [("id", "INT")])
    with pytest.raises(HadoopError):
        hive.create_external_table("x", "/ghost.csv", [("id", "INT")])
    with pytest.raises(HadoopError):
        hive.table("ghost")
    assert hive.tables() == ["sales"]


def test_query_must_reference_known_table(hive):
    with pytest.raises(HadoopError):
        hive.execute("SELECT 1 FROM unknown_table")


def test_export_query_to_hdfs(hdfs):
    database = Database()
    database.execute("CREATE TABLE t (id INT, v DOUBLE)")
    database.execute("INSERT INTO t VALUES (1, 1.5), (2, NULL)")
    count = export_query_to_hdfs(database, "SELECT id, v FROM t ORDER BY id", hdfs, "/export.csv")
    assert count == 2
    assert list(hdfs.read_file("/export.csv")) == ["1,1.5", "2,"]
