"""Tests for the RDD layer and SOE pushdown wrapping."""

import pytest

from repro.errors import HadoopError
from repro.hadoop.rdd import Rdd, soe_table_rdd


def test_functional_chain_is_lazy_and_correct():
    source = Rdd.from_iterable(range(10))
    chained = source.filter(lambda x: x % 2 == 0).map(lambda x: x * 10)
    assert chained.collect() == [0, 20, 40, 60, 80]
    assert chained.count() == 5
    assert chained.take(2) == [0, 20]


def test_flat_map_distinct_union():
    rdd = Rdd.from_iterable(["a b", "b c"]).flat_map(str.split)
    assert rdd.collect() == ["a", "b", "b", "c"]
    assert rdd.distinct().collect() == ["a", "b", "c"]
    assert rdd.union(Rdd.from_iterable(["z"])).count() == 5


def test_reduce_by_key_and_reduce():
    pairs = Rdd.from_iterable([("a", 1), ("b", 2), ("a", 3)])
    assert pairs.reduce_by_key(lambda x, y: x + y).collect() == [("a", 4), ("b", 2)]
    assert Rdd.from_iterable([1, 2, 3]).reduce(lambda x, y: x + y) == 6
    with pytest.raises(HadoopError):
        Rdd.from_iterable([]).reduce(lambda x, y: x + y)


def test_join():
    left = Rdd.from_iterable([("k1", "a"), ("k2", "b")])
    right = Rdd.from_iterable([("k1", 1), ("k1", 2)])
    assert left.join(right).collect() == [("k1", ("a", 1)), ("k1", ("a", 2))]


def test_hdfs_source_and_sink(hdfs):
    hdfs.write_file("/in", ["1", "2", "3"])
    rdd = Rdd.from_hdfs(hdfs, "/in").map(int).filter(lambda x: x > 1)
    rdd.save_to_hdfs(hdfs, "/out")
    assert list(hdfs.read_file("/out")) == ["2", "3"]


def test_soe_rdd_pushdown_aggregate(small_soe):
    wrapped = soe_table_rdd(small_soe, "readings").filter("region", "=", "r1")
    result = wrapped.aggregate(["region"], [("count", None)])
    assert result.collect() == [["r1", 200]]
    assert any("filter" in op for op in wrapped.pushed_operations)
    assert any("aggregate" in op for op in wrapped.pushed_operations)


def test_soe_rdd_materialise_rows(small_soe):
    wrapped = soe_table_rdd(small_soe, "readings").filter("sensor_id", "<", 3)
    rows = wrapped.rows().collect()
    assert len(rows) == 3
    assert {row[0] for row in rows} == {0, 1, 2}


def test_soe_rdd_rows_deduplicate_replicas():
    from repro.soe.engine import SoeEngine

    soe = SoeEngine(node_count=2, replication=2)
    soe.create_table("t", ["k"], ["k"], partition_count=4)
    soe.load("t", [[i] for i in range(50)])
    rows = soe_table_rdd(soe, "t").rows().collect()
    assert len(rows) == 50
