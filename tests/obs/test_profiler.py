"""Per-operator profiling: unit shape + end-to-end ``session.profile``."""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.session import Session
from repro.errors import PlanError
from repro.obs.profiler import OperatorProfile


class TestOperatorProfile:
    def test_self_seconds_subtracts_children(self):
        child = OperatorProfile("ScanNode", "Scan t", wall_seconds=0.3)
        parent = OperatorProfile(
            "JoinNode", "Join", wall_seconds=1.0, children=[child]
        )
        assert parent.self_seconds == pytest.approx(0.7)
        assert child.self_seconds == pytest.approx(0.3)

    def test_self_seconds_never_negative(self):
        child = OperatorProfile("ScanNode", "Scan t", wall_seconds=2.0)
        parent = OperatorProfile("JoinNode", "Join", wall_seconds=1.0, children=[child])
        assert parent.self_seconds == 0.0

    def test_walk_is_preorder(self):
        leaf = OperatorProfile("ScanNode", "Scan t")
        mid = OperatorProfile("FilterNode", "Filter", children=[leaf])
        root = OperatorProfile("ProjectNode", "Project", children=[mid])
        assert [p.operator for p in root.walk()] == [
            "ProjectNode",
            "FilterNode",
            "ScanNode",
        ]


class TestSessionProfile:
    """The acceptance demo: profile a scan → join → aggregate query."""

    QUERY = """
        SELECT c.country, COUNT(*) AS orders, SUM(o.amount) AS total
        FROM orders AS o JOIN customers AS c ON o.customer_id = c.customer_id
        GROUP BY c.country
        ORDER BY c.country
    """

    def test_reports_every_plan_node_with_nonzero_rows(self, erp_db):
        profile = Session(erp_db).profile(self.QUERY)
        nodes = profile.nodes()
        operators = {node.operator for node in nodes}
        assert {"ScanNode", "JoinNode", "AggregateNode"} <= operators
        for node in nodes:
            assert node.rows > 0, f"{node.label} reported zero rows"
            assert node.wall_seconds >= 0.0

    def test_plan_shape_is_preserved(self, erp_db):
        profile = Session(erp_db).profile(self.QUERY)
        join = profile.node("JoinNode")
        scans = [c for c in join.children if c.operator == "ScanNode"]
        assert len(scans) == 2  # both join inputs are scans
        aggregate = profile.node("AggregateNode")
        assert any(c.operator == "JoinNode" for c in aggregate.children)

    def test_join_rows_match_base_table(self, erp_db):
        profile = Session(erp_db).profile(self.QUERY)
        order_count = erp_db.execute("SELECT COUNT(*) AS n FROM orders").rows[0][0]
        assert profile.node("JoinNode").rows == order_count

    def test_result_matches_plain_execution(self, erp_db):
        profile = Session(erp_db).profile(self.QUERY)
        plain = erp_db.execute(self.QUERY)
        assert profile.rows == plain.rows
        assert profile.result.columns == plain.columns

    def test_render_lists_rows_and_time_per_operator(self, erp_db):
        profile = Session(erp_db).profile(self.QUERY)
        text = profile.render()
        assert text.startswith("-- profile:")
        assert "Join[inner]" in text
        assert "rows=" in text and "time=" in text and "self=" in text
        assert "-- counters:" in text  # execution-context metrics footer

    def test_as_dict_is_nested_plan(self, erp_db):
        profile = Session(erp_db).profile(self.QUERY)
        payload = profile.as_dict()
        assert payload["sql"] == self.QUERY
        assert payload["plan"]["rows"] > 0
        assert payload["total_ms"] >= 0.0
        assert payload["metrics"]["rows_scanned"] > 0

    def test_total_seconds_is_root_wall_time(self, erp_db):
        profile = Session(erp_db).profile(self.QUERY)
        assert profile.total_seconds() == profile.root.wall_seconds

    def test_node_lookup_raises_on_missing_operator(self, erp_db):
        profile = Session(erp_db).profile("SELECT name FROM customers")
        with pytest.raises(KeyError):
            profile.node("SortNode")

    def test_profile_rejects_non_select(self, erp_db):
        with pytest.raises(PlanError):
            erp_db.profile("DELETE FROM customers")

    def test_profile_works_without_obs_enabled(self, erp_db):
        """Profiling is explicit per-call; the global flag is irrelevant."""
        assert not obs.enabled()
        profile = erp_db.profile("SELECT name FROM customers WHERE customer_id = 1")
        assert profile.node("ScanNode").rows == 1

    def test_profile_respects_session_parameters(self, erp_db):
        import datetime

        pinned = datetime.date(2020, 1, 15)
        session = Session(erp_db, parameters={"current_date": pinned})
        profile = session.profile("SELECT CURRENT_DATE() AS today")
        assert profile.rows == [[pinned]]

    def test_plain_execution_leaves_no_profiler_installed(self, erp_db):
        """The executor's profiler guard stays off the normal path."""
        erp_db.execute("SELECT name FROM customers")
        context = erp_db._context(None, None)
        assert context.profiler is None
