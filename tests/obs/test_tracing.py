"""Tracer behaviour: nesting, parent links, the ring buffer, rendering."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.tracing import Tracer


class TestSpanNesting:
    def test_single_span_has_no_parent(self):
        tracer = Tracer()
        with tracer.span("root"):
            pass
        (span,) = tracer.spans()
        assert span.name == "root"
        assert span.parent_id is None
        assert span.duration_seconds >= 0.0

    def test_nested_span_links_to_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        inner, finished_outer = tracer.spans()  # inner finishes first
        assert inner.name == "inner"
        assert inner.parent_id == outer.span.span_id
        assert finished_outer.name == "outer"
        assert finished_outer.parent_id is None

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b, _ = tracer.spans()
        assert a.parent_id == b.parent_id == root.span.span_id

    def test_sequential_roots_do_not_nest(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        first, second = tracer.spans()
        assert first.parent_id is None
        assert second.parent_id is None

    def test_tags_and_late_tagging(self):
        tracer = Tracer()
        with tracer.span("op", table="orders") as active:
            active.tag(rows=42)
        (span,) = tracer.spans()
        assert span.tags == {"table": "orders", "rows": 42}

    def test_exception_sets_error_tag_and_finishes_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("op"):
                raise RuntimeError("boom")
        (span,) = tracer.spans()
        assert span.tags["error"] == "RuntimeError"

    def test_record_appends_premeasured_leaf(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            leaf = tracer.record("merge", 0.125, partition="p0")
        assert leaf.duration_seconds == 0.125
        assert leaf.parent_id == root.span.span_id


class TestRingBuffer:
    def test_oldest_spans_evicted(self):
        tracer = Tracer(capacity=3)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert [span.name for span in tracer.spans()] == ["s2", "s3", "s4"]
        assert len(tracer) == 3

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_find_by_name(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("a"):
            pass
        assert len(tracer.find("a")) == 2
        assert tracer.find("missing") == []

    def test_reset(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.reset()
        assert len(tracer) == 0


class TestDumps:
    def test_as_json_round_trips(self):
        tracer = Tracer()
        with tracer.span("root", table="t"):
            with tracer.span("child"):
                pass
        spans = json.loads(tracer.as_json())
        assert [span["name"] for span in spans] == ["child", "root"]
        assert spans[0]["parent_id"] == spans[1]["span_id"]

    def test_render_indents_children(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child", rows=7):
                pass
        lines = tracer.render().splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  child")
        assert "[rows=7]" in lines[1]

    def test_render_orphans_become_roots(self):
        tracer = Tracer(capacity=1)  # parent gets evicted
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        lines = tracer.render().splitlines()
        assert lines == [line for line in lines if not line.startswith(" ")]


class TestRuntimeToggle:
    def test_span_helper_is_noop_when_disabled(self):
        with obs.span("op") as span:
            span.tag(rows=1)
        assert len(obs.tracer()) == 0

    def test_span_helper_records_when_enabled(self):
        _, tracer = obs.enable()
        with obs.span("op", table="t"):
            pass
        (span,) = tracer.spans()
        assert span.name == "op"
        assert span.tags == {"table": "t"}

    def test_enable_is_idempotent_and_reset_disables(self):
        registry, tracer = obs.enable()
        again_registry, again_tracer = obs.enable()
        assert registry is again_registry
        assert tracer is again_tracer
        obs.reset()
        assert not obs.enabled()

    def test_enable_accepts_injected_collectors(self):
        mine = Tracer(capacity=8)
        _, installed = obs.enable(traces=mine)
        assert installed is mine
