"""Metrics primitives: counters, gauges, and histogram bucket semantics."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry


class TestCounter:
    def test_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("requests").inc(-1)

    def test_labels_split_series(self):
        registry = MetricsRegistry()
        registry.counter("tasks", kind="scan").inc()
        registry.counter("tasks", kind="join").inc(2)
        assert registry.counter("tasks", kind="scan").value == 1
        assert registry.counter("tasks", kind="join").value == 2

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        registry.counter("tasks", a=1, b=2).inc()
        assert registry.counter("tasks", b=2, a=1).value == 1


class TestGauge:
    def test_set_and_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("queue_depth")
        gauge.set(10)
        gauge.add(-3)
        assert gauge.value == 7.0


class TestHistogramBucketEdges:
    """Edge semantics: an observation equal to a bound lands in that bucket."""

    def test_value_on_edge_lands_in_that_bucket(self):
        histogram = Histogram("h", buckets=(1.0, 2.0, 5.0))
        histogram.observe(1.0)
        assert histogram.bucket_counts == [1, 0, 0, 0]
        histogram.observe(2.0)
        assert histogram.bucket_counts == [1, 1, 0, 0]

    def test_value_between_edges_lands_in_upper_bucket(self):
        histogram = Histogram("h", buckets=(1.0, 2.0, 5.0))
        histogram.observe(1.5)
        assert histogram.bucket_counts == [0, 1, 0, 0]

    def test_value_above_last_edge_lands_in_overflow(self):
        histogram = Histogram("h", buckets=(1.0, 2.0, 5.0))
        histogram.observe(7.0)
        assert histogram.bucket_counts == [0, 0, 0, 1]

    def test_zero_lands_in_first_bucket(self):
        histogram = Histogram("h", buckets=(1.0, 2.0))
        histogram.observe(0.0)
        assert histogram.bucket_counts == [1, 0, 0]

    def test_default_buckets_are_sorted_with_overflow_slot(self):
        histogram = Histogram("h")
        assert histogram.buckets == DEFAULT_BUCKETS
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert len(histogram.bucket_counts) == len(DEFAULT_BUCKETS) + 1

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=())


class TestHistogramStats:
    def test_count_sum_min_max_mean(self):
        histogram = Histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 2.0, 9.5):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == 12.0
        assert histogram.min == 0.5
        assert histogram.max == 9.5
        assert histogram.mean == 4.0

    def test_quantile_reports_bucket_upper_bound(self):
        histogram = Histogram("h", buckets=(1.0, 2.0, 5.0))
        for _ in range(99):
            histogram.observe(0.5)
        histogram.observe(4.0)
        assert histogram.quantile(0.5) == 1.0
        assert histogram.quantile(1.0) == 5.0  # upper bound of the bucket 4.0 fell in

    def test_quantile_overflow_reports_observed_max(self):
        histogram = Histogram("h", buckets=(1.0,))
        histogram.observe(42.0)
        assert histogram.quantile(1.0) == 42.0

    def test_quantile_empty_is_zero(self):
        assert Histogram("h").quantile(0.95) == 0.0

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram("h").quantile(1.5)

    def test_summary_shape(self):
        histogram = Histogram("h", buckets=(1.0,))
        histogram.observe(0.5)
        summary = histogram.summary()
        assert summary["type"] == "histogram"
        assert summary["count"] == 1
        assert summary["buckets"] == {1.0: 1, float("inf"): 0}


class TestRegistry:
    def test_get_and_len(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.histogram("b").observe(0.1)
        assert len(registry) == 2
        assert registry.get("a").value == 1
        assert registry.get("missing") is None

    def test_as_dict_renders_labels_sorted(self):
        registry = MetricsRegistry()
        registry.counter("tasks", node="n1", kind="scan").inc()
        assert "tasks{kind=scan,node=n1}" in registry.as_dict()

    def test_as_dict_prefix_filter(self):
        registry = MetricsRegistry()
        registry.counter("soe.tasks").inc()
        registry.counter("sql.rows").inc()
        assert list(registry.as_dict(prefix="soe.")) == ["soe.tasks"]

    def test_render_text_one_line_per_metric(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(2)
        registry.histogram("b").observe(0.25)
        lines = registry.render_text().splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("a  2")
        assert "count=1" in lines[1]

    def test_reset_clears(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.reset()
        assert len(registry) == 0


class TestModuleHelpers:
    """The obs.count/gauge/observe helpers are no-ops until enabled."""

    def test_disabled_helpers_collect_nothing(self):
        obs.count("x")
        obs.gauge("y", 5)
        obs.observe("z", 0.1)
        assert not obs.enabled()
        assert len(obs.registry()) == 0

    def test_enabled_helpers_collect(self):
        registry, _ = obs.enable()
        obs.count("x", 3)
        obs.gauge("y", 5, node="n1")
        obs.observe("z", 0.1)
        assert registry.get("x").value == 3
        assert registry.get("y", node="n1").value == 5
        assert registry.get("z").count == 1

    def test_latency_is_noop_when_disabled(self):
        with obs.latency("op_seconds") as timer:
            pass
        assert timer.seconds == 0.0
        assert len(obs.registry()) == 0

    def test_timed_always_measures_reports_only_when_enabled(self):
        with obs.timed("op_seconds") as timer:
            sum(range(1000))
        assert timer.seconds > 0.0
        assert len(obs.registry()) == 0  # disabled: measured but not reported

        registry, _ = obs.enable()
        with obs.timed("op_seconds") as timer:
            sum(range(1000))
        assert timer.seconds > 0.0
        assert registry.get("op_seconds").count == 1

    def test_metrics_dump_prefix(self):
        obs.enable()
        obs.count("soe.tasks")
        obs.count("sql.rows")
        assert list(obs.metrics_dump(prefix="sql.")) == ["sql.rows"]
