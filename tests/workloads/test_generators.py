"""Tests for the synthetic workload generators (determinism + shape)."""

import datetime as dt

from repro.workloads.generators import (
    ErpConfig,
    SensorConfig,
    baskets,
    dispenser_events,
    erp_customers,
    erp_invoices,
    erp_orders,
    hurricane_tracks,
    pipeline_graph,
    sensor_readings,
    stock_ticks,
    text_corpus,
)


def test_erp_generators_are_deterministic():
    config = ErpConfig(customers=10, orders=50)
    assert erp_orders(config) == erp_orders(config)
    assert erp_customers(config) == erp_customers(config)


def test_erp_orders_shape():
    config = ErpConfig(customers=10, orders=200, closed_fraction=0.7)
    orders = erp_orders(config)
    assert len(orders) == 200
    closed = sum(1 for order in orders if order[2] == "closed")
    assert 0.6 <= closed / 200 <= 0.8
    assert all(isinstance(order[3], dt.date) for order in orders)
    # keys are monotone: the application-generated key property (E3)
    assert [order[0] for order in orders] == list(range(200))


def test_invoices_align_with_orders():
    config = ErpConfig(customers=5, orders=50)
    orders = erp_orders(config)
    invoices = erp_invoices(config, orders)
    assert len(invoices) == 50
    for order, invoice in zip(orders, invoices):
        assert invoice[1] == order[0]
        assert (invoice[2] == "paid") == (order[2] == "closed")
        assert invoice[3] > order[3]


def test_sensor_readings_interval_and_count():
    config = SensorConfig(sensors=3, readings_per_sensor=100)
    rows = list(sensor_readings(config))
    assert len(rows) == 300
    first_sensor = [row for row in rows if row[0] == 0]
    deltas = {
        b[1] - a[1] for a, b in zip(first_sensor, first_sensor[1:])
    }
    assert deltas == {60}


def test_dispenser_events_decay():
    events = list(dispenser_events(dispensers=2, steps=50))
    first = [e["fill_grade"] for e in events if e["dispenser_id"] == 0]
    assert first[0] > first[-1]
    assert all(e["fill_grade"] >= 0 for e in events)


def test_text_corpus_labels():
    corpus = text_corpus(documents=50)
    assert len(corpus) == 50
    assert {label for _i, _t, label in corpus} == {"positive", "negative"}


def test_baskets_plant_associations():
    data = baskets(200)
    with_beer = [b for b in data if "beer" in b]
    assert all("chips" in b for b in with_beer)


def test_stock_ticks_correlation_structure():
    import numpy as np

    ticks = stock_ticks(symbols=4, days=200)
    returns = {}
    for symbol, series in ticks.items():
        prices = np.array([p for _t, p in series])
        returns[symbol] = np.diff(prices) / prices[:-1]
    correlated = np.corrcoef(returns["SYM0"], returns["SYM1"])[0, 1]
    independent = np.corrcoef(returns["SYM2"], returns["SYM3"])[0, 1]
    assert correlated > 0.5
    assert abs(independent) < 0.4


def test_pipeline_graph_is_connected_tree_plus_extras():
    junctions, pipes = pipeline_graph(segments=40)
    assert len(junctions) == 40
    assert len(pipes) >= 39
    targets = {pipe[1] for pipe in pipes}
    assert targets == set(range(1, 40))  # every junction reachable


def test_hurricane_tracks_move_northwest():
    rows = hurricane_tracks(storms=5)
    by_storm = {}
    for storm, step, lon, lat, _wind in rows:
        by_storm.setdefault(storm, []).append((step, lon, lat))
    for points in by_storm.values():
        points.sort()
        assert points[-1][1] < points[0][1]  # west
        assert points[-1][2] > points[0][2]  # north
