"""Tests for the transaction manager."""

import pytest

from repro.errors import InvalidTransactionStateError
from repro.transaction.manager import TransactionManager, TxnState
from repro.transaction.mvcc import INF_CID
from repro.util.arrays import GrowableInt64


def test_begin_assigns_increasing_tids_and_snapshot():
    manager = TransactionManager()
    a = manager.begin()
    b = manager.begin()
    assert b.tid > a.tid
    assert a.snapshot_cid == 0


def test_read_only_commit_consumes_no_cid():
    manager = TransactionManager()
    txn = manager.begin()
    manager.commit(txn)
    assert manager.last_committed_cid == 0
    assert txn.state is TxnState.COMMITTED


def test_commit_stamps_slots():
    manager = TransactionManager()
    vector = GrowableInt64()
    txn = manager.begin()
    position = vector.append(txn.stamp)
    txn.record_insert(vector, position)
    cid = manager.commit(txn)
    assert cid == 1
    assert vector[position] == 1


def test_rollback_restores_slots():
    manager = TransactionManager()
    created = GrowableInt64()
    deleted = GrowableInt64()
    txn = manager.begin()
    created_pos = created.append(txn.stamp)
    deleted_pos = deleted.append(txn.stamp)
    txn.record_insert(created, created_pos)
    txn.record_delete(deleted, deleted_pos)
    manager.rollback(txn)
    assert created[created_pos] == INF_CID  # tombstone
    assert deleted[deleted_pos] == INF_CID  # undone


def test_double_commit_rejected():
    manager = TransactionManager()
    txn = manager.begin()
    manager.commit(txn)
    with pytest.raises(InvalidTransactionStateError):
        manager.commit(txn)


def test_rollback_after_rollback_is_idempotent():
    manager = TransactionManager()
    txn = manager.begin()
    manager.rollback(txn)
    manager.rollback(txn)  # no error
    assert manager.aborts == 1


def test_commit_hooks_fire_with_cid():
    manager = TransactionManager()
    seen = []
    txn = manager.begin()
    vector = GrowableInt64()
    position = vector.append(txn.stamp)
    txn.record_insert(vector, position)
    txn.on_commit(seen.append)
    manager.commit(txn)
    assert seen == [1]


def test_redo_writer_called_once_per_commit():
    written = []
    manager = TransactionManager(redo_writer=lambda records, cid: written.append((cid, records)))
    txn = manager.begin()
    vector = GrowableInt64()
    txn.record_insert(vector, vector.append(txn.stamp))
    txn.log_redo({"op": "insert"})
    manager.commit(txn)
    assert written == [(1, [{"op": "insert"}])]


def test_active_count():
    manager = TransactionManager()
    a = manager.begin()
    b = manager.begin()
    assert manager.active_count == 2
    manager.commit(a)
    manager.rollback(b)
    assert manager.active_count == 0
