"""Tests for the simulated HTM execution model."""

import pytest

from repro.transaction.htm import (
    GlobalLockExecution,
    HtmExecution,
    make_batches,
)


def test_lock_cost_is_linear_in_operations():
    lock = GlobalLockExecution(op_work=1.0, lock_overhead=0.5)
    batches = make_batches(operations=100, concurrency=4, granules=1000)
    stats = lock.run(batches)
    assert stats.operations == 100
    assert stats.work_units == pytest.approx(150.0)
    assert stats.aborts == 0


def test_htm_conflict_free_batch_costs_one_round():
    htm = HtmExecution(op_work=1.0, htm_overhead=0.0)
    stats = htm.run([[1, 2, 3, 4]])
    assert stats.aborts == 0
    assert stats.work_units == pytest.approx(1.0)  # fully parallel round


def test_htm_conflicts_abort_and_retry():
    htm = HtmExecution(op_work=1.0, htm_overhead=0.0, max_retries=5)
    stats = htm.run([[7, 7, 7]])  # three ops on one granule
    # round 1 aborts two, round 2 aborts one: three aborts over three rounds
    assert stats.aborts == 3
    assert stats.lock_fallbacks == 0
    assert stats.work_units == pytest.approx(3.0)  # three serial rounds


def test_htm_falls_back_to_lock_after_max_retries():
    htm = HtmExecution(op_work=1.0, htm_overhead=0.0, max_retries=1, lock_overhead=0.5)
    stats = htm.run([[7, 7]])
    assert stats.lock_fallbacks == 1
    assert stats.work_units == pytest.approx(1.0 + 1.5)


def test_htm_beats_lock_at_low_contention():
    batches = make_batches(operations=2_000, concurrency=8, granules=10_000)
    lock = GlobalLockExecution().run(batches)
    htm = HtmExecution().run(batches)
    assert htm.work_units < lock.work_units


def test_lock_beats_htm_under_extreme_contention():
    batches = make_batches(
        operations=2_000, concurrency=8, granules=4, hot_fraction=0.95
    )
    lock = GlobalLockExecution().run(batches)
    htm = HtmExecution(max_retries=4).run(batches)
    assert htm.aborts > 0
    assert htm.work_units > lock.work_units * 0.5  # wasted speculation shows


def test_make_batches_deterministic_and_shaped():
    a = make_batches(100, 10, 50, seed=1)
    b = make_batches(100, 10, 50, seed=1)
    assert a == b
    assert len(a) == 10
    assert all(len(batch) == 10 for batch in a)
