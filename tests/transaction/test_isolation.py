"""End-to-end snapshot-isolation behaviour through the SQL layer."""

import pytest

from repro.core.database import Database
from repro.core.session import Session
from repro.errors import InvalidTransactionStateError, WriteConflictError


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE accounts (id INT PRIMARY KEY, balance DOUBLE)")
    database.execute("INSERT INTO accounts VALUES (1, 100.0), (2, 50.0)")
    return database


def test_repeatable_reads_within_transaction(db):
    session = Session(db)
    session.begin()
    before = session.query("SELECT SUM(balance) FROM accounts").scalar()
    db.execute("INSERT INTO accounts VALUES (3, 25.0)")
    after = session.query("SELECT SUM(balance) FROM accounts").scalar()
    assert before == after == 150.0
    session.commit()
    assert db.query("SELECT SUM(balance) FROM accounts").scalar() == 175.0


def test_write_conflict_on_same_row(db):
    s1 = Session(db)
    s2 = Session(db)
    s1.begin()
    s2.begin()
    s1.execute("UPDATE accounts SET balance = 0 WHERE id = 1")
    with pytest.raises(WriteConflictError):
        s2.execute("UPDATE accounts SET balance = 99 WHERE id = 1")
    s1.commit()
    s2.rollback()
    assert db.query("SELECT balance FROM accounts WHERE id = 1").scalar() == 0


def test_disjoint_writes_do_not_conflict(db):
    s1 = Session(db)
    s2 = Session(db)
    s1.begin()
    s2.begin()
    s1.execute("UPDATE accounts SET balance = 1 WHERE id = 1")
    s2.execute("UPDATE accounts SET balance = 2 WHERE id = 2")
    s1.commit()
    s2.commit()
    rows = db.query("SELECT balance FROM accounts ORDER BY id").rows
    assert rows == [[1.0], [2.0]]


def test_atomicity_of_multi_statement_transaction(db):
    session = Session(db)
    session.begin()
    session.execute("UPDATE accounts SET balance = balance - 30 WHERE id = 1")
    session.execute("UPDATE accounts SET balance = balance + 30 WHERE id = 2")
    session.rollback()
    rows = db.query("SELECT balance FROM accounts ORDER BY id").rows
    assert rows == [[100.0], [50.0]]


def test_context_manager_commits_and_rolls_back(db):
    with Session(db) as session:
        session.begin()
        session.execute("INSERT INTO accounts VALUES (5, 1.0)")
    assert db.query("SELECT COUNT(*) FROM accounts").scalar() == 3

    with pytest.raises(RuntimeError):
        with Session(db) as session:
            session.begin()
            session.execute("INSERT INTO accounts VALUES (6, 1.0)")
            raise RuntimeError("boom")
    assert db.query("SELECT COUNT(*) FROM accounts").scalar() == 3


def test_nested_begin_rejected(db):
    session = Session(db)
    session.begin()
    with pytest.raises(InvalidTransactionStateError):
        session.begin()


def test_commit_without_begin_rejected(db):
    with pytest.raises(InvalidTransactionStateError):
        Session(db).commit()


def test_sql_level_transaction_statements(db):
    session = Session(db)
    session.execute("BEGIN")
    session.execute("DELETE FROM accounts WHERE id = 1")
    session.execute("ROLLBACK")
    assert db.query("SELECT COUNT(*) FROM accounts").scalar() == 2
