"""Tests for MVCC visibility primitives."""

import numpy as np
import pytest

from repro.transaction.mvcc import INF_CID, is_visible, uncommitted_stamp, visible_mask


def test_uncommitted_stamp_requires_positive_tid():
    assert uncommitted_stamp(3) == -3
    with pytest.raises(ValueError):
        uncommitted_stamp(0)


def test_committed_row_visible_at_or_after_commit():
    assert is_visible(created=5, deleted=INF_CID, snapshot_cid=5)
    assert is_visible(created=5, deleted=INF_CID, snapshot_cid=9)
    assert not is_visible(created=5, deleted=INF_CID, snapshot_cid=4)


def test_deleted_row_invisible_after_delete_commit():
    assert is_visible(created=1, deleted=7, snapshot_cid=6)
    assert not is_visible(created=1, deleted=7, snapshot_cid=7)


def test_own_uncommitted_changes_visible_to_self_only():
    assert is_visible(created=-9, deleted=INF_CID, snapshot_cid=0, own_tid=9)
    assert not is_visible(created=-9, deleted=INF_CID, snapshot_cid=0, own_tid=4)
    # own delete hides the row from itself
    assert not is_visible(created=1, deleted=-9, snapshot_cid=5, own_tid=9)
    # but not from others
    assert is_visible(created=1, deleted=-9, snapshot_cid=5, own_tid=4)


def test_tombstoned_creation_never_visible():
    assert not is_visible(created=INF_CID, deleted=INF_CID, snapshot_cid=10**9)


def test_visible_mask_matches_scalar():
    created = np.array([1, 5, -3, INF_CID, 2], dtype=np.int64)
    deleted = np.array([INF_CID, 3, INF_CID, INF_CID, -3], dtype=np.int64)
    for snapshot in (0, 2, 4, 6):
        for own in (0, 3):
            mask = visible_mask(created, deleted, snapshot, own)
            expected = [
                is_visible(int(c), int(d), snapshot, own)
                for c, d in zip(created, deleted)
            ]
            assert list(mask) == expected, (snapshot, own)
