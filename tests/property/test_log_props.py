"""Property tests: shared-log ordering invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soe.services.shared_log import SharedLog


@given(
    st.integers(1, 5),
    st.integers(1, 3),
    st.lists(st.integers(), min_size=1, max_size=60),
)
@settings(max_examples=50)
def test_reads_preserve_append_order(stripes, replication, payloads):
    log = SharedLog(stripes=stripes, replication=replication)
    for payload in payloads:
        log.append(payload)
    streamed = [payload for _address, payload in log.read_from(0)]
    assert streamed == payloads
    assert log.tail == len(payloads)


@given(
    st.lists(st.integers(), min_size=2, max_size=40),
    st.data(),
)
@settings(max_examples=50)
def test_trim_then_stream_yields_suffix(payloads, data):
    log = SharedLog(stripes=3, replication=2)
    for payload in payloads:
        log.append(payload)
    cut = data.draw(st.integers(0, len(payloads)))
    log.trim(cut)
    streamed = [payload for _address, payload in log.read_from(0)]
    assert streamed == payloads[cut:]
