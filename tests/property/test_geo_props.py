"""Property tests: the grid index agrees with exhaustive scans."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engines.geo.geometry import Point
from repro.engines.geo.index import GridIndex
from repro.engines.geo.operations import euclidean

coords = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False, width=32)
point_lists = st.lists(st.tuples(coords, coords), min_size=0, max_size=60)


@given(point_lists, st.tuples(coords, coords), st.floats(min_value=0.1, max_value=30.0))
@settings(max_examples=80)
def test_radius_query_matches_naive(points, center_xy, radius):
    index = GridIndex(cell_size=3.0)
    keyed = [(i, Point(x, y)) for i, (x, y) in enumerate(points)]
    index.bulk_load(keyed)
    center = Point(*center_xy)
    expected = {
        key for key, point in keyed if euclidean(center, point) <= radius
    }
    got = {key for key, _point in index.within_radius(center, radius)}
    assert got == expected


@given(point_lists, st.tuples(coords, coords), st.tuples(coords, coords))
@settings(max_examples=80)
def test_box_query_matches_naive(points, corner_a, corner_b):
    min_x, max_x = sorted((corner_a[0], corner_b[0]))
    min_y, max_y = sorted((corner_a[1], corner_b[1]))
    index = GridIndex(cell_size=5.0)
    keyed = [(i, Point(x, y)) for i, (x, y) in enumerate(points)]
    index.bulk_load(keyed)
    expected = {
        key
        for key, point in keyed
        if min_x <= point.x <= max_x and min_y <= point.y <= max_y
    }
    got = {key for key, _p in index.in_box(min_x, min_y, max_x, max_y)}
    assert got == expected
