"""Property test: every plan the planner emits passes the plan verifier."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.plancheck import verify_entry, verify_plan
from repro.core.database import Database
from repro.sql import plancache
from repro.sql.parser import parse
from repro.sql.planner import plan_select
from repro.workloads import querygen


def _database():
    database = Database()
    for statement in querygen.ddl():
        database.execute(statement)
    return database


@given(st.integers(min_value=0, max_value=2**16))
@settings(max_examples=25, deadline=None)
def test_generated_plans_always_verify_clean(seed):
    database = _database()
    for sql in querygen.generate_queries(count=4, seed=seed):
        statement = parse(sql)
        plan = plan_select(statement, database.catalog)
        findings = verify_plan(plan, database.catalog)
        assert findings == [], f"{sql!r}: {[str(f) for f in findings]}"


@given(st.integers(min_value=0, max_value=2**16))
@settings(max_examples=15, deadline=None)
def test_generated_entries_never_fail_hard(seed):
    # entry-level "cache" findings are legitimate conservative refusals
    # (e.g. the unreachable ORDER-BY slot shape); anything else — schema,
    # estimate, or charge trouble inside a frozen entry — is a real bug
    database = _database()
    for sql in querygen.generate_queries(count=4, seed=seed):
        statement = parse(sql)
        plan = plan_select(statement, database.catalog)
        entry = plancache.PlanEntry(
            plan=plan,
            slots=plancache.collect_literals(statement),
            tables=plancache.plan_tables(plan.root),
        )
        key = plancache.fingerprint(statement)
        hard = [
            finding
            for finding in verify_entry(entry, statement, key, database.catalog)
            if finding.check != "cache"
        ]
        assert hard == [], f"{sql!r}: {[str(f) for f in hard]}"
