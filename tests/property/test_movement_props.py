"""Property: a move killed before its flip commit is exactly a no-op.

For any partition, any kill kind, and any pre-flip phase boundary, the
aborted move leaves the landscape bit-identical to not having moved at
all: same catalog placement, same per-node ownership sets, same
per-node store contents — even with a committed-but-unapplied log
suffix in flight — and no committed row is lost. This is the rollback
half of the crash-safety contract; the roll-forward half is covered by
the deterministic kill matrix in tests/chaos/test_movement_chaos.py.
"""

from __future__ import annotations

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import ChaosController, FaultPlan, FaultSpec
from repro.soe.engine import SoeEngine
from repro.soe.movement import PHASES

SEED_OFFSET = int(os.environ.get("REPRO_CHAOS_SEED", "0"))
ROWS = [[i, f"r{i % 3}", float(i % 7)] for i in range(60)]
PRE_FLIP_BOUNDARIES = range(PHASES.index("flip") + 1)


def build_soe(chaos: ChaosController | None = None) -> SoeEngine:
    soe = SoeEngine(node_count=3, node_modes="olap", chaos=chaos)
    soe.create_table(
        "readings", ["sensor_id", "region", "value"], ["sensor_id"], partition_count=4
    )
    soe.load("readings", ROWS)
    return soe


def raw_fingerprint(soe: SoeEngine):
    """Placement, ownership, and store contents — *without* forcing any
    catch-up, so a rollback that secretly applied or dropped anything
    shows up."""
    placement = soe.catalog.placement_of("readings")
    ownership = {}
    stores = {}
    for node_id, node in soe.data_nodes.items():
        ownership[node_id] = sorted(node.owned_partitions("readings"))
        stores[node_id] = sorted(
            (p.partition_id, sorted(p.rows()))
            for p in node.store.partitions_of("readings")
        )
    return placement, ownership, stores


@given(
    phase_index=st.sampled_from(list(PRE_FLIP_BOUNDARIES)),
    kind=st.sampled_from(["kill_donor", "kill_recipient"]),
    partition_choice=st.integers(min_value=0, max_value=2**16),
    extra_rows=st.integers(min_value=0, max_value=20),
)
@settings(max_examples=25, deadline=None)
def test_preflip_kill_makes_move_a_noop(
    phase_index, kind, partition_choice, extra_rows
):
    plan = FaultPlan([FaultSpec(kind, "partition_move", phase_index)])
    chaos = ChaosController(plan)
    soe = build_soe(chaos=chaos)
    if extra_rows:
        # a committed-but-unapplied log suffix in flight: catch-up reads
        # it into the staging copy, and the rollback must discard that
        # copy without touching any node's real store
        soe.insert(
            "readings",
            [[10_000 + SEED_OFFSET + i, "new", 1.0] for i in range(extra_rows)],
        )
    donor_partitions = soe.catalog.partitions_on("readings", "worker0")
    pid = donor_partitions[partition_choice % len(donor_partitions)]

    before = raw_fingerprint(soe)
    state = soe.make_mover().move("readings", pid, "worker0", "worker1")
    assert state.aborted
    assert not state.flip_committed

    victim = "worker0" if kind == "kill_donor" else "worker1"
    soe.cluster.revive(victim)
    assert raw_fingerprint(soe) == before
    # and nothing committed was lost: the full strong scan still sees
    # every row, including the in-flight suffix
    rows, _ = soe.aggregate(
        "readings", aggregates=[("count", None)], consistency="strong"
    )
    assert rows[0][0] == 60 + extra_rows
