"""Property test: SQL aggregates agree with a Python reference model."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.database import Database

rows_strategy = st.lists(
    st.tuples(
        st.sampled_from(["a", "b", "c"]),
        st.one_of(st.none(), st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)),
    ),
    min_size=0,
    max_size=60,
)


@given(rows_strategy)
@settings(max_examples=40, deadline=None)
def test_group_by_matches_python_model(rows):
    database = Database()
    database.execute("CREATE TABLE t (g VARCHAR, v DOUBLE)")
    if rows:
        txn = database.begin()
        database.table("t").insert_many([[g, v] for g, v in rows], txn)
        database.commit(txn)

    result = database.query(
        "SELECT g, COUNT(*) AS n, COUNT(v) AS nv, SUM(v) AS s FROM t GROUP BY g ORDER BY g"
    ).rows

    model = {}
    for g, v in rows:
        entry = model.setdefault(g, [0, 0, 0.0])
        entry[0] += 1
        if v is not None:
            entry[1] += 1
            entry[2] += v
    expected = [
        [g, n, nv, (s if nv else None)] for g, (n, nv, s) in sorted(model.items())
    ]
    assert len(result) == len(expected)
    for got, want in zip(result, expected):
        assert got[0] == want[0]
        assert got[1] == want[1]
        assert got[2] == want[2]
        if want[3] is None:
            assert got[3] is None
        else:
            assert got[3] is not None and math.isclose(got[3], want[3], rel_tol=1e-9, abs_tol=1e-6)
