"""Property tests: interval labelling agrees with pointer traversal."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engines.graph.hierarchy import HierarchyView


@st.composite
def random_forest(draw):
    """A random forest as parent pointers (guaranteed acyclic)."""
    size = draw(st.integers(1, 40))
    parents = {0: None}
    for node in range(1, size):
        # parent is always a smaller id: acyclic by construction
        parents[node] = draw(
            st.one_of(st.none(), st.integers(0, node - 1))
        )
    return parents


def walk_descendants(parents, node):
    children = {}
    for child, parent in parents.items():
        if parent is not None:
            children.setdefault(parent, []).append(child)
    stack = [node]
    found = set()
    while stack:
        current = stack.pop()
        for child in children.get(current, ()):
            found.add(child)
            stack.append(child)
    return found


@given(random_forest())
@settings(max_examples=80)
def test_descendants_match_pointer_walk(parents):
    view = HierarchyView("h", parents)
    for node in parents:
        assert set(view.descendants(node)) == walk_descendants(parents, node)
        assert view.descendant_count(node) == len(walk_descendants(parents, node))


@given(random_forest())
@settings(max_examples=80)
def test_is_descendant_matches_path_to_root(parents):
    view = HierarchyView("h", parents)
    for node in parents:
        ancestors = set(view.path_to_root(node)) - {node}
        for other in parents:
            assert view.is_descendant(node, other) == (other in ancestors)


@given(random_forest())
@settings(max_examples=50)
def test_levels_and_intervals_consistent(parents):
    view = HierarchyView("h", parents)
    for node in parents:
        parent = view.parent(node)
        if parent is not None:
            assert view.level(node) == view.level(parent) + 1
            assert view.is_descendant(node, parent)
