"""Property tests: disaggregation always sums exactly to the target."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.planning.disaggregation import disaggregate


@given(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    st.dictionaries(
        st.text(min_size=1, max_size=4),
        st.floats(min_value=0, max_value=1e4, allow_nan=False),
        min_size=1,
        max_size=12,
    ),
)
@settings(max_examples=120)
def test_exact_sum_property(total, weights):
    allocation = disaggregate(total, weights, decimals=2)
    assert set(allocation) == set(weights)
    assert abs(sum(allocation.values()) - round(total, 2)) < 1e-9
    # proportionality: zero-weight cells get zero when some weight exists
    if any(weight > 0 for weight in weights.values()):
        for key, weight in weights.items():
            if weight == 0:
                assert allocation[key] == 0.0
