"""Property tests: every encoding is lossless and consistent."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.columnstore.compression import (
    BitPackedVector,
    RunLengthVector,
    SparseVector,
    choose_encoding,
)

vid_lists = st.lists(st.integers(-1, 500), max_size=200)


@given(vid_lists)
def test_choose_encoding_round_trips(vids):
    array = np.asarray(vids, dtype=np.int64)
    encoded = choose_encoding(array)
    assert np.array_equal(encoded.decode(), array)


@given(vid_lists)
def test_all_encodings_agree(vids):
    array = np.asarray(vids, dtype=np.int64)
    encodings = [BitPackedVector(array), RunLengthVector(array)]
    if len(array):
        encodings.append(SparseVector(array, int(array[0])))
    reference = encodings[0].decode()
    for encoding in encodings[1:]:
        assert np.array_equal(encoding.decode(), reference)


@given(vid_lists, st.integers(0, 499))
def test_scan_eq_equals_decoded_comparison(vids, probe):
    array = np.asarray(vids, dtype=np.int64)
    encoded = choose_encoding(array)
    assert np.array_equal(encoded.scan_eq(probe), array == probe)


@given(st.lists(st.integers(-1, 500), min_size=1, max_size=200), st.data())
def test_take_matches_positions(vids, data):
    array = np.asarray(vids, dtype=np.int64)
    encoded = choose_encoding(array)
    positions = data.draw(
        st.lists(st.integers(0, len(array) - 1), min_size=1, max_size=20)
    )
    positions = np.asarray(positions, dtype=np.int64)
    assert np.array_equal(encoded.take(positions), array[positions])
