"""Property test: random generated queries agree across execution engines."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.database import Database
from repro.sql.compiler import CompileError, compile_plan
from repro.sql.parser import parse
from repro.sql.planner import plan_select
from repro.sql.volcano import execute_volcano


def _normalise(rows):
    out = []
    for row in rows:
        canonical = []
        for value in row:
            if isinstance(value, float):
                canonical.append(None if math.isnan(value) else round(value, 6))
            else:
                canonical.append(value)
        out.append(canonical)
    out.sort(key=repr)
    return out


_db = Database()
_db.execute("CREATE TABLE r (a INT, b DOUBLE, g VARCHAR)")
_rows = ", ".join(
    f"({i % 13}, {(i * 7) % 29}.5, 'g{i % 3}')" for i in range(150)
)
_db.execute(f"INSERT INTO r VALUES {_rows}")
_db.execute("INSERT INTO r VALUES (NULL, NULL, NULL)")


@st.composite
def query_strategy(draw):
    where = draw(
        st.sampled_from(
            [
                "",
                "WHERE a > 5",
                "WHERE b <= 10 AND g = 'g1'",
                "WHERE a IN (1, 2, 3) OR b > 20",
                "WHERE a IS NOT NULL",
                "WHERE a BETWEEN 2 AND 9",
            ]
        )
    )
    shape = draw(st.sampled_from(["plain", "group", "global"]))
    if shape == "plain":
        select = "SELECT a, b, g FROM r"
        tail = draw(st.sampled_from(["", "ORDER BY a LIMIT 7", "ORDER BY b DESC"]))
    elif shape == "group":
        select = "SELECT g, COUNT(*) AS n, SUM(b) AS s FROM r"
        tail = "GROUP BY g"
    else:
        select = "SELECT COUNT(*), SUM(a), MIN(b), MAX(b) FROM r"
        tail = ""
    return f"{select} {where} {tail}".strip()


@given(query_strategy())
@settings(max_examples=60, deadline=None)
def test_three_engines_agree_on_random_queries(sql):
    plan = plan_select(parse(sql), _db.catalog)
    vectorised = _normalise(_db.query(sql).rows)
    volcano = _normalise(execute_volcano(plan, _db._context(None, None)))
    assert volcano == vectorised
    try:
        compiled = compile_plan(plan, _db._context(None, None))
    except CompileError:
        return
    assert _normalise(compiled.run(_db._context(None, None))) == vectorised
