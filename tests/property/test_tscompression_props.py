"""Property tests: time-series codec is lossless at the declared scale."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engines.timeseries.compression import decode, encode
from repro.engines.timeseries.series import TimeSeries


@st.composite
def series_strategy(draw):
    n = draw(st.integers(0, 120))
    deltas = draw(st.lists(st.integers(1, 10_000), min_size=n, max_size=n))
    timestamps = np.cumsum(np.asarray([1_000_000] + deltas[:-1], dtype=np.int64)) if n else np.empty(0, dtype=np.int64)
    values = draw(
        st.lists(
            st.floats(min_value=-1e7, max_value=1e7, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    return TimeSeries(timestamps[:n], np.asarray(values, dtype=np.float64))


@given(series_strategy(), st.integers(0, 6))
@settings(max_examples=60)
def test_round_trip_within_quantisation(series, scale):
    restored = decode(encode(series, value_scale=scale))
    assert np.array_equal(series.timestamps, restored.timestamps)
    tolerance = 0.51 * 10 ** (-scale)
    if len(series):
        assert np.max(np.abs(series.values - restored.values)) <= tolerance


@given(series_strategy())
@settings(max_examples=30)
def test_double_encode_is_stable(series):
    once = decode(encode(series, value_scale=4))
    twice = decode(encode(once, value_scale=4))
    assert once == twice
