"""Property: partition(...) then heal(...) loses and duplicates nothing.

For any victim node, any cut shape (full isolation or a single directed
link), any partition duration, and any interleaving of front-door
writes with membership ticks: once the network heals and the control
loop converges, every *acknowledged* write is present exactly once in a
strong scan, no unacknowledged write leaks in, and the lease journal
never shows two holders for one partition at one epoch. The fencing
tests in tests/soe/test_membership.py pin the individual mechanisms;
this file checks the composed protocol across the schedule space.
"""

from __future__ import annotations

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SoeError
from repro.soe.engine import SoeEngine

SEED_OFFSET = int(os.environ.get("REPRO_CHAOS_SEED", "0"))
ROWS = [[i, f"r{i % 3}", float(i % 7)] for i in range(60)]
WORKERS = ["worker0", "worker1", "worker2"]


def build_soe():
    soe = SoeEngine(node_count=3, node_modes="olap", replication=2)
    soe.create_table(
        "readings", ["sensor_id", "region", "value"], ["sensor_id"], partition_count=4
    )
    soe.load("readings", ROWS)
    membership = soe.enable_membership()
    return soe, membership


def strong_rows(soe: SoeEngine) -> dict[int, int]:
    """sensor_id -> occurrence count over a strong scan (duplicates show
    up as counts > 1)."""
    rows, _ = soe.aggregate(
        "readings",
        group_by=["sensor_id"],
        aggregates=[("count", None)],
        consistency="strong",
    )
    return {sensor_id: count for sensor_id, count in rows}


@given(
    victim=st.sampled_from(WORKERS),
    full_isolation=st.booleans(),
    cut_ticks=st.integers(min_value=1, max_value=10),
    writes_during=st.integers(min_value=0, max_value=6),
    writes_after=st.integers(min_value=0, max_value=4),
)
@settings(max_examples=25, deadline=None)
def test_partition_then_heal_loses_and_duplicates_nothing(
    victim, full_isolation, cut_ticks, writes_during, writes_after
):
    soe, membership = build_soe()
    if full_isolation:
        soe.cluster.isolate(victim)
    else:
        soe.cluster.partition("coordinator", victim)

    acked: list[int] = []
    nacked: list[int] = []
    key = 10_000 + SEED_OFFSET

    def try_insert(k: int, via: str | None = None) -> None:
        try:
            soe.insert("readings", [[k, "p", 1.0]], via=via)
            acked.append(k)
        except SoeError:
            nacked.append(k)

    for tick in range(cut_ticks):
        membership.step()
        if tick < writes_during:
            # alternate front-door traffic with a stale client that
            # still routes through the (possibly cut) victim
            via = victim if tick % 2 else None
            try_insert(key, via=via)
            key += 1

    soe.cluster.heal()
    for _ in range(4):
        membership.step()
    for _ in range(writes_after):
        try_insert(key)
        key += 1

    # safety: the journal never granted two holders at one epoch
    assert membership.check_invariants() == []
    # liveness: post-heal the view converges and front-door writes land
    assert all(
        membership.holder("readings", pid) is not None for pid in range(4)
    )

    soe.catch_up_all()
    seen = strong_rows(soe)
    for k in acked:
        assert seen.get(k) == 1, f"acked write {k} lost or duplicated"
    for k in nacked:
        assert k not in seen, f"unacked write {k} leaked in"
    # the preload is intact too: 60 distinct keys, each exactly once
    preload = {k: c for k, c in seen.items() if k < 10_000}
    assert len(preload) == 60 and set(preload.values()) == {1}
