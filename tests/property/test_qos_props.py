"""Property tests for overload protection (hypothesis).

Two invariants the QoS layer stakes its accounting on:

* **conservation / exactly-once** — over any submit schedule and any
  admission configuration, ``submitted == admitted + shed`` per class
  and globally, and no ticket is ever both shed and executed;
* **breaker state-machine legality** — over any outcome/clock-advance
  sequence, a breaker only makes the four legal transitions, and never
  reaches ``half_open`` without first being ``open`` for at least the
  configured cool-down.

``REPRO_CHAOS_SEED`` shifts the derandomised hypothesis universe the
same way the chaos suites shift their fault plans.
"""

from __future__ import annotations

import os

from hypothesis import given, seed, settings
from hypothesis import strategies as st

from repro.errors import AdmissionRejectedError, CircuitOpenError, RetryableError
from repro.qos import (
    AdmissionConfig,
    AdmissionController,
    BreakerConfig,
    CircuitBreaker,
    QUERY_CLASSES,
)
from repro.util.retry import SimulatedClock

SEED_OFFSET = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

LEGAL_TRANSITIONS = {
    ("closed", "open"),
    ("open", "half_open"),
    ("half_open", "closed"),
    ("half_open", "open"),
}


# -- conservation / exactly-once ----------------------------------------------


submit_schedules = st.lists(
    st.tuples(
        st.sampled_from(QUERY_CLASSES),
        st.booleans(),  # target the hot node?
    ),
    min_size=0,
    max_size=120,
)

admission_configs = st.builds(
    AdmissionConfig,
    weights=st.fixed_dictionaries(
        {c: st.integers(min_value=1, max_value=9) for c in QUERY_CLASSES}
    ),
    queue_depth=st.one_of(
        st.integers(min_value=1, max_value=8),
        st.fixed_dictionaries(
            {c: st.integers(min_value=1, max_value=8) for c in QUERY_CLASSES}
        ),
    ),
    fifo=st.booleans(),
)


class HotStats:
    def __init__(self, hot: list[str]) -> None:
        self.hot = hot

    def hotspots(self, factor: float = 2.0) -> list[str]:
        return list(self.hot)


@seed(987_001 + SEED_OFFSET)
@settings(max_examples=60, deadline=None)
@given(
    config=admission_configs,
    schedule=submit_schedules,
    drain_every=st.integers(min_value=1, max_value=7),
    hot_node=st.booleans(),
)
def test_admission_conserves_every_submit(config, schedule, drain_every, hot_node):
    stats = HotStats(["worker0"] if hot_node else [])
    ac = AdmissionController(config, stats=stats)
    submitted = admitted = shed = 0
    for index, (query_class, target_hot) in enumerate(schedule):
        targets = ("worker0",) if target_hot else ("worker1",)
        submitted += 1
        try:
            ac.submit(query_class, lambda: None, target_nodes=targets)
            admitted += 1
        except AdmissionRejectedError as exc:
            shed += 1
            assert isinstance(exc, RetryableError)
        if index % drain_every == 0:
            ac.run_all(limit=2)
    served = ac.run_all()
    executed = sum(1 for t in served if t.state == "executed")
    assert executed == len(served)

    totals = ac.counts()
    assert totals["submitted"] == submitted
    assert totals["admitted"] == admitted
    assert totals["shed"] == shed
    assert submitted == admitted + shed
    # exactly-once: everything admitted was eventually served, nothing shed was
    assert totals["executed"] == admitted
    assert not set(ac.shed_tickets) & set(ac.executed_tickets)
    assert ac.conserved()
    assert ac.queued() == 0


@seed(987_002 + SEED_OFFSET)
@settings(max_examples=40, deadline=None)
@given(schedule=submit_schedules)
def test_fifo_and_weighted_serve_the_same_multiset(schedule):
    """Scheduling mode reorders service, never changes who gets served."""

    def admitted_classes(fifo: bool) -> list[str]:
        ac = AdmissionController(AdmissionConfig(queue_depth=4, fifo=fifo))
        for query_class, _ in schedule:
            try:
                ac.submit(query_class)
            except AdmissionRejectedError:
                pass
        return sorted(t.query_class for t in ac.run_all())

    assert admitted_classes(True) == admitted_classes(False)


# -- breaker state-machine legality -------------------------------------------


breaker_configs = st.builds(
    BreakerConfig,
    failure_threshold=st.floats(min_value=0.25, max_value=1.0),
    min_calls=st.integers(min_value=1, max_value=4),
    window=st.integers(min_value=4, max_value=8),
    cooldown_seconds=st.floats(min_value=0.1, max_value=5.0),
)

breaker_events = st.lists(
    st.one_of(
        st.just(("call", True)),
        st.just(("call", False)),
        st.tuples(
            st.just("advance"), st.floats(min_value=0.0, max_value=3.0)
        ),
    ),
    min_size=0,
    max_size=80,
)


class Transient(RetryableError):
    pass


def _fail():
    raise Transient("transient seam failure")


@seed(987_003 + SEED_OFFSET)
@settings(max_examples=60, deadline=None)
@given(config=breaker_configs, events=breaker_events)
def test_breaker_transitions_are_always_legal(config, events):
    clock = SimulatedClock()
    breaker = CircuitBreaker("prop", config, clock=clock)
    for kind, value in events:
        if kind == "advance":
            clock.advance(value)
            continue
        try:
            if value:
                breaker.call(lambda: "ok")
            else:
                breaker.call(_fail)
        except (RetryableError, CircuitOpenError):
            pass

    transitions = breaker.transitions
    for t in transitions:
        assert (t.source, t.target) in LEGAL_TRANSITIONS, transitions
    # chained: each transition starts where the previous one ended
    for prev, nxt in zip(transitions, transitions[1:]):
        assert prev.target == nxt.source
        assert nxt.at >= prev.at
    if transitions:
        assert transitions[0].source == "closed"
    # half-open is only ever entered after a full cool-down in open
    for prev, nxt in zip(transitions, transitions[1:]):
        if nxt.target == "half_open":
            assert prev.target == "open"
            assert nxt.at - prev.at >= config.cooldown_seconds - 1e-9


@seed(987_004 + SEED_OFFSET)
@settings(max_examples=40, deadline=None)
@given(config=breaker_configs, advances=st.lists(
    st.floats(min_value=0.0, max_value=2.0), min_size=1, max_size=40
))
def test_open_breaker_never_touches_the_seam_before_cooldown(config, advances):
    clock = SimulatedClock()
    breaker = CircuitBreaker("prop", config, clock=clock)
    # drive it open
    while breaker.state != "open":
        try:
            breaker.call(_fail)
        except RetryableError:
            pass
    opened_at = clock.now
    touches = []
    for delta in advances:
        clock.advance(delta)
        try:
            breaker.call(lambda: touches.append(clock.now))
        except CircuitOpenError:
            pass
        if breaker.state == "closed":
            break
    for touched_at in touches:
        assert touched_at - opened_at >= config.cooldown_seconds - 1e-9
