"""Property: under any seeded kill/revive schedule, every query either
fails with a well-typed error or returns exactly the fault-free answer.

No partial results, no silent corruption — the availability contract of
the failure-aware coordinator. `REPRO_CHAOS_SEED` shifts the seed space
so the CI matrix explores different schedules per job.
"""

from __future__ import annotations

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import ChaosController, FaultPlan
from repro.errors import ReproError
from repro.soe.engine import SoeEngine

SEED_OFFSET = int(os.environ.get("REPRO_CHAOS_SEED", "0"))
WORKERS = ["worker0", "worker1", "worker2"]
ROWS = [[i, f"r{i % 3}", float(i % 7)] for i in range(60)]


def build_soe(chaos: ChaosController | None = None) -> SoeEngine:
    soe = SoeEngine(
        node_count=3, node_modes="olap", replication=2, chaos=chaos
    )
    soe.create_table(
        "readings", ["sensor_id", "region", "value"], ["sensor_id"], partition_count=4
    )
    soe.load("readings", ROWS)
    return soe


FAULT_FREE = sorted(build_soe().aggregate("readings", group_by=["region"])[0])


@given(seed=st.integers(min_value=0, max_value=2**16), rate=st.floats(0.1, 0.6))
@settings(max_examples=25, deadline=None)
def test_queries_fail_cleanly_or_answer_exactly(seed: int, rate: float) -> None:
    plan = FaultPlan.kill_schedule(
        seed=seed + SEED_OFFSET, ticks=10, rate=rate, nodes=WORKERS
    )
    controller = ChaosController(plan)
    soe = build_soe(chaos=controller)
    for _ in range(10):
        controller.tick()
        try:
            rows, _cost = soe.aggregate("readings", group_by=["region"])
        except ReproError:
            continue  # a typed failure is an acceptable outcome
        assert sorted(rows) == FAULT_FREE


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=25, deadline=None)
def test_replication_two_with_single_failures_never_errors(seed: int) -> None:
    # kill_schedule keeps at most one node dead at a time, and every
    # partition has two replicas — so failover must always find a host.
    plan = FaultPlan.kill_schedule(
        seed=seed + SEED_OFFSET, ticks=10, rate=0.5, nodes=WORKERS
    )
    controller = ChaosController(plan)
    soe = build_soe(chaos=controller)
    for _ in range(10):
        controller.tick()
        rows, _cost = soe.aggregate("readings", group_by=["region"])
        assert sorted(rows) == FAULT_FREE
