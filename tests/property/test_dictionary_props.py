"""Property tests: dictionary encoding invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnstore.compression import NULL_VID
from repro.columnstore.dictionary import AppendDictionary, SortedDictionary

values_strategy = st.lists(st.text(max_size=8), max_size=60)


@given(values_strategy)
def test_sorted_dictionary_round_trip(values):
    dictionary = SortedDictionary(values)
    for value in values:
        vid = dictionary.vid_of(value)
        assert vid != NULL_VID
        assert dictionary.value_of(vid) == value


@given(values_strategy)
def test_sorted_dictionary_vid_order_equals_value_order(values):
    dictionary = SortedDictionary(values)
    decoded = [dictionary.value_of(v) for v in range(len(dictionary))]
    assert decoded == sorted(set(values))


@given(values_strategy, values_strategy)
def test_encode_many_remap_preserves_lookups(first, second):
    dictionary = SortedDictionary(first)
    before = {value: dictionary.vid_of(value) for value in first}
    remap = dictionary.encode_many(second)
    for value, old_vid in before.items():
        new_vid = remap[old_vid] if remap is not None else old_vid
        assert dictionary.value_of(new_vid) == value
    for value in second:
        assert dictionary.value_of(dictionary.vid_of(value)) == value


@given(values_strategy)
def test_append_dictionary_ids_are_stable(values):
    dictionary = AppendDictionary()
    first_ids = [dictionary.encode(value) for value in values]
    second_ids = [dictionary.encode(value) for value in values]
    assert first_ids == second_ids
    for value, vid in zip(values, first_ids):
        assert dictionary.value_of(vid) == value


@given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=50))
def test_sorted_dictionary_range_vids_cover_exactly(values):
    dictionary = SortedDictionary(values)
    low = min(values)
    high = max(values)
    lo, hi = dictionary.range_vids(low, high)
    covered = set(dictionary.values[lo:hi])
    assert covered == {v for v in set(values) if low <= v <= high}
