"""Property test: random interleaved transactions keep MVCC consistent."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnstore.table import ColumnTable
from repro.core import types
from repro.core.schema import schema
from repro.errors import WriteConflictError
from repro.transaction.manager import TransactionManager


@st.composite
def operations(draw):
    ops = []
    count = draw(st.integers(1, 30))
    for _index in range(count):
        ops.append(
            draw(
                st.one_of(
                    st.tuples(st.just("insert"), st.integers(0, 9)),
                    st.tuples(st.just("delete"), st.integers(0, 9)),
                    st.tuples(st.just("commit"), st.just(0)),
                    st.tuples(st.just("rollback"), st.just(0)),
                )
            )
        )
    return ops


@given(operations(), operations())
@settings(max_examples=60, deadline=None)
def test_committed_state_matches_model(script_a, script_b):
    """Run two transaction scripts back to back; the committed visible
    multiset must equal a sequential model of the committed effects."""
    manager = TransactionManager()
    table = ColumnTable("t", schema(("k", types.INTEGER)))

    model: Counter = Counter()

    for script in (script_a, script_b):
        txn = manager.begin()
        pending = Counter()
        for op, key in script:
            if not txn.is_active:
                break
            if op == "insert":
                table.insert([key], txn)
                pending[key] += 1
            elif op == "delete":
                matches = table.find_rows(
                    lambda row, k=key: row[0] == k, txn.snapshot_cid, txn.tid
                )
                if matches:
                    ordinal, position, _row = matches[0]
                    try:
                        table.delete_at(ordinal, position, txn)
                        pending[key] -= 1
                    except WriteConflictError:
                        pass
            elif op == "commit":
                manager.commit(txn)
                model.update(pending)
                pending = Counter()
            else:
                manager.rollback(txn)
                pending = Counter()
        if txn.is_active:
            manager.rollback(txn)

    visible = Counter(row[0] for row in table.scan_rows(manager.last_committed_cid))
    assert visible == +model


@given(operations())
@settings(max_examples=40, deadline=None)
def test_snapshot_is_frozen_during_concurrent_commits(script):
    """A reader's view never changes while another transaction commits."""
    manager = TransactionManager()
    table = ColumnTable("t", schema(("k", types.INTEGER)))

    setup = manager.begin()
    table.insert_many([[1], [2], [3]], setup)
    manager.commit(setup)

    reader = manager.begin()
    baseline = sorted(
        row[0] for row in table.scan_rows(reader.snapshot_cid, reader.tid)
    )

    writer = manager.begin()
    for op, key in script:
        if op == "insert":
            table.insert([key], writer)
    manager.commit(writer)

    view = sorted(row[0] for row in table.scan_rows(reader.snapshot_cid, reader.tid))
    assert view == baseline
