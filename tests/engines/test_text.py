"""Tests for the text engine: tokenizer, stemmer, index, analysis."""

import pytest

from repro.core.database import Database
from repro.engines.text.analysis import (
    EntityExtractor,
    NaiveBayesClassifier,
    extract_to_table,
    sentiment_label,
    sentiment_score,
)
from repro.engines.text.index import InvertedIndex, create_text_index
from repro.engines.text.stemmer import stem_word
from repro.engines.text.tokenizer import sentences, tokenize, tokenize_terms
from repro.errors import TextEngineError


def test_tokenize_lowercases_and_splits():
    assert tokenize("Hello, World! It's 42.") == ["hello", "world", "it's", "42"]


def test_tokenize_terms_removes_stopwords_and_stems():
    terms = tokenize_terms("The databases are running quickly")
    assert "the" not in terms
    assert "databas" in terms  # stemmed
    assert "run" in terms


def test_sentences():
    assert sentences("One. Two! Three?") == ["One.", "Two!", "Three?"]


@pytest.mark.parametrize(
    "word,stem",
    [
        ("caresses", "caress"),
        ("ponies", "poni"),
        ("running", "run"),
        ("agreed", "agree"),
        ("databases", "databas"),
        ("happy", "happi"),
        ("relational", "relate"),
        ("cat", "cat"),
    ],
)
def test_stemmer_cases(word, stem):
    assert stem_word(word) == stem


def test_inverted_index_add_remove():
    index = InvertedIndex("docs", "body")
    index.add_document(("p0", 0), "fast database engine")
    index.add_document(("p0", 1), "slow file system")
    assert index.lookup("database") == {("p0", 0)}
    assert index.lookup("database engine") == {("p0", 0)}
    assert index.lookup("database file") == set()
    index.remove_document(("p0", 0))
    assert index.lookup("database") == set()
    assert index.document_count == 1


def test_index_reindex_on_same_docid():
    index = InvertedIndex("docs", "body")
    index.add_document(("p0", 0), "alpha")
    index.add_document(("p0", 0), "beta")
    assert index.lookup("alpha") == set()
    assert index.lookup("beta") == {("p0", 0)}


def test_bm25_ranks_exact_topic_higher():
    index = InvertedIndex("docs", "body")
    index.add_document(("p0", 0), "database database database tuning")
    index.add_document(("p0", 1), "database administration for beginners and experts everywhere")
    index.add_document(("p0", 2), "cooking recipes")
    ranked = index.score("database")
    assert [doc for doc, _score in ranked][0] == ("p0", 0)
    assert ("p0", 2) not in dict(ranked)


def test_create_text_index_maintains_on_dml():
    db = Database()
    db.execute("CREATE TABLE notes (id INT, body VARCHAR)")
    db.execute("INSERT INTO notes VALUES (1, 'graph processing'), (2, 'text processing')")
    index = create_text_index(db, "notes", "body")
    assert index.document_count == 2
    db.execute("INSERT INTO notes VALUES (3, 'stream processing')")
    assert index.document_count == 3
    db.execute("DELETE FROM notes WHERE id = 1")
    assert db.query("SELECT id FROM notes WHERE CONTAINS(body, 'processing') ORDER BY id").rows == [[2], [3]]


def test_create_text_index_validates(db=None):
    database = Database()
    database.execute("CREATE TABLE n (id INT)")
    with pytest.raises(TextEngineError):
        create_text_index(database, "n", "missing")


def test_contains_via_index_respects_transactions():
    db = Database()
    db.execute("CREATE TABLE notes (id INT, body VARCHAR)")
    create_text_index(db, "notes", "body")
    txn = db.begin()
    db.table("notes").insert([1, "secret database"], txn)
    # uncommitted row is not in the index yet
    assert db.query("SELECT COUNT(*) FROM notes WHERE CONTAINS(body, 'database')").scalar() == 0
    db.commit(txn)
    assert db.query("SELECT COUNT(*) FROM notes WHERE CONTAINS(body, 'database')").scalar() == 1


def test_entity_extraction_types():
    text = "Contact Dr. Jones of Initech Inc at a.b@example.com, paid $5,000 on 2014-05-01 (up 12%)"
    entities = {(e.entity_type, e.text) for e in EntityExtractor().extract(text)}
    types = {t for t, _ in entities}
    assert {"PERSON", "COMPANY", "EMAIL", "MONEY", "DATE", "PERCENT"} <= types


def test_entity_extraction_custom_rule():
    extractor = EntityExtractor(rules=[])
    extractor.add_rule("TICKET", r"TKT-\d+")
    found = extractor.extract("see TKT-123 and TKT-9")
    assert [e.text for e in found] == ["TKT-123", "TKT-9"]


def test_extract_to_table_bridges_to_relational():
    db = Database()
    db.execute("CREATE TABLE mails (id INT, body VARCHAR)")
    db.execute("INSERT INTO mails VALUES (1, 'invoice from Initech Inc over $99'), (2, 'hello')")
    count = extract_to_table(db, "mails", "body", key_column="id")
    assert count == 2
    rows = db.query(
        "SELECT source_key, entity_type FROM extracted_entities ORDER BY entity_type"
    ).rows
    assert rows == [["1", "COMPANY"], ["1", "MONEY"]]


def test_sentiment_polarity_and_negation():
    assert sentiment_score("this is great and excellent") > 0
    assert sentiment_score("terrible awful failure") < 0
    assert sentiment_score("not good") < 0
    assert sentiment_label("neutral words only") == "neutral"


def test_naive_bayes_classification():
    classifier = NaiveBayesClassifier()
    classifier.train(
        [
            ("great product works fine", "pos"),
            ("excellent quality very happy", "pos"),
            ("terrible broken bad", "neg"),
            ("awful failure poor quality", "neg"),
        ]
    )
    assert classifier.classify("happy with the excellent product") == "pos"
    assert classifier.classify("bad broken thing") == "neg"
    assert set(classifier.classes) == {"pos", "neg"}
    assert NaiveBayesClassifier().classify("anything") is None


def test_fuzzy_terms_and_lookup():
    index = InvertedIndex("docs", "body")
    index.add_document(("p0", 0), "database tuning guide")
    index.add_document(("p0", 1), "databse tunning guide")  # typos
    index.add_document(("p0", 2), "cooking recipes")
    # exact lookup misses the typo document
    assert index.lookup("database") == {("p0", 0)}
    # fuzzy lookup (1 edit) catches it
    assert index.lookup_fuzzy("database") == {("p0", 0), ("p0", 1)}
    assert index.lookup_fuzzy("database cooking") == set()
    variants = index.fuzzy_terms("databas", max_distance=1)
    assert "databas" in variants or "databs" in variants or variants


def test_fuzzy_distance_banding():
    index = InvertedIndex("docs", "body")
    index.add_document(("p0", 0), "alpha")
    assert index.fuzzy_terms("alphaxx", max_distance=1) == []
    assert index.fuzzy_terms("alphax", max_distance=1) == ["alpha"]


def test_pos_tagging_basic_sentence():
    from repro.engines.text.postag import pos_tag

    tagged = dict(pos_tag("the quick engine quickly processes 42 documents"))
    assert tagged["the"] == "DET"
    assert tagged["quickly"] == "ADV"
    assert tagged["42"] == "NUM"
    assert tagged["documents"] == "NOUN"
    assert tagged["processes"] in ("VERB", "NOUN")


def test_pos_contextual_rules():
    from repro.engines.text.postag import pos_tag

    tagged = dict(pos_tag("they run because the run was scheduled"))
    tags = pos_tag("they run")
    assert tags[1][1] == "VERB"       # after a pronoun
    tags = pos_tag("the run")
    assert tags[1][1] == "NOUN"       # after a determiner


def test_noun_phrase_extraction():
    from repro.engines.text.postag import noun_phrases

    phrases = noun_phrases("the reliable compression engine beats a naive implementation")
    joined = " | ".join(phrases)
    assert "compression engine" in joined
    assert "implementation" in joined
