"""Tests for basket analysis, forecasting, clustering, and R ops."""

import numpy as np
import pytest

from repro.engines.ml.basket import association_rules, frequent_itemsets
from repro.engines.ml.cluster import kmeans, silhouette_score
from repro.engines.ml.forecast import (
    auto_forecast,
    holt,
    holt_winters,
    linear_trend,
    simple_exponential,
)
from repro.engines.ml.rops import make_r_adapter
from repro.errors import EngineError
from repro.workloads.generators import baskets


def test_frequent_itemsets_finds_planted_pairs():
    frequent = frequent_itemsets(baskets(400), min_support=0.2)
    assert frozenset(["beer", "chips"]) in frequent
    assert frozenset(["bread", "butter"]) in frequent


def test_partitioned_counting_matches_single_partition():
    data = baskets(300)
    single = frequent_itemsets(data, min_support=0.15, partitions=1)
    sharded = frequent_itemsets(data, min_support=0.15, partitions=4)
    assert single == sharded


def test_association_rules_confidence_and_lift():
    rules = association_rules(
        [["a", "b"], ["a", "b"], ["a", "c"], ["b"]],
        min_support=0.25,
        min_confidence=0.5,
    )
    by_pair = {(r.antecedent, r.consequent): r for r in rules}
    rule = by_pair[(("b",), ("a",))]
    assert rule.confidence == pytest.approx(2 / 3)
    assert rule.lift == pytest.approx((2 / 3) / (3 / 4))


def test_empty_transactions():
    assert frequent_itemsets([], min_support=0.5) == {}


def test_linear_trend_extrapolates():
    forecast = linear_trend([1.0, 2.0, 3.0, 4.0], horizon=2)
    assert forecast.predictions == pytest.approx([5.0, 6.0])
    assert forecast.mse == pytest.approx(0.0, abs=1e-12)


def test_ses_is_flat():
    forecast = simple_exponential([10.0, 12.0, 11.0], horizon=3, alpha=0.5)
    assert len(set(np.round(forecast.predictions, 9))) == 1


def test_holt_captures_trend():
    forecast = holt(np.arange(20, dtype=float) * 2, horizon=3)
    assert forecast.predictions[0] == pytest.approx(40.0, abs=1.0)
    assert forecast.predictions[2] > forecast.predictions[0]


def test_holt_winters_captures_seasonality():
    period = 12
    t = np.arange(60)
    signal = 50 + 0.5 * t + 10 * np.sin(2 * np.pi * t / period)
    forecast = holt_winters(signal, horizon=period, period=period)
    predicted = forecast.predictions
    expected = 50 + 0.5 * (60 + np.arange(period)) + 10 * np.sin(2 * np.pi * (60 + np.arange(period)) / period)
    assert np.corrcoef(predicted, expected)[0, 1] > 0.97


def test_forecast_validation():
    with pytest.raises(EngineError):
        linear_trend([1.0], horizon=1)
    with pytest.raises(EngineError):
        holt_winters([1.0] * 5, horizon=1, period=4)
    with pytest.raises(EngineError):
        simple_exponential([], horizon=1)


def test_auto_forecast_picks_seasonal_model_for_seasonal_data():
    period = 6
    t = np.arange(48)
    signal = 10 * np.sin(2 * np.pi * t / period) + 100
    forecast = auto_forecast(signal, horizon=6, period=period)
    expected = 10 * np.sin(2 * np.pi * (48 + np.arange(6)) / period) + 100
    assert np.abs(forecast.predictions - expected).mean() < 2.0


def test_kmeans_separates_blobs():
    rng = np.random.default_rng(0)
    blob_a = rng.normal(0, 0.2, (30, 2))
    blob_b = rng.normal(5, 0.2, (30, 2))
    result = kmeans(np.vstack([blob_a, blob_b]), k=2)
    assert len(set(result.labels[:30])) == 1
    assert len(set(result.labels[30:])) == 1
    assert result.labels[0] != result.labels[30]
    assert silhouette_score(np.vstack([blob_a, blob_b]), result.labels) > 0.8


def test_kmeans_validation():
    with pytest.raises(EngineError):
        kmeans(np.zeros((3, 2)), k=5)
    with pytest.raises(EngineError):
        kmeans([], k=1)


def test_kmeans_deterministic_by_seed():
    rng = np.random.default_rng(2)
    data = rng.normal(0, 1, (50, 3))
    a = kmeans(data, k=3, seed=11)
    b = kmeans(data, k=3, seed=11)
    assert np.array_equal(a.labels, b.labels)


def test_r_adapter_cor_lm_summary():
    provider = make_r_adapter()
    data_rows = [[float(i), 2.0 * i + 1.0] for i in range(20)]
    columns, rows = provider.operator("cor")(["x", "y"], data_rows)
    assert columns == ["variable", "x", "y"]
    assert rows[0][2] == pytest.approx(1.0)

    _cols, lm = provider.operator("lm")(["x", "y"], data_rows)
    assert dict(lm)["slope"] == pytest.approx(2.0)

    _cols, summary = provider.operator("summary")(["x", "y"], data_rows)
    assert summary[0][0] == "x"
    # transfer accounting recorded shipped rows both ways
    assert provider.stats.rows_out == 60
    assert provider.stats.rows_in > 0


def test_r_adapter_unknown_function():
    provider = make_r_adapter()
    with pytest.raises(EngineError):
        provider.call("bogus", (["x"], [[1.0]]), {})
