"""Tests for the SLACID-style matrices and linalg kernels."""

import numpy as np
import pytest

from repro.core.database import Database
from repro.engines.scientific.linalg import (
    FileRepositoryBaseline,
    conjugate_gradient,
    pagerank_matrix,
    power_iteration,
)
from repro.engines.scientific.matrix import ColumnarSparseMatrix
from repro.errors import ScientificError


def test_from_dense_round_trip():
    dense = np.array([[0.0, 1.0], [2.0, 0.0]])
    matrix = ColumnarSparseMatrix.from_dense(dense)
    assert np.array_equal(matrix.to_dense(), dense)
    assert matrix.nnz == 2


def test_point_updates_go_to_delta_then_merge():
    matrix = ColumnarSparseMatrix.from_dense(np.eye(3))
    matrix.set(0, 2, 5.0)
    assert matrix.delta_size == 1
    assert matrix.get(0, 2) == 5.0  # visible before merge
    matrix.merge_delta()
    assert matrix.delta_size == 0
    assert matrix.get(0, 2) == 5.0
    assert matrix.merges == 2  # from_dense merged once already


def test_delta_override_and_zero_removal():
    matrix = ColumnarSparseMatrix.from_dense(np.array([[1.0, 2.0], [0.0, 3.0]]))
    matrix.set(0, 1, 0.0)  # delete an entry via zero
    matrix.set(1, 0, 7.0)
    assert sorted(matrix.triples()) == [(0, 0, 1.0), (1, 0, 7.0), (1, 1, 3.0)]
    matrix.merge_delta()
    assert matrix.nnz == 3


def test_matvec_with_pending_delta_matches_dense():
    rng = np.random.default_rng(4)
    dense = rng.random((6, 6))
    dense[dense < 0.6] = 0.0
    matrix = ColumnarSparseMatrix.from_dense(dense)
    dense[2, 3] = 9.0
    matrix.set(2, 3, 9.0)  # unmerged update
    vector = rng.random(6)
    assert np.allclose(matrix.matvec(vector), dense @ vector)


def test_matvec_validates_shape():
    matrix = ColumnarSparseMatrix(2, 3)
    with pytest.raises(ScientificError):
        matrix.matvec(np.ones(2))


def test_bounds_checking():
    matrix = ColumnarSparseMatrix(2, 2)
    with pytest.raises(ScientificError):
        matrix.set(2, 0, 1.0)
    with pytest.raises(ScientificError):
        matrix.get(0, 5)
    with pytest.raises(ScientificError):
        ColumnarSparseMatrix(0, 1)


def test_transpose():
    matrix = ColumnarSparseMatrix.from_coo(2, 3, [(0, 2, 5.0)])
    transposed = matrix.transpose()
    assert transposed.rows == 3 and transposed.cols == 2
    assert transposed.get(2, 0) == 5.0


def test_relational_round_trip():
    db = Database()
    matrix = ColumnarSparseMatrix.from_dense(np.array([[1.0, 0.0], [0.5, 2.0]]))
    count = matrix.to_table(db, "m")
    assert count == 3
    restored = ColumnarSparseMatrix.from_table(db, "m", 2, 2)
    assert np.array_equal(restored.to_dense(), matrix.to_dense())


def test_power_iteration_dominant_eigenpair():
    dense = np.array([[2.0, 1.0], [1.0, 2.0]])
    eigenvalue, vector = power_iteration(ColumnarSparseMatrix.from_dense(dense))
    assert eigenvalue == pytest.approx(3.0, abs=1e-6)
    assert abs(vector[0]) == pytest.approx(abs(vector[1]), abs=1e-4)
    with pytest.raises(ScientificError):
        power_iteration(ColumnarSparseMatrix(2, 3))


def test_conjugate_gradient_solves_spd_system():
    dense = np.array([[4.0, 1.0], [1.0, 3.0]])
    rhs = np.array([1.0, 2.0])
    solution = conjugate_gradient(ColumnarSparseMatrix.from_dense(dense), rhs)
    assert np.allclose(dense @ solution, rhs, atol=1e-8)


def test_pagerank_matrix_favours_sink_of_links():
    # 0 -> 2, 1 -> 2, 2 -> 0: vertex 2 collects rank
    adjacency = ColumnarSparseMatrix.from_coo(3, 3, [(0, 2, 1.0), (1, 2, 1.0), (2, 0, 1.0)])
    ranks = pagerank_matrix(adjacency)
    assert ranks.sum() == pytest.approx(1.0, abs=1e-6)
    assert ranks[2] == ranks.max()


def test_file_repository_baseline_round_trips(tmp_path):
    matrix = ColumnarSparseMatrix.from_dense(np.array([[2.0, 1.0], [1.0, 2.0]]))
    baseline = FileRepositoryBaseline(tmp_path)
    eigenvalue, _vector = baseline.roundtrip_power_iteration(matrix, analysis_rounds=2)
    assert eigenvalue == pytest.approx(3.0, abs=1e-4)
    assert baseline.files_written == 2
