"""Tests for the time-series engine."""

import numpy as np
import pytest

from repro.engines.timeseries.analytics import (
    anomalies,
    correlation,
    difference,
    euclidean_distance,
    exponential_smoothing,
    interpolate_gaps,
    moving_average,
    normalize,
    resample,
)
from repro.engines.timeseries.compression import compression_ratio, decode, encode
from repro.engines.timeseries.series import TimeSeries
from repro.errors import TimeSeriesError


def make(n=100, interval=60, base=20.0):
    ts = np.arange(n) * interval
    values = base + np.sin(np.arange(n) / 5.0)
    return TimeSeries(ts, values)


def test_series_sorts_and_rejects_duplicates():
    series = TimeSeries([30, 10, 20], [3.0, 1.0, 2.0])
    assert list(series.timestamps) == [10, 20, 30]
    assert list(series.values) == [1.0, 2.0, 3.0]
    with pytest.raises(TimeSeriesError):
        TimeSeries([1, 1], [1.0, 2.0])
    with pytest.raises(TimeSeriesError):
        TimeSeries([1, 2], [1.0])


def test_value_at_and_slice():
    series = make(10)
    assert series.value_at(60) == pytest.approx(series.values[1])
    assert series.value_at(61) is None
    window = series.slice(60, 180)
    assert len(window) == 3
    assert window.start == 60 and window.end == 180


def test_compression_round_trip_exact_at_scale():
    series = make(500)
    blob = encode(series, value_scale=3)
    restored = decode(blob)
    assert np.array_equal(series.timestamps, restored.timestamps)
    assert np.allclose(series.values, restored.values, atol=5e-4)


def test_compression_ratio_high_for_regular_data():
    # regular interval, slowly moving values: the paper's sensor sweet spot
    series = TimeSeries(np.arange(1000) * 60, np.full(1000, 21.5))
    assert compression_ratio(series) > 5.0


def test_compression_handles_irregular_and_jumpy_data():
    rng = np.random.default_rng(1)
    ts = np.cumsum(rng.integers(1, 1000, 300))
    values = rng.normal(0, 1e6, 300)
    restored = decode(encode(TimeSeries(ts, values), value_scale=2))
    assert np.allclose(values, restored.values, atol=6e-3)


def test_compression_empty_and_bad_blob():
    assert len(decode(encode(TimeSeries([], [])))) == 0
    with pytest.raises(TimeSeriesError):
        decode(b"garbage")
    with pytest.raises(TimeSeriesError):
        encode(make(5), value_scale=12)


def test_resample_mean_and_last():
    series = TimeSeries([0, 30, 60, 90], [1.0, 3.0, 5.0, 7.0])
    mean = resample(series, 60, "mean")
    assert list(mean.timestamps) == [0, 60]
    assert list(mean.values) == [2.0, 6.0]
    last = resample(series, 60, "last")
    assert list(last.values) == [3.0, 7.0]
    with pytest.raises(TimeSeriesError):
        resample(series, 60, "mode")


def test_correlation_of_identical_and_inverted():
    base = make(200)
    inverted = TimeSeries(base.timestamps, -base.values)
    assert correlation(base, base) == pytest.approx(1.0)
    assert correlation(base, inverted) == pytest.approx(-1.0)


def test_correlation_requires_overlap():
    a = TimeSeries([0, 1], [1.0, 2.0])
    b = TimeSeries([10, 11], [1.0, 2.0])
    with pytest.raises(TimeSeriesError):
        correlation(a, b)


def test_euclidean_distance():
    a = TimeSeries([0, 1], [0.0, 0.0])
    b = TimeSeries([0, 1], [3.0, 4.0])
    assert euclidean_distance(a, b) == 5.0


def test_moving_average_and_smoothing():
    series = TimeSeries(range(5), [0.0, 10.0, 0.0, 10.0, 0.0])
    sma = moving_average(series, 2)
    assert list(sma.values) == [5.0, 5.0, 5.0, 5.0]
    ema = exponential_smoothing(series, alpha=1.0)
    assert list(ema.values) == list(series.values)
    with pytest.raises(TimeSeriesError):
        exponential_smoothing(series, alpha=0.0)


def test_difference_and_normalize():
    series = TimeSeries([0, 1, 2], [1.0, 3.0, 6.0])
    assert list(difference(series).values) == [2.0, 3.0]
    z = normalize(series)
    assert np.mean(z.values) == pytest.approx(0.0, abs=1e-12)
    flat = normalize(TimeSeries([0, 1], [5.0, 5.0]))
    assert list(flat.values) == [0.0, 0.0]


def test_interpolate_gaps():
    series = TimeSeries([0, 100], [0.0, 100.0])
    filled = interpolate_gaps(series, 25)
    assert list(filled.values) == [0.0, 25.0, 50.0, 75.0, 100.0]


def test_anomaly_detection_flags_spike():
    values = [10.0] * 50
    rng = np.random.default_rng(0)
    values = list(10 + rng.normal(0, 0.1, 50))
    values[40] = 50.0
    series = TimeSeries(range(len(values)), values)
    flagged = anomalies(series, window=20, threshold=4.0)
    assert 40 in flagged
