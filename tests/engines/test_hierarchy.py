"""Tests for hierarchy views and versioned hierarchies."""

import pytest

from repro.core.database import Database
from repro.engines.graph.hierarchy import (
    HierarchyView,
    VersionedHierarchy,
    descendant_count_via_self_joins,
    register_hierarchy_functions,
)
from repro.errors import GraphEngineError

PARENTS = {
    "root": None,
    "eu": "root",
    "us": "root",
    "de": "eu",
    "fr": "eu",
    "muc": "de",
    "ber": "de",
}


@pytest.fixture
def view():
    return HierarchyView("org", PARENTS)


def test_descendant_count_is_interval_based(view):
    assert view.descendant_count("root") == 6
    assert view.descendant_count("eu") == 4
    assert view.descendant_count("de") == 2
    assert view.descendant_count("muc") == 0


def test_descendant_count_matches_self_join_baseline(view):
    for node in PARENTS:
        assert view.descendant_count(node) == descendant_count_via_self_joins(PARENTS, node)


def test_is_descendant_and_levels(view):
    assert view.is_descendant("muc", "root")
    assert view.is_descendant("muc", "de")
    assert not view.is_descendant("muc", "us")
    assert not view.is_descendant("de", "de")
    assert view.level("root") == 0
    assert view.level("muc") == 3


def test_descendants_in_dfs_order(view):
    assert view.descendants("eu") == ["de", "muc", "ber", "fr"]


def test_siblings_and_path(view):
    assert view.siblings("de") == ["fr"]
    assert view.siblings("root") == []
    assert view.path_to_root("muc") == ["muc", "de", "eu", "root"]


def test_subtree_aggregate(view):
    values = {"muc": 10.0, "ber": 5.0, "fr": 2.0}
    assert view.subtree_aggregate("de", values) == 15.0
    assert view.subtree_aggregate("eu", values) == 17.0


def test_cycle_detection():
    with pytest.raises(GraphEngineError):
        HierarchyView("bad", {"a": "b", "b": "a"})


def test_unknown_parent_detection():
    with pytest.raises(GraphEngineError):
        HierarchyView("bad", {"a": "ghost"})


def test_from_table():
    db = Database()
    db.execute("CREATE TABLE cc (node VARCHAR, parent VARCHAR)")
    db.execute("INSERT INTO cc VALUES ('r', NULL), ('a', 'r'), ('b', 'r')")
    view = HierarchyView.from_table(db, "cc_h", "cc", "node", "parent")
    assert view.descendant_count("r") == 2
    assert db.catalog.has_view("cc_h")


def test_hier_sql_functions():
    db = Database()
    register_hierarchy_functions(db)
    db.catalog.register_view("org", HierarchyView("org", PARENTS))
    db.execute("CREATE TABLE n (name VARCHAR)")
    db.execute("INSERT INTO n VALUES ('eu'), ('de')")
    rows = db.query(
        "SELECT name, HIER_DESCENDANT_COUNT('org', name) AS dc, "
        "HIER_LEVEL('org', name) AS lvl FROM n ORDER BY name"
    ).rows
    assert rows == [["de", 2, 2], ["eu", 4, 1]]
    assert db.query("SELECT HIER_IS_DESCENDANT('org', 'muc', 'eu') AS x").scalar() is True


def test_versioned_hierarchy_isolates_versions():
    versioned = VersionedHierarchy("vh", PARENTS)
    v1 = versioned.new_version()
    versioned.move(v1, "fr", "us")
    assert versioned.view(0).parent("fr") == "eu"
    assert versioned.view(v1).parent("fr") == "us"
    assert versioned.view(0).descendant_count("eu") == 4
    assert versioned.view(v1).descendant_count("eu") == 3


def test_versioned_hierarchy_chained_versions():
    versioned = VersionedHierarchy("vh", PARENTS)
    v1 = versioned.new_version()
    versioned.insert(v1, "madrid", "eu")
    v2 = versioned.new_version(from_version=v1)
    versioned.move(v2, "madrid", "us")
    assert versioned.view(v1).parent("madrid") == "eu"
    assert versioned.view(v2).parent("madrid") == "us"
    assert "madrid" not in versioned.view(0)


def test_versioned_hierarchy_remove_and_diff():
    versioned = VersionedHierarchy("vh", PARENTS)
    v1 = versioned.new_version()
    versioned.remove(v1, "muc")
    diff = versioned.diff(0, v1)
    assert diff == {"muc": ("de", None)}
    with pytest.raises(GraphEngineError):
        versioned.remove(v1, "de")  # still has a child (ber)


def test_versioned_hierarchy_rejects_cycle_moves():
    versioned = VersionedHierarchy("vh", PARENTS)
    v1 = versioned.new_version()
    with pytest.raises(GraphEngineError):
        versioned.move(v1, "eu", "muc")
    with pytest.raises(GraphEngineError):
        versioned.move(v1, "eu", "eu")
