"""Tests for the geospatial engine."""

import math

import pytest

from repro.engines.geo.geometry import LineString, Point, Polygon, parse_wkt
from repro.engines.geo.index import GridIndex
from repro.engines.geo.operations import (
    area,
    centroid,
    contains,
    distance,
    haversine_km,
    within_distance,
)
from repro.errors import GeoError

SQUARE = Polygon((Point(0, 0), Point(4, 0), Point(4, 4), Point(0, 4)))


def test_wkt_round_trip():
    for text in ("POINT (1 2)", "LINESTRING (0 0, 1 1, 2 0)", "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))"):
        geometry = parse_wkt(text)
        assert parse_wkt(geometry.wkt()) == geometry


def test_wkt_errors():
    with pytest.raises(GeoError):
        parse_wkt("CIRCLE (0 0, 5)")
    with pytest.raises(GeoError):
        parse_wkt("POINT (a b)")
    with pytest.raises(GeoError):
        parse_wkt("POLYGON ((0 0, 1 1))")


def test_distance_point_point():
    assert distance(Point(0, 0), Point(3, 4)) == 5.0


def test_haversine_equator_degree():
    # one degree of longitude at the equator is ~111.19 km
    assert haversine_km(Point(0, 0), Point(1, 0)) == pytest.approx(111.19, abs=0.2)


def test_distance_point_polygon():
    assert distance(Point(2, 2), SQUARE) == 0.0  # inside
    assert distance(Point(6, 2), SQUARE) == 2.0  # right of the square
    assert distance(SQUARE, Point(6, 2)) == 2.0  # symmetric


def test_within_distance():
    assert within_distance(Point(0, 0), Point(1, 1), 1.5)
    assert not within_distance(Point(0, 0), Point(1, 1), 1.0)


def test_area_and_centroid():
    assert area(SQUARE) == 16.0
    assert area(Point(1, 1)) == 0.0
    assert centroid(SQUARE) == Point(2, 2)
    line = LineString((Point(0, 0), Point(2, 0)))
    assert centroid(line) == Point(1, 0)
    assert line.length() == 2.0


def test_contains_point_and_boundary():
    assert contains(SQUARE, Point(1, 1))
    assert contains(SQUARE, Point(0, 0))  # boundary counts
    assert not contains(SQUARE, Point(5, 5))
    inner = Polygon((Point(1, 1), Point(2, 1), Point(2, 2)))
    assert contains(SQUARE, inner)
    with pytest.raises(GeoError):
        contains(Point(0, 0), SQUARE)


def test_grid_index_radius_and_box():
    index = GridIndex(cell_size=1.0)
    index.bulk_load((i, Point(i % 10, i // 10)) for i in range(100))
    hits = index.within_radius(Point(5, 5), 1.0)
    assert {key for key, _p in hits} == {55, 45, 65, 54, 56}
    box = index.in_box(0, 0, 1, 1)
    assert {key for key, _p in box} == {0, 1, 10, 11}


def test_grid_index_polygon_query():
    index = GridIndex(cell_size=1.0)
    index.bulk_load((i, Point(i, 0.5)) for i in range(10))
    triangle = Polygon((Point(0, 0), Point(4, 0), Point(0, 4)))
    inside = {key for key, _p in index.in_polygon(triangle)}
    assert inside == {0, 1, 2, 3}


def test_grid_index_nearest():
    index = GridIndex(cell_size=2.0)
    index.bulk_load((i, Point(i * 3.0, 0)) for i in range(5))
    nearest = index.nearest(Point(4.4, 0), count=2)
    assert [key for key, _p in nearest] == [1, 2]
    assert GridIndex(1.0).nearest(Point(0, 0)) == []


def test_grid_index_validation():
    with pytest.raises(GeoError):
        GridIndex(0)
