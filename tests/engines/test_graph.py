"""Tests for graph views and algorithms."""

import pytest

from repro.core.database import Database
from repro.engines.graph.algorithms import (
    bfs_distances,
    connected_components,
    distance,
    evacuation_plan,
    neighborhood,
    pagerank,
    reachable,
    shortest_path,
    subgraph_where,
)
from repro.engines.graph.graph import create_graph_view
from repro.errors import GraphEngineError


@pytest.fixture
def graph():
    db = Database()
    db.execute("CREATE TABLE v (id INT, kind VARCHAR)")
    db.execute("CREATE TABLE e (s INT, t INT, w DOUBLE)")
    db.execute("INSERT INTO v VALUES (1,'a'),(2,'b'),(3,'a'),(4,'b'),(5,'c'),(9,'x')")
    db.execute(
        "INSERT INTO e VALUES (1,2,1.0),(2,3,1.0),(3,4,1.0),(1,4,10.0),(4,5,2.0)"
    )
    return create_graph_view(db, "g", "v", "id", "e", "s", "t", "w"), db


def test_view_counts_and_attributes(graph):
    view, _db = graph
    assert view.vertex_count == 6
    assert view.edge_count == 5
    assert view.vertex_attributes(1) == {"id": 1, "kind": "a"}
    assert view.neighbors(1) == [2, 4]
    assert view.out_degree(9) == 0


def test_unknown_vertex_raises(graph):
    view, _db = graph
    with pytest.raises(GraphEngineError):
        view.neighbors(777)


def test_bfs_and_distance(graph):
    view, _db = graph
    assert bfs_distances(view, 1) == {1: 0, 2: 1, 4: 1, 3: 2, 5: 2}
    assert distance(view, 1, 5) == 2
    assert distance(view, 1, 9) is None


def test_shortest_path_prefers_cheap_route(graph):
    view, _db = graph
    cost, path = shortest_path(view, 1, 4)
    assert cost == 3.0
    assert path == [1, 2, 3, 4]
    assert shortest_path(view, 5, 1) is None


def test_connected_components(graph):
    view, _db = graph
    components = sorted(connected_components(view), key=len)
    assert [len(c) for c in components] == [1, 5]


def test_neighborhood_and_reachable(graph):
    view, _db = graph
    assert neighborhood(view, 1, 1) == {2, 4}
    assert reachable(view, 3) == {3, 4, 5}


def test_pagerank_sums_to_one(graph):
    view, _db = graph
    ranks = pagerank(view)
    assert sum(ranks.values()) == pytest.approx(1.0, abs=1e-6)
    # vertex 4 has the most inbound weighty edges
    assert ranks[4] > ranks[2]


def test_refresh_sees_new_edges(graph):
    view, db = graph
    db.execute("INSERT INTO e VALUES (5, 9, 1.0)")
    assert distance(view, 1, 9) is None  # stale view
    view.refresh()
    assert distance(view, 1, 9) == 3


def test_subgraph_where_combines_relational_attributes(graph):
    view, _db = graph
    assert subgraph_where(view, lambda attrs: attrs.get("kind") == "a") == {1, 3}


def test_evacuation_plan_avoids_leak():
    db = Database()
    db.execute("CREATE TABLE v (id INT)")
    db.execute("CREATE TABLE e (s INT, t INT, w DOUBLE)")
    db.execute("INSERT INTO v VALUES (0),(1),(2),(3),(4)")
    # line 0-1-2-3-4, exits at both ends, leak at 2
    db.execute(
        "INSERT INTO e VALUES (0,1,1.0),(1,0,1.0),(1,2,1.0),(2,1,1.0),"
        "(2,3,1.0),(3,2,1.0),(3,4,1.0),(4,3,1.0)"
    )
    view = create_graph_view(db, "pipe", "v", "id", "e", "s", "t", "w")
    plan = evacuation_plan(view, leak=2, exits=[0, 4], blocked_radius=0)
    assert plan[2] is None  # the leak itself
    assert plan[1] == (1.0, [1, 0])
    assert plan[3] == (1.0, [3, 4])
    assert plan[0] == (0.0, [0])


def test_negative_weights_rejected(graph):
    view, db = graph
    db.execute("INSERT INTO e VALUES (1, 5, -2.0)")
    view.refresh()
    with pytest.raises(GraphEngineError):
        shortest_path(view, 1, 5)
