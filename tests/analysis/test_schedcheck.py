"""The bounded model checker: determinism, oracles, pruning, replay.

The load-bearing properties:

* **determinism** — the same fingerprint always re-executes the same
  schedule, step for step (otherwise "replayable counterexample" is a
  lie);
* **soundness of the oracles** — deadlock, livelock, race, and harness
  assertions on *some* interleaving are found within the preemption
  bound, and the seeded PR 4 sequencer race is rediscovered at bound 2;
* **pruning is an optimisation, not a filter** — sleep sets and the
  preemption budget skip equivalence-class duplicates, never the only
  failing schedule.
"""

from __future__ import annotations

import queue
import threading

import pytest

from repro.analysis import racecheck
from repro.analysis.schedcheck import (
    REPLAY_ENV,
    DeadlockError,
    LivelockError,
    Op,
    SchedCheckError,
    dependent,
    exhaustive,
    explore,
    fingerprint_of,
    parse_fingerprint,
    replay,
)
from repro.analysis.schedcheck.harnesses import (
    HARNESSES,
    sequencer_append,
)

MUTATION_ENV = "REPRO_SCHEDCHECK_MUTATION"


# -- the independence relation ------------------------------------------------------


def test_dependent_same_lock_conflicts():
    a = Op("lock.acquire", 3, "lock#3.acquire")
    b = Op("lock.release", 3, "lock#3.release")
    assert dependent(a, b)


def test_dependent_different_objects_commute():
    a = Op("lock.acquire", 3, "lock#3.acquire")
    b = Op("lock.acquire", 4, "lock#4.acquire")
    assert not dependent(a, b)


def test_dependent_field_reads_commute_writes_conflict():
    read_a = Op("field.read", 7, "S.x")
    read_b = Op("field.read", 7, "S.x")
    write = Op("field.write", 7, "S.x", is_write=True)
    assert not dependent(read_a, read_b)
    assert dependent(read_a, write)


def test_dependent_unknown_is_conservative():
    assert dependent(None, Op("lock.acquire", 1, "x"))


# -- fingerprints -------------------------------------------------------------------


def test_fingerprint_round_trip():
    choices = [0, 2, 1, 1, 0]
    assert parse_fingerprint(fingerprint_of(choices)) == choices


def test_fingerprint_rejects_garbage():
    with pytest.raises(SchedCheckError):
        parse_fingerprint("v9:1.2.3")
    with pytest.raises(SchedCheckError):
        parse_fingerprint("not a fingerprint")


# -- basic exploration --------------------------------------------------------------


def _counter_harness() -> None:
    """Two threads lock-guarding one tracked cell — race-free by design."""
    cells = racecheck.Shared({"n": 0}, "test.counter")
    lock = threading.Lock()

    def bump() -> None:
        for _ in range(2):
            with lock:
                cells["n"] = cells["n"] + 1

    threads = [
        threading.Thread(target=bump, name="bump-a"),
        threading.Thread(target=bump, name="bump-b"),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert cells["n"] == 4


def test_explore_clean_harness_passes():
    report = explore(_counter_harness, name="counter", max_preemptions=1)
    assert report.ok
    assert report.complete
    assert report.schedules >= 1
    assert report.runs >= report.schedules


def test_explore_is_deterministic():
    first = explore(_counter_harness, name="counter", max_preemptions=1)
    second = explore(_counter_harness, name="counter", max_preemptions=1)
    assert first.schedules == second.schedules
    assert first.runs == second.runs
    assert first.pruned_branches == second.pruned_branches


def test_sleep_set_pruning_fires():
    report = explore(_counter_harness, name="counter", max_preemptions=2)
    assert report.ok
    assert report.sleep_pruned_runs + report.pruned_branches > 0
    assert 0.0 < report.pruning_ratio <= 1.0


def test_schedule_cap_marks_incomplete():
    report = explore(
        _counter_harness, name="counter", max_preemptions=2, max_schedules=2
    )
    assert not report.complete


# -- race detection + replay --------------------------------------------------------


def _unguarded_harness() -> None:
    cells = racecheck.Shared({"n": 0}, "test.racy")

    def bump() -> None:
        cells["n"] = cells["n"] + 1

    threads = [
        threading.Thread(target=bump, name="racy-a"),
        threading.Thread(target=bump, name="racy-b"),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


def test_unguarded_write_found_and_replays_identically():
    report = explore(_unguarded_harness, name="racy", max_preemptions=2)
    assert not report.ok
    failure = report.failures[0]
    assert failure.error_type == "DataRaceError"

    result = replay(_unguarded_harness, failure.fingerprint)
    assert result.failure is not None
    assert type(result.failure).__name__ == failure.error_type
    assert str(result.failure) == failure.message
    assert result.trace == failure.trace

    again = replay(_unguarded_harness, failure.fingerprint)
    assert str(again.failure) == str(result.failure)
    assert again.trace == result.trace


def test_racecheck_oracle_can_be_disabled():
    report = explore(
        _unguarded_harness, name="racy", max_preemptions=2, use_racecheck=False
    )
    assert report.ok


# -- deadlock detection -------------------------------------------------------------


def _ab_ba_harness() -> None:
    lock_a = threading.Lock()
    lock_b = threading.Lock()

    def forward() -> None:
        with lock_a:
            with lock_b:
                pass

    def backward() -> None:
        with lock_b:
            with lock_a:
                pass

    threads = [
        threading.Thread(target=forward, name="forward"),
        threading.Thread(target=backward, name="backward"),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


def test_lockcheck_oracle_catches_the_inversion_first():
    report = explore(_ab_ba_harness, name="abba", max_preemptions=2)
    assert not report.ok
    assert report.failures[0].error_type == "LockOrderError"


def test_deadlock_detected_without_lockcheck():
    # with the lock-order oracle off, the checker must still find the
    # schedule where both threads hold one lock and wait for the other
    report = explore(
        _ab_ba_harness,
        name="abba",
        max_preemptions=2,
        use_lockcheck=False,
        stop_on_failure=False,
    )
    assert report.deadlocks >= 1
    assert any(f.error_type == "DeadlockError" for f in report.failures)
    fingerprint = next(
        f.fingerprint for f in report.failures if f.error_type == "DeadlockError"
    )
    result = replay(_ab_ba_harness, fingerprint, use_lockcheck=False)
    assert isinstance(result.failure, DeadlockError)


# -- livelock detection -------------------------------------------------------------


def _spin_harness() -> None:
    cells = racecheck.Shared({"done": False}, "test.spin")
    lock = threading.Lock()

    def spinner() -> None:
        while True:
            with lock:
                if cells["done"]:
                    return

    thread = threading.Thread(target=spinner, name="spinner")
    thread.start()
    thread.join()


def test_livelock_detected_by_step_budget():
    report = explore(
        _spin_harness, name="spin", max_preemptions=0, step_budget=200
    )
    assert not report.ok
    assert report.livelocks >= 1
    assert report.failures[0].error_type == "LivelockError"
    result = replay(_spin_harness, report.failures[0].fingerprint, step_budget=200)
    assert isinstance(result.failure, LivelockError)


# -- queue modeling -----------------------------------------------------------------


def _queue_harness() -> None:
    q: queue.Queue = queue.Queue(maxsize=1)
    out: list[int] = []

    def producer() -> None:
        for i in range(3):
            q.put(i)

    def consumer() -> None:
        for _ in range(3):
            out.append(q.get())

    threads = [
        threading.Thread(target=producer, name="producer"),
        threading.Thread(target=consumer, name="consumer"),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert out == [0, 1, 2]


def test_bounded_queue_handoff_explored_exhaustively():
    report = explore(_queue_harness, name="queue", max_preemptions=2)
    assert report.ok
    assert report.complete
    assert report.schedules >= 1


# -- the seeded PR 4 sequencer race -------------------------------------------------


def test_seeded_sequencer_race_found_within_bound_2(monkeypatch):
    monkeypatch.setenv(MUTATION_ENV, "sequencer-tail-race")
    report = explore(sequencer_append, name="sequencer_append", max_preemptions=2)
    assert not report.ok
    failure = report.failures[0]
    assert failure.bound <= 2
    assert failure.error_type in ("DataRaceError", "LogError", "AssertionError")

    result = replay(sequencer_append, failure.fingerprint)
    assert result.failure is not None
    assert type(result.failure).__name__ == failure.error_type
    assert str(result.failure) == failure.message
    assert result.trace == failure.trace


def test_sequencer_clean_without_mutation():
    report = explore(sequencer_append, name="sequencer_append", max_preemptions=2)
    assert report.ok, [f.to_dict() for f in report.failures]


# -- the @exhaustive decorator ------------------------------------------------------


def test_exhaustive_decorator_passes_clean_test():
    calls = {"n": 0}

    @exhaustive(max_preemptions=1)
    def clean() -> None:
        calls["n"] += 1
        _counter_harness()

    clean()
    assert calls["n"] > 1  # re-executed once per schedule


def test_exhaustive_decorator_raises_with_fingerprint():
    @exhaustive(max_preemptions=2)
    def racy() -> None:
        _unguarded_harness()

    with pytest.raises(SchedCheckError) as excinfo:
        racy()
    assert REPLAY_ENV in str(excinfo.value)
    assert "v1:" in str(excinfo.value)


def test_exhaustive_decorator_env_replay(monkeypatch):
    report = explore(_unguarded_harness, name="racy", max_preemptions=2)
    failure = report.failures[0]

    calls = {"n": 0}

    @exhaustive(max_preemptions=2)
    def racy() -> None:
        calls["n"] += 1
        _unguarded_harness()

    # replay mode re-raises the schedule's *original* failure (the
    # debugging loop wants the real exception) and runs exactly once
    monkeypatch.setenv(REPLAY_ENV, failure.fingerprint)
    with pytest.raises(racecheck.DataRaceError) as excinfo:
        racy()
    assert str(excinfo.value) == failure.message
    assert calls["n"] == 1


# -- the protocol harnesses ---------------------------------------------------------


def test_harness_registry_names():
    assert set(HARNESSES) == {
        "mover_flip_drain",
        "ownership_install_vs_apply",
        "plancache_bind_invalidate",
        "admission_enqueue_shed",
        "sequencer_append",
        "lease_flip_fencing",
    }


@pytest.mark.parametrize("name", sorted(HARNESSES))
def test_protocol_harness_clean_at_bound_1(name):
    fn = HARNESSES[name][0]
    report = explore(fn, name=name, max_preemptions=1)
    assert report.ok, [f.to_dict() for f in report.failures]
    assert report.complete


# -- instrumentation hygiene --------------------------------------------------------


def test_threading_primitives_restored_after_explore():
    lock_factory = threading.Lock
    start = threading.Thread.start
    join = threading.Thread.join
    put = queue.Queue.put
    get = queue.Queue.get
    explore(_counter_harness, name="counter", max_preemptions=0)
    assert threading.Lock is lock_factory
    assert threading.Thread.start is start
    assert threading.Thread.join is join
    assert queue.Queue.put is put
    assert queue.Queue.get is get


def test_ambient_sanitizers_survive_exploration():
    from repro.analysis import lockcheck

    ambient_race = racecheck.is_installed()
    ambient_lock = lockcheck.is_installed()
    explore(_unguarded_harness, name="racy", max_preemptions=1)
    assert racecheck.is_installed() == ambient_race
    assert lockcheck.is_installed() == ambient_lock
