"""Unit tests for the CFG/dataflow rules RA112–RA115 and their engine."""

from __future__ import annotations

import ast
import textwrap

from tools.analyze import analyze_source
from tools.analyze.core import FileContext
from tools.analyze import dataflow


def findings_for(source: str, rel_path: str = "src/repro/sql/executor.py", select=None):
    return analyze_source(textwrap.dedent(source), rel_path, select)


def codes(source: str, rel_path: str = "src/repro/sql/executor.py", select=None):
    return [f.code for f in findings_for(source, rel_path, select)]


# -- dataflow engine units ----------------------------------------------------------


def _func(source: str) -> ast.FunctionDef:
    tree = ast.parse(textwrap.dedent(source))
    return tree.body[0]


def test_copy_env_resolves_alias_chains():
    func = _func(
        """
        def f(self):
            lock = self._lock
            guard = lock
            guard2 = guard
            return guard2
        """
    )
    env = dataflow.copy_env(func)
    assert env["lock"] == "self._lock"
    assert env["guard2"] == "self._lock"


def test_copy_env_drops_reassigned_names():
    func = _func(
        """
        def f(self, other):
            lock = self._lock
            lock = other._lock
            return lock
        """
    )
    assert "lock" not in dataflow.copy_env(func)


def test_taint_flows_through_zip_and_tuple_unpack():
    func = _func(
        """
        def f(entry, fresh):
            for slot, new in zip(entry.slots, fresh):
                use(slot)
        """
    )
    ctx = FileContext("src/repro/sql/x.py", "")
    cfg = dataflow.get_cfg(ctx, func)
    states = dataflow.TaintAnalysis(initial_tainted={"entry"}, env={}).run(cfg)
    tainted = set().union(*(s for s in states.values() if s))
    assert "slot" in tainted


def test_unknown_call_results_are_untainted():
    func = _func(
        """
        def f(entry):
            clone = rebuild(entry)
            clone.x = 1
        """
    )
    ctx = FileContext("src/repro/sql/x.py", "")
    cfg = dataflow.get_cfg(ctx, func)
    states = dataflow.TaintAnalysis(initial_tainted={"entry"}, env={}).run(cfg)
    tainted = set().union(*(s for s in states.values() if s))
    assert "clone" not in tainted


def test_lock_held_analysis_tracks_aliases():
    func = _func(
        """
        def f(self):
            lock = self._lock
            with lock:
                work()
            after()
        """
    )
    ctx = FileContext("src/repro/x.py", "")
    cfg = dataflow.get_cfg(ctx, func)
    env = dataflow.copy_env(func)
    states = dataflow.LockHeldAnalysis(env).run(cfg)
    held_sets = [s for s in states.values() if s]
    assert any("self._lock" in s for s in held_sets)


# -- RA112: frozen plan-cache entry mutation ---------------------------------------


def test_ra112_flags_in_place_literal_binding():
    # the exact PR 6 frozen-plan bug: writing fresh literal values into
    # the cached entry instead of building a substitution copy
    src = """
        def bind(entry: "PlanEntry", fresh):
            for slot, new in zip(entry.slots, fresh):
                object.__setattr__(slot, "value", new.value)
            return entry.plan
    """
    assert codes(src, rel_path="src/repro/sql/plancache.py", select=["RA112"]) == ["RA112"]


def test_ra112_flags_mutation_of_cache_get_result():
    src = """
        def touch(self, key):
            entry = self.plan_cache.get(key)
            entry.versions["t"] = 3
    """
    assert codes(src, rel_path="src/repro/core/database.py", select=["RA112"]) == ["RA112"]


def test_ra112_flags_mutating_method_on_tainted_value():
    src = """
        def touch(self, key):
            entry = self._entries.get(key)
            entry.slots.append(None)
    """
    assert codes(src, rel_path="src/repro/sql/plancache.py", select=["RA112"]) == ["RA112"]


def test_ra112_accepts_substitution_copy():
    src = """
        def bind(entry: "PlanEntry", statement):
            clone = object.__new__(type(entry.plan))
            clone.__dict__.update(entry.plan.__dict__)
            return clone
    """
    assert codes(src, rel_path="src/repro/sql/plancache.py", select=["RA112"]) == []


def test_ra112_out_of_scope_path_is_skipped():
    src = """
        def bind(entry: "PlanEntry", fresh):
            entry.slots.append(None)
    """
    assert codes(src, rel_path="src/repro/streaming/windows.py", select=["RA112"]) == []


# -- RA113: blocking call while a lock is held -------------------------------------


def test_ra113_flags_sleep_in_with_lock():
    src = """
        import time

        def flush(self):
            with self._lock:
                time.sleep(0.1)
    """
    assert codes(src, rel_path="src/repro/soe/services/broker.py", select=["RA113"]) == ["RA113"]


def test_ra113_tracks_lock_aliases_and_open():
    src = """
        def persist(self):
            lock = self._lock
            with lock:
                handle = open("/tmp/x")
    """
    assert codes(src, rel_path="src/repro/soe/services/broker.py", select=["RA113"]) == ["RA113"]


def test_ra113_flags_thread_join_under_lock_but_not_str_join():
    src = """
        def stop(self):
            with self._lock:
                self._worker.join()
                label = ",".join(self._names)
    """
    assert codes(src, rel_path="src/repro/soe/services/broker.py", select=["RA113"]) == ["RA113"]


def test_ra113_accepts_blocking_work_after_release():
    src = """
        import time

        def flush(self):
            with self._lock:
                items = list(self._queue)
            time.sleep(0.1)
            return items
    """
    assert codes(src, rel_path="src/repro/soe/services/broker.py", select=["RA113"]) == []


# -- RA114: storage row loop without a governor charge ------------------------------


def test_ra114_flags_uncharged_scan_loop():
    src = """
        def scan(self, table, txn, governor):
            out = []
            for position in table.visible_positions(txn):
                out.append(position)
            return out
    """
    assert codes(src, select=["RA114"]) == ["RA114"]


def test_ra114_accepts_charge_inside_loop():
    src = """
        def scan(self, table, txn, governor):
            out = []
            for position in table.visible_positions(txn):
                governor.charge(1)
                out.append(position)
            return out
    """
    assert codes(src, select=["RA114"]) == []


def test_ra114_accepts_charge_on_path_into_loop():
    src = """
        def scan(self, table, txn, governor):
            governor.charge(table.row_count)
            out = []
            for position in table.visible_positions(txn):
                out.append(position)
            return out
    """
    assert codes(src, select=["RA114"]) == []


def test_ra114_skips_interior_operators_without_governor():
    src = """
        def probe(self, rows):
            out = []
            for row in rows:
                out.append(row)
            return out
    """
    assert codes(src, select=["RA114"]) == []


# -- RA115: observe_actual without evaluating the exemption guards ------------------


def test_ra115_flags_unguarded_observation():
    src = """
        def finish(self, feedback, node, count):
            feedback.observe_actual(node.signature, count)
    """
    assert codes(src, select=["RA115"]) == ["RA115"]


def test_ra115_accepts_early_return_guard():
    src = """
        def finish(self, ctx, feedback, node, count):
            if ctx.feedback_exempt:
                return
            feedback.observe_actual(node.signature, count)
    """
    assert codes(src, select=["RA115"]) == []


def test_ra115_accepts_enclosing_if_guard():
    src = """
        def finish(self, governor, feedback, sig, count):
            if not governor.should_stop():
                feedback.observe_actual(sig, count)
    """
    assert codes(src, select=["RA115"]) == []


def test_ra115_skips_the_primitive_itself():
    src = """
        def observe_actual(self, signature, count):
            self._observed[signature] = count
    """
    assert codes(src, select=["RA115"]) == []
