"""Unit tests for each linter rule: positive, suppressed, and clean cases."""

from __future__ import annotations

import textwrap

from tools.analyze import analyze_source


def findings_for(source: str, rel_path: str = "src/repro/sql/executor.py", select=None):
    return analyze_source(textwrap.dedent(source), rel_path, select)


def codes(source: str, rel_path: str = "src/repro/sql/executor.py", select=None):
    return [f.code for f in findings_for(source, rel_path, select)]


# -- RA101: wall clock outside obs ----------------------------------------------


def test_ra101_flags_time_time():
    src = """
        import time

        def hot():
            return time.time()
    """
    assert codes(src, select=["RA101"]) == ["RA101"]


def test_ra101_flags_imported_perf_counter_and_alias():
    src = """
        from time import perf_counter as pc

        def hot():
            return pc()
    """
    assert codes(src, select=["RA101"]) == ["RA101"]


def test_ra101_allows_obs_module_itself():
    src = """
        import time

        def now():
            return time.perf_counter()
    """
    assert codes(src, rel_path="src/repro/obs/tracing.py", select=["RA101"]) == []


def test_ra101_suppressed_inline():
    src = """
        import time

        def hot():
            return time.time()  # repro: allow(RA101)
    """
    assert codes(src, select=["RA101"]) == []


def test_ra101_ignores_unrelated_time_attr():
    src = """
        def f(event):
            return event.time()
    """
    assert codes(src, select=["RA101"]) == []


# -- RA102: lock discipline ---------------------------------------------------


def test_ra102_flags_bare_acquire():
    src = """
        def f(lock):
            lock.acquire()
            do_work()
            lock.release()
    """
    assert codes(src, select=["RA102"]) == ["RA102"]


def test_ra102_accepts_try_finally():
    src = """
        def f(lock):
            lock.acquire()  # repro: allow(RA102)
            try:
                do_work()
            finally:
                lock.release()
    """
    # the acquire above the try still needs the suppression; the canonical
    # accepted shape puts the acquire inside the try:
    src_ok = """
        def f(lock):
            try:
                lock.acquire()
                do_work()
            finally:
                lock.release()
    """
    assert codes(src, select=["RA102"]) == []
    assert codes(src_ok, select=["RA102"]) == []


def test_ra102_accepts_with_statement():
    src = """
        def f(lock):
            with lock:
                do_work()
    """
    assert codes(src, select=["RA102"]) == []


# -- RA103: guarded shared state ------------------------------------------------

_SOE_PATH = "src/repro/soe/services/example_service.py"


def test_ra103_flags_unguarded_container_write():
    src = """
        import threading

        class Service:
            def __init__(self):
                self._lock = threading.Lock()
                self._state = {}

            def update(self, key, value):
                self._state[key] = value
    """
    found = findings_for(src, rel_path=_SOE_PATH, select=["RA103"])
    assert [f.code for f in found] == ["RA103"]
    assert found[0].symbol == "Service.update"


def test_ra103_flags_mutation_call_in_assignment():
    src = """
        import threading

        class Service:
            def __init__(self):
                self._lock = threading.Lock()
                self._state = {}

            def update(self, key):
                bucket = self._state.setdefault(key, [])
                return bucket
    """
    assert codes(src, rel_path=_SOE_PATH, select=["RA103"]) == ["RA103"]


def test_ra103_accepts_guarded_write_and_init():
    src = """
        import threading

        class Service:
            def __init__(self):
                self._lock = threading.Lock()
                self._state = {}
                self._state["seed"] = 1

            def update(self, key, value):
                with self._lock:
                    self._state[key] = value
    """
    assert codes(src, rel_path=_SOE_PATH, select=["RA103"]) == []


def test_ra103_accepts_dataclass_lock_field():
    src = """
        import threading
        from dataclasses import dataclass, field

        @dataclass
        class Service:
            _members: dict = field(default_factory=dict)
            _lock: threading.Lock = field(default_factory=threading.Lock)

            def join(self, name):
                with self._lock:
                    self._members[name] = True
    """
    assert codes(src, rel_path=_SOE_PATH, select=["RA103"]) == []


def test_ra103_out_of_scope_path_not_checked():
    src = """
        import threading

        class Anywhere:
            def __init__(self):
                self._lock = threading.Lock()
                self._state = {}

            def update(self, key, value):
                self._state[key] = value
    """
    assert codes(src, rel_path="src/repro/engines/geo/index.py", select=["RA103"]) == []


def test_ra103_lockless_class_skipped():
    src = """
        class PlainRegistry:
            def __init__(self):
                self._items = {}

            def add(self, key, value):
                self._items[key] = value
    """
    assert codes(src, rel_path=_SOE_PATH, select=["RA103"]) == []


def test_ra103_suppressed_inline():
    src = """
        import threading

        class Service:
            def __init__(self):
                self._lock = threading.Lock()
                self._state = {}

            def update(self, key, value):
                self._state[key] = value  # repro: allow(RA103)
    """
    assert codes(src, rel_path=_SOE_PATH, select=["RA103"]) == []


# -- RA104: swallowed broad excepts ----------------------------------------------


def test_ra104_flags_swallowed_exception():
    src = """
        def f():
            try:
                work()
            except Exception:
                pass
    """
    assert codes(src, select=["RA104"]) == ["RA104"]


def test_ra104_flags_bare_except():
    src = """
        def f():
            try:
                work()
            except:
                return None
    """
    assert codes(src, select=["RA104"]) == ["RA104"]


def test_ra104_accepts_reraise_and_logging():
    src = """
        def f():
            try:
                work()
            except Exception:
                rollback()
                raise

        def g(logger):
            try:
                work()
            except Exception:
                logger.warning("failed")

        def h():
            from repro import obs
            try:
                work()
            except Exception:
                obs.count("errors")
    """
    assert codes(src, select=["RA104"]) == []


def test_ra104_narrow_except_ok():
    src = """
        def f():
            try:
                work()
            except KeyError:
                pass
    """
    assert codes(src, select=["RA104"]) == []


# -- RA105: mutable default arguments ------------------------------------------


def test_ra105_flags_literal_and_constructor_defaults():
    src = """
        def f(items=[]):
            return items

        def g(*, mapping=dict()):
            return mapping
    """
    assert codes(src, select=["RA105"]) == ["RA105", "RA105"]


def test_ra105_accepts_none_sentinel_and_tuples():
    src = """
        def f(items=None, pair=(), name="x"):
            return items or []
    """
    assert codes(src, select=["RA105"]) == []


# -- RA106: obs registration conventions -------------------------------------------


def test_ra106_flags_per_call_registration():
    src = """
        def hot(registry):
            registry.counter("q.rows").inc()
    """
    assert codes(src, select=["RA106"]) == ["RA106"]


def test_ra106_accepts_helpers_and_module_scope():
    src = """
        from repro import obs

        ROWS = some_registry.counter("q.rows")

        def hot():
            obs.count("q.rows")
            obs.gauge("q.depth", 1)
    """
    assert codes(src, select=["RA106"]) == []


def test_ra106_obs_package_exempt():
    src = """
        def counter_for(self, name):
            return self._registry.counter(name)
    """
    assert codes(src, rel_path="src/repro/obs/runtime.py", select=["RA106"]) == []


# -- RA107: bounded retry loops --------------------------------------------------


def test_ra107_flags_while_true_retry():
    src = """
        def fetch(node):
            while True:
                try:
                    return node.service("v2lqp")
                except NodeUnavailableError:
                    continue
    """
    found = findings_for(src, select=["RA107"])
    assert [f.code for f in found] == ["RA107"]
    assert "NodeUnavailableError" in found[0].message


def test_ra107_flags_tuple_catch_and_swallow_without_continue():
    src = """
        def append(log, payload):
            while True:
                try:
                    return log.append(payload)
                except (LogStallError, ValueError):
                    pass
    """
    assert codes(src, select=["RA107"]) == ["RA107"]


def test_ra107_accepts_bounded_retry_policy_loop():
    src = """
        def fetch(policy, clock, node):
            last = None
            for attempt, delay in policy.schedule():
                if attempt:
                    clock.advance(delay)
                try:
                    return node.service("v2lqp")
                except NodeUnavailableError as exc:
                    last = exc
            raise last
    """
    assert codes(src, select=["RA107"]) == []


def test_ra107_accepts_handler_that_escapes_the_loop():
    src = """
        def fetch(node):
            while True:
                try:
                    return node.service("v2lqp")
                except NodeUnavailableError:
                    raise

        def drain(queue):
            while True:
                try:
                    queue.pull()
                except LogStallError:
                    break
    """
    assert codes(src, select=["RA107"]) == []


def test_ra107_ignores_non_retryable_catches_and_bounded_tests():
    src = """
        def parse(tokens):
            while True:
                try:
                    step(tokens)
                except StopIteration:
                    continue

        def poll(flag, node):
            while flag.is_set():
                try:
                    node.service("v2lqp")
                except NodeUnavailableError:
                    continue
    """
    assert codes(src, select=["RA107"]) == []


def test_ra107_suppressed_inline():
    src = """
        def fetch(node):
            while True:
                try:
                    return node.service("v2lqp")
                except NodeUnavailableError:  # repro: allow(RA107)
                    continue
    """
    assert codes(src, select=["RA107"]) == []


def test_ra107_out_of_scope_path_not_checked():
    src = """
        def fetch(node):
            while True:
                try:
                    return node.service("v2lqp")
                except NodeUnavailableError:
                    continue
    """
    assert codes(src, rel_path="scripts/oneoff.py", select=["RA107"]) == []


# -- suppression / driver plumbing ---------------------------------------------


def test_multi_code_suppression_line():
    src = """
        import time

        def f(items=[]):
            return time.time()  # repro: allow(RA101, RA105)
    """
    # RA105 anchors on the default's line, not the suppressed one
    assert codes(src, select=["RA101"]) == []


def test_syntax_error_reported_as_ra000():
    found = findings_for("def broken(:\n", rel_path="src/x.py")
    assert [f.code for f in found] == ["RA000"]


def test_findings_sorted_and_symbolised():
    src = """
        import time

        class Engine:
            def a(self):
                return time.time()

            def b(self):
                return time.time()
    """
    found = findings_for(src, select=["RA101"])
    assert [f.symbol for f in found] == ["Engine.a", "Engine.b"]
    assert found[0].line < found[1].line


# -- RA111: unbounded queues in streaming/SOE/federation paths -------------------


def test_ra111_flags_unbounded_deque_in_scope():
    src = """
        from collections import deque

        class Buffer:
            def __init__(self):
                self.items = deque()
    """
    assert codes(src, rel_path="src/repro/streaming/esp.py", select=["RA111"]) == ["RA111"]


def test_ra111_flags_unbounded_queue_constructors():
    src = """
        import queue

        def build():
            return queue.Queue(), queue.SimpleQueue()
    """
    assert codes(src, rel_path="src/repro/soe/engine.py", select=["RA111"]) == [
        "RA111",
        "RA111",
    ]


def test_ra111_queue_zero_maxsize_is_unbounded():
    src = """
        from queue import Queue

        def build():
            return Queue(0)
    """
    assert codes(src, rel_path="src/repro/soe/engine.py", select=["RA111"]) == ["RA111"]


def test_ra111_accepts_bounded_containers():
    src = """
        from collections import deque
        from queue import Queue

        def build(n):
            return deque(maxlen=16), deque([], 8), Queue(maxsize=32), Queue(n)
    """
    assert codes(src, rel_path="src/repro/streaming/esp.py", select=["RA111"]) == []


def test_ra111_deque_maxlen_none_is_unbounded():
    src = """
        from collections import deque

        def build():
            return deque([], maxlen=None)
    """
    assert codes(src, rel_path="src/repro/federation/sda.py", select=["RA111"]) == ["RA111"]


def test_ra111_suppressed_by_code_and_by_name():
    src = """
        from collections import deque

        def build():
            a = deque()  # repro: allow(RA111)
            b = deque()  # repro: allow(unbounded-queue)
            return a, b
    """
    assert codes(src, rel_path="src/repro/streaming/esp.py", select=["RA111"]) == []


def test_ra111_out_of_scope_path_not_checked():
    src = """
        from collections import deque

        def build():
            return deque()
    """
    assert codes(src, rel_path="src/repro/sql/executor.py", select=["RA111"]) == []


# -- RA116: polling loops without a scheduling seam -------------------------------

_SOE_PATH = "src/repro/soe/services/node.py"


def test_ra116_flags_time_sleep_in_scope():
    src = """
        import time

        def wait_ready(node):
            time.sleep(0.05)
    """
    assert codes(src, rel_path=_SOE_PATH, select=["RA116"]) == ["RA116"]


def test_ra116_flags_imported_sleep_alias():
    src = """
        from time import sleep

        def wait_ready(node):
            sleep(0.05)
    """
    assert codes(src, rel_path=_SOE_PATH, select=["RA116"]) == ["RA116"]


def test_ra116_flags_busy_wait_loop():
    src = """
        def wait_flip(mover):
            while not mover.flip_committed:
                pass
    """
    assert codes(src, rel_path=_SOE_PATH, select=["RA116"]) == ["RA116"]


def test_ra116_accepts_clock_advancing_drain():
    src = """
        def drain(node, clock):
            while node.pin_count(0) > 0:
                clock.advance(0.001)
    """
    assert codes(src, rel_path=_SOE_PATH, select=["RA116"]) == []


def test_ra116_accepts_queue_and_lock_waits():
    src = """
        def consume(q, out):
            while not q.empty():
                out.extend([q.get()])

        def guarded(lock, state):
            while not state.done:
                with lock:
                    state = state.refresh()
    """
    assert codes(src, rel_path=_SOE_PATH, select=["RA116"]) == []


def test_ra116_accepts_work_loop_mutating_tested_object():
    src = """
        def pump(stack):
            while stack:
                stack.pop()
    """
    assert codes(src, rel_path=_SOE_PATH, select=["RA116"]) == []


def test_ra116_accepts_loop_assigning_test_name():
    src = """
        def catch_up(broker, lsn, bound):
            while lsn < bound:
                lsn = broker.applied_lsn()
    """
    assert codes(src, rel_path=_SOE_PATH, select=["RA116"]) == []


def test_ra116_while_true_left_to_ra107():
    src = """
        def forever():
            while True:
                pass
    """
    assert codes(src, rel_path=_SOE_PATH, select=["RA116"]) == []


def test_ra116_out_of_scope_path_not_checked():
    src = """
        import time

        def wait():
            time.sleep(1)
    """
    assert codes(src, rel_path="src/repro/sql/executor.py", select=["RA116"]) == []


def test_ra116_suppressed_by_code_and_by_name():
    src = """
        import time

        def wait_a(node):
            time.sleep(0.01)  # repro: allow(RA116)

        def wait_b(node):
            time.sleep(0.01)  # repro: allow(polling-loop-without-seam)
    """
    assert codes(src, rel_path=_SOE_PATH, select=["RA116"]) == []


# -- RA117: fence-token discipline on ownership-mutating seams -------------------


def test_ra117_flags_ownership_method_without_fence_param():
    src = """
        class DataNode:
            def install_ownership(self, table, clone, key_positions, count, lsn):
                self._ownership[table] = clone
    """
    assert codes(src, rel_path=_SOE_PATH, select=["RA117"]) == ["RA117"]


def test_ra117_flags_fence_param_never_used():
    src = """
        class CatalogService:
            def swap_placement(self, table, partition_id, from_node, to_node, fence=None):
                self._placement[(table, partition_id)] = [to_node]
    """
    assert codes(src, rel_path=_SOE_PATH, select=["RA117"]) == ["RA117"]


def test_ra117_flags_broker_submit_and_log_append():
    src = """
        class TransactionBroker:
            def submit(self, operations):
                return self.log.append(operations)

        class SharedLog:
            def append(self, payload):
                return 0
    """
    assert codes(src, rel_path=_SOE_PATH, select=["RA117"]) == ["RA117", "RA117"]


def test_ra117_accepts_validated_or_forwarded_fence():
    src = """
        class DataNode:
            def install_ownership(self, table, clone, key_positions, count, lsn, fence=None):
                if self.fencing is not None:
                    self.fencing.check_partition(table, 0, fence)

            def release_ownership(self, table, partition_id, fence=None):
                self._release(table, partition_id, fence=fence)
    """
    assert codes(src, rel_path=_SOE_PATH, select=["RA117"]) == []


def test_ra117_append_outside_target_classes_not_flagged():
    src = """
        class MoveJournal:
            def append(self, record):
                self._records.append(record)

        def submit(operations):
            return operations
    """
    assert codes(src, rel_path=_SOE_PATH, select=["RA117"]) == []


def test_ra117_out_of_scope_path_not_checked():
    src = """
        class CatalogService:
            def swap_placement(self, table, partition_id, from_node, to_node):
                pass
    """
    assert codes(src, rel_path="src/repro/sql/executor.py", select=["RA117"]) == []


def test_ra117_suppressed_by_allow_comment():
    src = """
        class SharedLog:
            def append(self, payload):  # repro: allow(RA117)
                return 0
    """
    assert codes(src, rel_path=_SOE_PATH, select=["RA117"]) == []
