"""The interprocedural thread-escape rules (RA108–RA110)."""

from __future__ import annotations

import textwrap

from tools.analyze import analyze_source

_SOE_PATH = "src/repro/soe/services/example.py"
_REPRO_PATH = "src/repro/soe/example.py"


def findings_for(source: str, rel_path: str = _REPRO_PATH, select=None):
    return analyze_source(textwrap.dedent(source), rel_path, select)


def codes(source: str, rel_path: str = _REPRO_PATH, select=None):
    return [f.code for f in findings_for(source, rel_path, select)]


# -- RA108: escape to thread/callback without lock -------------------------------


def test_ra108_flags_callback_escape_sharing_unguarded_state():
    src = """
        class Node:
            def __init__(self, broker):
                self._applied = {}
                broker.subscribe_oltp(self._on_commit)

            def _on_commit(self, address, ops):
                self._applied[address] = ops

            def staleness(self):
                return len(self._applied)
    """
    found = findings_for(src, select=["RA108"])
    assert [f.code for f in found] == ["RA108"]
    assert "self._applied" in found[0].message
    assert "subscribe_oltp" in found[0].message


def test_ra108_flags_thread_target_escape():
    src = """
        import threading

        class Worker:
            def __init__(self):
                self._results = []

            def launch(self):
                self._worker = threading.Thread(target=self._run)
                self._worker.start()

            def _run(self):
                self._results.append(1)

            def results(self):
                return list(self._results)
    """
    assert codes(src, select=["RA108"]) == ["RA108"]


def test_ra108_flags_escaped_lambda():
    src = """
        class Collector:
            def __init__(self, bus):
                self._events = []
                bus.subscribe(lambda event: self._events.append(event))

            def drain(self):
                return list(self._events)
    """
    assert codes(src, select=["RA108"]) == ["RA108"]


def test_ra108_clean_when_both_sides_guarded():
    src = """
        import threading

        class Node:
            def __init__(self, broker):
                self._lock = threading.Lock()
                self._applied = {}
                broker.subscribe_oltp(self._on_commit)

            def _on_commit(self, address, ops):
                with self._lock:
                    self._applied[address] = ops

            def staleness(self):
                with self._lock:
                    return len(self._applied)
    """
    assert codes(src, select=["RA108"]) == []


def test_ra108_guarded_call_site_confers_guardedness():
    """`with self._lock: self._apply(...)` protects _apply's body — the
    caller-holds-lock idiom must not be flagged."""
    src = """
        import threading

        class Node:
            def __init__(self, broker):
                self._lock = threading.Lock()
                self._state = {}
                broker.subscribe_oltp(self._on_commit)

            def _on_commit(self, address, ops):
                with self._lock:
                    self._apply(address, ops)

            def _apply(self, address, ops):
                self._state[address] = ops

            def snapshot(self):
                with self._lock:
                    return dict(self._state)
    """
    assert codes(src, select=["RA108"]) == []


def test_ra108_read_only_shared_state_is_clean():
    src = """
        class Node:
            def __init__(self, broker):
                self.mode = "oltp"
                broker.subscribe_oltp(self._on_commit)

            def _on_commit(self, address, ops):
                if self.mode == "oltp":
                    pass

            def describe(self):
                return self.mode
    """
    assert codes(src, select=["RA108"]) == []


def test_ra108_per_txn_hooks_are_not_escapes():
    """txn.on_commit runs on the committing thread — not a thread escape."""
    src = """
        class Table:
            def __init__(self):
                self._subscribers = []

            def insert(self, row, txn):
                txn.on_commit(lambda cid: self._notify(cid))

            def _notify(self, cid):
                for subscriber in self._subscribers:
                    subscriber(cid)

            def subscribe(self, fn):
                self._subscribers.append(fn)
    """
    assert codes(src, select=["RA108"]) == []


def test_ra108_suppression():
    src = """
        class Node:
            def __init__(self, broker):
                self._applied = {}
                broker.subscribe_oltp(self._on_commit)  # repro: allow(RA108)

            def _on_commit(self, address, ops):
                self._applied[address] = ops

            def staleness(self):
                return len(self._applied)
    """
    assert codes(src, select=["RA108"]) == []


def test_ra108_scoped_to_repro():
    src = """
        class Node:
            def __init__(self, broker):
                self._applied = {}
                broker.subscribe_oltp(self._on_commit)

            def _on_commit(self, address, ops):
                self._applied[address] = ops

            def staleness(self):
                return len(self._applied)
    """
    assert codes(src, rel_path="benchmarks/bench_example.py", select=["RA108"]) == []


# -- RA109: check-then-act reads --------------------------------------------------


def test_ra109_flags_unguarded_read_of_guarded_attr():
    src = """
        import threading

        class Catalog:
            def __init__(self):
                self._lock = threading.Lock()
                self._tables = {}

            def register(self, name, meta):
                with self._lock:
                    self._tables[name] = meta

            def has_table(self, name):
                return name in self._tables
    """
    found = findings_for(src, rel_path=_SOE_PATH, select=["RA109"])
    assert [f.code for f in found] == ["RA109"]
    assert "self._tables" in found[0].message
    assert found[0].symbol == "Catalog.has_table"


def test_ra109_clean_when_read_is_guarded():
    src = """
        import threading

        class Catalog:
            def __init__(self):
                self._lock = threading.Lock()
                self._tables = {}

            def register(self, name, meta):
                with self._lock:
                    self._tables[name] = meta

            def has_table(self, name):
                with self._lock:
                    return name in self._tables
    """
    assert codes(src, rel_path=_SOE_PATH, select=["RA109"]) == []


def test_ra109_locked_suffix_helpers_exempt():
    """*_locked helpers run with the caller's lock held — their direct
    reads are checked at the call sites, not their bodies."""
    src = """
        import threading

        class Log:
            def __init__(self):
                self._lock = threading.Lock()
                self._entries = {}

            def write(self, address, payload):
                with self._lock:
                    self._entries[address] = payload

            def _sealed_locked(self):
                return len(self._entries) > 10
    """
    assert codes(src, rel_path=_SOE_PATH, select=["RA109"]) == []


def test_ra109_setup_reads_exempt():
    src = """
        import threading

        class Catalog:
            def __init__(self, seed):
                self._lock = threading.Lock()
                self._tables = {}
                for name in seed:
                    self._tables[name] = None

            def register(self, name, meta):
                with self._lock:
                    self._tables[name] = meta
    """
    assert codes(src, rel_path=_SOE_PATH, select=["RA109"]) == []


def test_ra109_requires_a_guarded_write():
    """A never-guarded attribute is RA103's business, not a check-then-act."""
    src = """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self._hits = {}

            def bump(self, key):
                self._hits[key] = self._hits.get(key, 0) + 1

            def peek(self, key):
                return self._hits.get(key, 0)
    """
    assert codes(src, rel_path=_SOE_PATH, select=["RA109"]) == []


def test_ra109_scoped_to_concurrency_layer():
    src = """
        import threading

        class Catalog:
            def __init__(self):
                self._lock = threading.Lock()
                self._tables = {}

            def register(self, name, meta):
                with self._lock:
                    self._tables[name] = meta

            def has_table(self, name):
                return name in self._tables
    """
    assert codes(src, rel_path="src/repro/columnstore/table.py", select=["RA109"]) == []


def test_ra109_suppression():
    src = """
        import threading

        class Catalog:
            def __init__(self):
                self._lock = threading.Lock()
                self._tables = {}

            def register(self, name, meta):
                with self._lock:
                    self._tables[name] = meta

            def has_table(self, name):
                return name in self._tables  # repro: allow(RA109)
    """
    assert codes(src, rel_path=_SOE_PATH, select=["RA109"]) == []


# -- RA110: unsafe publication after Thread.start ---------------------------------


def test_ra110_flags_assignment_after_start():
    src = """
        import threading

        class Runner:
            def __init__(self):
                self._config = None
                self._stop = False

            def launch(self):
                worker = threading.Thread(target=self._loop)
                worker.start()
                self._config = {"batch": 10}
                return worker

            def _loop(self):
                while not self._stop:
                    process(self._config)
    """
    found = findings_for(src, select=["RA110"])
    assert [f.code for f in found] == ["RA110"]
    assert "self._config" in found[0].message
    assert found[0].symbol == "Runner.launch"


def test_ra110_flags_inline_start():
    src = """
        import threading

        class Runner:
            def __init__(self):
                self._config = None

            def launch(self):
                threading.Thread(target=self._loop).start()
                self._config = {"batch": 10}

            def _loop(self):
                process(self._config)
    """
    assert codes(src, select=["RA110"]) == ["RA110"]


def test_ra110_clean_when_assigned_before_start():
    src = """
        import threading

        class Runner:
            def __init__(self):
                self._config = None

            def launch(self):
                self._config = {"batch": 10}
                worker = threading.Thread(target=self._loop)
                worker.start()
                return worker

            def _loop(self):
                process(self._config)
    """
    assert codes(src, select=["RA110"]) == []


def test_ra110_clean_when_both_sides_guarded():
    src = """
        import threading

        class Runner:
            def __init__(self):
                self._lock = threading.Lock()
                self._config = None

            def launch(self):
                worker = threading.Thread(target=self._loop)
                worker.start()
                with self._lock:
                    self._config = {"batch": 10}
                return worker

            def _loop(self):
                with self._lock:
                    process(self._config)
    """
    assert codes(src, select=["RA110"]) == []


def test_ra110_ignores_attrs_the_thread_never_reads():
    src = """
        import threading

        class Runner:
            def __init__(self):
                self._done = False

            def launch(self):
                worker = threading.Thread(target=self._loop)
                worker.start()
                self._unrelated = 1
                return worker

            def _loop(self):
                self._done = True
    """
    assert codes(src, select=["RA110"]) == []


def test_ra110_suppression():
    src = """
        import threading

        class Runner:
            def __init__(self):
                self._config = None

            def launch(self):
                worker = threading.Thread(target=self._loop)
                worker.start()
                self._config = {"batch": 10}  # repro: allow(RA110)
                return worker

            def _loop(self):
                process(self._config)
    """
    assert codes(src, select=["RA110"]) == []


# -- summaries shared across the three rules --------------------------------------


def test_rules_share_one_summary_per_class():
    """All three rules run over one source without re-summarizing (smoke:
    the combined run matches the union of individual runs)."""
    src = """
        import threading

        class Node:
            def __init__(self, broker):
                self._applied = {}
                broker.subscribe_oltp(self._on_commit)

            def _on_commit(self, address, ops):
                self._applied[address] = ops

            def staleness(self):
                return len(self._applied)
    """
    combined = codes(src, select=["RA108", "RA109", "RA110"])
    assert combined == ["RA108"]
