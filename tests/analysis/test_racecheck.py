"""The happens-before race sanitizer: detection, HB edges, FastTrack, gating.

The cross-thread tests synchronize with a busy-wait on a plain list —
deliberately NOT ``threading.Event``: an Event's internal condition lock
is instrumented while racecheck is installed, so waiting on one would
create exactly the happens-before edge the test needs to be absent.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.analysis import racecheck
from repro.analysis.racecheck import DataRaceError, Shared, track_fields


@pytest.fixture
def fresh_racecheck():
    """A sanitizer scope independent of the REPRO_RACECHECK autouse one."""
    was_installed = racecheck.is_installed()
    if was_installed:
        racecheck.uninstall()
    yield
    if racecheck.is_installed():
        racecheck.uninstall()
    if was_installed:
        racecheck.install()


def _spin_until(flag: list) -> None:
    deadline = time.monotonic() + 10.0
    while not flag[0]:
        if time.monotonic() > deadline:  # pragma: no cover - hang guard
            raise AssertionError("worker never signalled")
        time.sleep(0)


class _Service:
    """Guarded writes, configurable reads — the seeded-race shape."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._state = Shared({}, "_Service._state")

    def guarded_write(self, key, value) -> None:
        with self._lock:
            self._state[key] = value

    def unguarded_write(self, key, value) -> None:
        self._state[key] = value

    def guarded_read(self, key):
        with self._lock:
            return self._state.get(key)

    def unguarded_read(self, key):
        return self._state.get(key)


# -- the seeded race (acceptance criterion) ---------------------------------------


def test_seeded_race_unguarded_write_vs_guarded_read(fresh_racecheck):
    """An unguarded write racing a guarded read is a data race: the lock
    the reader holds was never touched by the writer, so no HB edge."""
    with racecheck.active():
        service = _Service()
        flag = [False]

        def writer():
            service.unguarded_write("k", 1)
            flag[0] = True

        thread = threading.Thread(target=writer)
        thread.start()
        _spin_until(flag)
        with pytest.raises(DataRaceError) as exc:
            service.guarded_read("k")
        thread.join()
    message = str(exc.value)
    assert "_Service._state" in message
    # both access sites are named
    assert "guarded_read" in message and "unguarded_write" in message


def test_seeded_race_accumulates_when_not_strict(fresh_racecheck):
    with racecheck.active(strict=False):
        service = _Service()
        flag = [False]

        def writer():
            service.unguarded_write("k", 1)
            flag[0] = True

        thread = threading.Thread(target=writer)
        thread.start()
        _spin_until(flag)
        service.guarded_read("k")
        thread.join()
        violations = racecheck.violations()
    assert len(violations) == 1
    assert "no happens-before edge" in violations[0]


def test_write_write_race_detected(fresh_racecheck):
    with racecheck.active(strict=False):
        service = _Service()
        flag = [False]

        def writer():
            service.unguarded_write("k", 1)
            flag[0] = True

        thread = threading.Thread(target=writer)
        thread.start()
        _spin_until(flag)
        service.unguarded_write("k", 2)
        thread.join()
        assert any("write in thread" in v for v in racecheck.violations())


# -- happens-before edges make the same shapes clean ------------------------------


def test_lock_edge_makes_guarded_access_clean(fresh_racecheck):
    with racecheck.active():
        service = _Service()
        flag = [False]

        def writer():
            service.guarded_write("k", 1)
            flag[0] = True

        thread = threading.Thread(target=writer)
        thread.start()
        _spin_until(flag)
        assert service.guarded_read("k") == 1
        thread.join()
        assert racecheck.violations() == []


def test_start_and_join_edges(fresh_racecheck):
    """Parent-before-start and child-before-join accesses are ordered."""
    with racecheck.active():
        shared = Shared({}, "startjoin")
        shared["before"] = 1  # parent write before start

        def child():
            assert shared["before"] == 1  # ordered by the start edge
            shared["after"] = 2

        thread = threading.Thread(target=child)
        thread.start()
        thread.join()
        assert shared["after"] == 2  # ordered by the join edge
        assert racecheck.violations() == []


def test_queue_put_get_edge(fresh_racecheck):
    import queue

    with racecheck.active():
        shared = Shared({}, "queued")
        channel = queue.Queue()

        def producer():
            shared["a"] = 1
            channel.put("ready")

        thread = threading.Thread(target=producer)
        thread.start()
        channel.get()  # adopts the producer's clock
        assert shared["a"] == 1
        thread.join()
        assert racecheck.violations() == []


def test_shared_log_append_is_a_fence(fresh_racecheck):
    """The SOE seam: successive users of one SharedLog are ordered even
    when the log itself was built before install (raw, untracked locks)."""
    from repro.soe.services.shared_log import SharedLog

    log = SharedLog(stripes=1, replication=1)  # pre-install: no lock edges
    with racecheck.active():
        shared = Shared({}, "log_guarded")
        flag = [False]

        def writer():
            shared["x"] = 1
            log.append({"ops": []})
            flag[0] = True

        thread = threading.Thread(target=writer)
        thread.start()
        _spin_until(flag)
        log.append({"ops": []})  # fence: adopts the writer's clock
        assert shared["x"] == 1
        thread.join()
        assert racecheck.violations() == []


# -- FastTrack mechanics ----------------------------------------------------------


def test_same_thread_reread_hits_epoch_fast_path(fresh_racecheck):
    with racecheck.active():
        shared = Shared({}, "fast")
        shared["k"] = 1
        for _ in range(5):
            shared.get("k")
        stats = racecheck.stats()
        assert stats["epoch_fast_hits"] > 0


def test_concurrent_reads_promote_then_write_races_both(fresh_racecheck):
    """Two lock-ordered readers force the read vector; a later unguarded
    write must race the reader the writer has no edge from."""
    with racecheck.active(strict=False):
        shared = Shared({}, "promoted")
        lock = threading.Lock()
        with lock:
            shared.get("k")  # reader 1: main thread (guarded)
        flag = [False]

        def reader():
            with lock:
                shared.get("k")  # reader 2: child thread, ordered via lock
            flag[0] = True

        thread = threading.Thread(target=reader)
        thread.start()
        _spin_until(flag)
        shared["k"] = 1  # no edge from the child's read
        thread.join()
        assert any("read in thread" in v for v in racecheck.violations())


def test_full_vc_mode_finds_the_same_race(fresh_racecheck):
    with racecheck.active(strict=False, full_vc=True):
        service = _Service()
        flag = [False]

        def writer():
            service.unguarded_write("k", 1)
            flag[0] = True

        thread = threading.Thread(target=writer)
        thread.start()
        _spin_until(flag)
        service.guarded_read("k")
        thread.join()
        assert len(racecheck.violations()) == 1
        assert racecheck.stats()["epoch_fast_hits"] == 0


# -- the Shared proxy -------------------------------------------------------------


def test_shared_proxy_delegates_container_protocol(fresh_racecheck):
    with racecheck.active():
        shared = Shared({"a": 1}, "proxy")
        assert shared["a"] == 1
        assert "a" in shared
        assert len(shared) == 1
        assert list(shared) == ["a"]
        assert bool(shared)
        assert shared == {"a": 1}
        assert shared != {"b": 2}
        shared["b"] = 2
        del shared["b"]
        shared.update({"c": 3})
        assert shared.unwrap() == {"a": 1, "c": 3}
        assert "proxy" in repr(shared)


def test_track_fields_wraps_only_while_installed(fresh_racecheck):
    @track_fields("_data")
    class Holder:
        def __init__(self):
            self._data = {}

    plain = Holder()
    assert not isinstance(plain._data, Shared)

    with racecheck.active():
        tracked = Holder()
        assert isinstance(tracked._data, Shared)
    assert Holder.__racecheck_fields__ == ("_data",)


def test_track_fields_missing_attr_is_tolerated(fresh_racecheck):
    @track_fields("_absent")
    class Holder:
        def __init__(self):
            self._present = 1

    with racecheck.active():
        assert Holder()._present == 1


# -- lifecycle / gating -----------------------------------------------------------


def test_install_uninstall_restores_patched_seams(fresh_racecheck):
    import queue

    before = (
        threading.Lock,
        threading.Thread.start,
        threading.Thread.join,
        queue.Queue.put,
        queue.Queue.get,
    )
    racecheck.install()
    assert threading.Lock is not before[0]
    racecheck.uninstall()
    after = (
        threading.Lock,
        threading.Thread.start,
        threading.Thread.join,
        queue.Queue.put,
        queue.Queue.get,
    )
    assert before == after


def test_nested_install_rejected(fresh_racecheck):
    with racecheck.active():
        with pytest.raises(DataRaceError, match="already installed"):
            racecheck.install()


def test_env_gating(monkeypatch):
    monkeypatch.delenv("REPRO_RACECHECK", raising=False)
    assert not racecheck.enabled_from_env()
    for value in ("1", "true", "yes", "on"):
        monkeypatch.setenv("REPRO_RACECHECK", value)
        assert racecheck.enabled_from_env()
    monkeypatch.setenv("REPRO_RACECHECK", "0")
    assert not racecheck.enabled_from_env()


def test_write_report_accumulates_across_cycles(fresh_racecheck, tmp_path):
    baseline = len(racecheck._session_violations)
    with racecheck.active(strict=False):
        service = _Service()
        flag = [False]

        def writer():
            service.unguarded_write("k", 1)
            flag[0] = True

        thread = threading.Thread(target=writer)
        thread.start()
        _spin_until(flag)
        service.guarded_read("k")
        thread.join()
    report_path = tmp_path / "report.json"
    racecheck.write_report(report_path)
    payload = json.loads(report_path.read_text())
    assert payload["violation_count"] == len(racecheck._session_violations)
    assert len(payload["violations"]) >= baseline + 1
    assert payload["stats"]["writes_checked"] >= 1


def test_composes_with_lockcheck(fresh_racecheck):
    """Install lockcheck first; racecheck wraps its instrumented locks so
    one run checks both lock order and happens-before."""
    from repro.analysis import lockcheck

    lockcheck_was = lockcheck.is_installed()
    if lockcheck_was:
        lockcheck.uninstall()
    lockcheck.install()
    try:
        with racecheck.active():
            service = _Service()
            flag = [False]

            def writer():
                service.guarded_write("k", 1)
                flag[0] = True

            thread = threading.Thread(target=writer)
            thread.start()
            _spin_until(flag)
            assert service.guarded_read("k") == 1
            thread.join()
            assert racecheck.violations() == []
            assert isinstance(service._lock, racecheck.TrackedLock)
            assert isinstance(service._lock._inner, lockcheck.InstrumentedLock)
    finally:
        lockcheck.uninstall()
        if lockcheck_was:
            lockcheck.install()


# -- integration with the instrumented services -----------------------------------


def test_transaction_manager_concurrent_commits_clean(fresh_racecheck):
    from repro.transaction.manager import TransactionManager

    with racecheck.active():
        manager = TransactionManager()
        assert isinstance(manager._active, Shared)
        flag = [False]

        def committer():
            for _ in range(5):
                txn = manager.begin()
                manager.commit(txn)
            flag[0] = True

        thread = threading.Thread(target=committer)
        thread.start()
        for _ in range(5):
            txn = manager.begin()
            manager.commit(txn)
        _spin_until(flag)
        thread.join()
        manager.last_committed_cid
        assert manager.active_count == 0
        assert racecheck.violations() == []


def test_oltp_replication_clean_under_sanitizer(fresh_racecheck):
    """The RA108 finding this PR fixed: broker-pushed _on_commit racing
    catch_up/staleness. With _apply_lock on both sides the run is clean."""
    from repro.soe.replication import DataNode, make_insert
    from repro.soe.services.shared_log import SharedLog
    from repro.soe.services.transaction_broker import TransactionBroker

    with racecheck.active():
        broker = TransactionBroker(SharedLog(stripes=1, replication=1))
        node = DataNode("n1", broker, mode="oltp")
        flag = [False]

        def submitter():
            for i in range(5):
                broker.submit([make_insert("t", [[i]])])
            flag[0] = True

        thread = threading.Thread(target=submitter)
        thread.start()
        _spin_until(flag)
        node.staleness()
        node.owned_partitions("t")
        thread.join()
        assert racecheck.violations() == []
