"""Seeded plan corruptions: every invariant the plan verifier proves.

Each test takes a healthy planner output, applies one targeted
corruption, and asserts the verifier rejects it with an actionable
message — plus clean-plan and Database-wiring checks on the way.
"""

from __future__ import annotations

import pytest

from repro.analysis import plancheck
from repro.analysis.plancheck import (
    PlanCheckError,
    check_plan,
    entry_seal,
    verify_binding,
    verify_entry,
    verify_plan,
)
from repro.core.database import Database
from repro.sql import ast as sql_ast
from repro.sql import plancache
from repro.sql.parser import parse
from repro.sql.planner import (
    LimitNode,
    PlanNode,
    ProjectNode,
    QueryPlan,
    ScanNode,
    SortNode,
    plan_select,
)


@pytest.fixture
def database():
    db = Database()
    db.execute("CREATE TABLE t (a INT, b INT, c VARCHAR)")
    db.execute("CREATE TABLE s (a INT, d VARCHAR)")
    return db


def plan_of(sql, database):
    return plan_select(parse(sql), database.catalog)


def find(node, node_type):
    found = []

    def visit(current):
        if isinstance(current, node_type):
            found.append(current)
        for child in current.children():
            visit(child)

    visit(node)
    return found


def entry_of(sql, database):
    statement = parse(sql)
    plan = plan_select(statement, database.catalog)
    return (
        plancache.PlanEntry(
            plan=plan,
            slots=plancache.collect_literals(statement),
            tables=plancache.plan_tables(plan.root),
        ),
        statement,
        plan,
    )


# -- healthy plans pass -------------------------------------------------------------


@pytest.mark.parametrize(
    "sql",
    [
        "SELECT a FROM t",
        "SELECT a, b FROM t WHERE b > 1 AND c = 'x'",
        "SELECT t.a, s.d FROM t JOIN s ON t.a = s.a WHERE t.b > 1",
        "SELECT c, COUNT(*) AS n, SUM(b) AS s FROM t GROUP BY c ORDER BY c",
        "SELECT DISTINCT a FROM t ORDER BY a LIMIT 3 OFFSET 1",
        "SELECT x.a FROM (SELECT a FROM t WHERE b > 0) x",
        "SELECT a FROM t UNION SELECT a FROM s",
    ],
)
def test_healthy_planner_output_verifies_clean(sql, database):
    assert verify_plan(plan_of(sql, database), database.catalog) == []


# -- corruption 1: scan drops a column its predicate needs --------------------------


def test_dropped_scan_column_is_rejected(database):
    plan = plan_of("SELECT a FROM t WHERE c = 'x'", database)
    scan = find(plan.root, ScanNode)[0]
    scan.columns = [col for col in scan.columns if col != "c"]
    findings = verify_plan(plan, database.catalog)
    assert any(f.check == "schema" and "not producible" in f.message for f in findings)


# -- corruption 2: scan selects a column the catalog does not define ----------------


def test_unknown_catalog_column_is_rejected(database):
    plan = plan_of("SELECT a FROM t", database)
    scan = find(plan.root, ScanNode)[0]
    scan.columns = list(scan.columns) + ["ghost"]
    findings = verify_plan(plan, database.catalog)
    assert any("catalog does not define" in f.message for f in findings)


# -- corruption 3: project output renamed out from under the sort -------------------


def test_renamed_projection_breaks_sort_key(database):
    plan = plan_of("SELECT a AS x FROM t ORDER BY x", database)
    project = find(plan.root, ProjectNode)[0]
    expr, _name = project.items[0]
    project.items = [(expr, "y")]
    findings = verify_plan(plan, database.catalog)
    assert any(f.node == "SortNode" and "sort key" in f.message for f in findings)
    assert any(f.node == "QueryPlan" and "declared output" in f.message for f in findings)


# -- corruption 4: negative / non-finite estimates ----------------------------------


def test_negative_estimate_is_rejected(database):
    plan = plan_of("SELECT a FROM t", database)
    find(plan.root, ScanNode)[0].estimated_rows = -5.0
    findings = verify_plan(plan, database.catalog)
    assert any(f.check == "estimates" and "-5.0" in f.message for f in findings)


def test_nan_and_inf_estimates_are_rejected(database):
    for bad in (float("nan"), float("inf")):
        plan = plan_of("SELECT a FROM t", database)
        find(plan.root, ScanNode)[0].estimated_rows = bad
        findings = verify_plan(plan, database.catalog)
        assert any(f.check == "estimates" for f in findings), bad


# -- corruption 5: Limit claims more rows than its child / its LIMIT ----------------


def test_limit_estimate_monotonicity(database):
    plan = plan_of("SELECT a FROM t LIMIT 5", database)
    limit = find(plan.root, LimitNode)[0]
    limit.estimated_rows = 99.0
    findings = verify_plan(plan, database.catalog)
    assert any("exceeds the LIMIT" in f.message for f in findings)


def test_negative_offset_is_rejected(database):
    plan = plan_of("SELECT a FROM t LIMIT 5", database)
    find(plan.root, LimitNode)[0].offset = -1
    findings = verify_plan(plan, database.catalog)
    assert any(f.check == "estimates" and "offset" in f.message for f in findings)


# -- corruption 6: a node type with no registered governor charge point -------------


def test_unknown_node_type_fails_charge_coverage(database):
    class RogueNode(PlanNode):
        pass

    findings = verify_plan(RogueNode())
    assert any(
        f.check == "charge" and "CHARGE_POINTS" in f.message for f in findings
    )
    with pytest.raises(PlanCheckError) as exc:
        check_plan(RogueNode())
    assert "RogueNode" in str(exc.value)


# -- corruption 7: fingerprint arity disagrees with the entry's slots ---------------


def test_slot_arity_mismatch_against_key(database):
    entry, statement, _plan = entry_of("SELECT a FROM t WHERE b > 7", database)
    findings = verify_entry(entry, statement, key="shape:?:?", catalog=database.catalog)
    assert any("wrong positions" in f.message for f in findings)


# -- corruption 8: a literal slot unreachable from the frozen plan ------------------


def test_unreachable_slot_is_rejected(database):
    entry, statement, _plan = entry_of("SELECT a FROM t WHERE b > 7", database)
    entry.slots = list(entry.slots) + [sql_ast.Literal(99)]
    findings = verify_entry(entry, catalog=database.catalog)
    assert any("not reachable from the frozen plan" in f.message for f in findings)


# -- corruption 9: frozen entry mutated in place (the seal catches it) --------------


def test_seal_detects_in_place_slot_mutation(database):
    entry, _statement, _plan = entry_of("SELECT a FROM t WHERE b > 7", database)
    entry.seal = entry_seal(entry)
    object.__setattr__(entry.slots[0], "value", 42)
    fresh_statement = parse("SELECT a FROM t WHERE b > 8")
    bound = plancache.instantiate(entry, fresh_statement)
    findings = verify_binding(entry, bound, fresh_statement)
    assert any("mutated in place" in f.message for f in findings)


# -- corruption 10: binding that shares the frozen spine ----------------------------


def test_binding_that_returns_frozen_plan_is_rejected(database):
    entry, _statement, plan = entry_of("SELECT a FROM t WHERE b > 7", database)
    fresh_statement = parse("SELECT a FROM t WHERE b > 8")
    findings = verify_binding(entry, plan, fresh_statement)
    assert any("frozen plan itself" in f.message for f in findings)


def test_binding_that_shares_spine_containers_is_rejected(database):
    entry, _statement, plan = entry_of("SELECT a FROM t WHERE b > 7", database)
    fresh_statement = parse("SELECT a FROM t WHERE b > 8")
    # a buggy substitute: clones only the QueryPlan shell, sharing the
    # whole node tree (and the stale literal) with the frozen entry
    shallow = object.__new__(QueryPlan)
    shallow.__dict__.update(plan.__dict__)
    findings = verify_binding(entry, shallow, fresh_statement)
    assert any("was not bound" in f.message for f in findings)
    assert any("frozen spine" in f.message for f in findings)


def test_honest_substitution_copy_verifies_clean(database):
    entry, _statement, _plan = entry_of("SELECT a FROM t WHERE b > 7", database)
    entry.seal = entry_seal(entry)
    fresh_statement = parse("SELECT a FROM t WHERE b > 8")
    bound = plancache.instantiate(entry, fresh_statement)
    assert verify_binding(entry, bound, fresh_statement) == []


# -- corruption 11: frozen plan aliasing live session state -------------------------


def test_aliased_mutable_object_is_rejected(database):
    entry, statement, plan = entry_of("SELECT a FROM t WHERE b > 7", database)
    find(plan.root, ScanNode)[0].signature = {"live", "set"}
    findings = verify_entry(entry, statement, catalog=database.catalog)
    assert any(
        f.check == "cache" and "mutable non-plan object" in f.message for f in findings
    )


# -- Database wiring ----------------------------------------------------------------


def test_cached_entries_carry_a_seal(database):
    database.query("SELECT a FROM t WHERE b > 1")
    entries = list(database.plan_cache._entries.values())
    assert entries
    assert all(entry.seal == entry_seal(entry) for entry in entries)


def test_unreachable_order_by_slot_refuses_caching_but_executes(database):
    # `ORDER BY b + 1` string-matches the select item, so the order-by
    # literal is planned away while the fingerprint still renders it as a
    # slot: the entry is conservatively refused, the query still runs
    sql = "SELECT b + 1 AS x FROM t ORDER BY b + 1"
    key = plancache.fingerprint(parse(sql))
    result = database.query(sql)
    assert result.columns == ["x"]
    assert key not in database.plan_cache


def test_strict_mode_raises_on_corrupt_plan(database):
    with plancheck.active():
        assert plancheck.enabled()
        with pytest.raises(PlanCheckError):
            check_plan(QueryPlan(root=ScanNode("t", "t", ["ghost"]), output_names=["ghost"]), database.catalog)
    assert not plancheck.is_installed()
