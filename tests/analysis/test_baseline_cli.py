"""Baseline semantics, the CLI driver, and the self-clean acceptance gate."""

from __future__ import annotations

from pathlib import Path

from tools.analyze import Baseline, analyze_paths
from tools.analyze.__main__ import main as analyze_main
from tools.analyze.core import all_rules

_SEEDED = """\
import time


def hot_path():
    return time.time()
"""


def _seed_tree(tmp_path: Path) -> Path:
    pkg = tmp_path / "src" / "repro" / "sql"
    pkg.mkdir(parents=True)
    (pkg / "executor.py").write_text(_SEEDED)
    return tmp_path / "src"


# -- acceptance: the shipped tree is clean -----------------------------------------


_REPO_ROOT = Path(__file__).resolve().parents[2]


def test_shipped_tree_has_no_new_findings():
    """`python -m tools.analyze src` must exit 0 on the repository."""
    assert analyze_main([str(_REPO_ROOT / "src")]) == 0


def test_shipped_baseline_is_empty():
    baseline = Baseline.load(_REPO_ROOT / "tools" / "analyze" / "baseline.json")
    assert baseline.entries == {}


# -- acceptance: a seeded violation fails the run ---------------------------------


def test_seeded_wall_clock_violation_fails(tmp_path, capsys):
    root = _seed_tree(tmp_path)
    exit_code = analyze_main([str(root), "--no-baseline"])
    out = capsys.readouterr().out
    assert exit_code == 1
    assert "RA101" in out and "executor.py" in out


def test_seeded_violation_json_report(tmp_path, capsys):
    root = _seed_tree(tmp_path)
    exit_code = analyze_main([str(root), "--no-baseline", "--json"])
    out = capsys.readouterr().out
    assert exit_code == 1
    assert '"code": "RA101"' in out


# -- baseline mechanics -----------------------------------------------------------


def test_baseline_accepts_preexisting_findings(tmp_path, capsys):
    root = _seed_tree(tmp_path)
    baseline_path = tmp_path / "baseline.json"
    assert analyze_main([str(root), "--baseline", str(baseline_path), "--write-baseline"]) == 0
    capsys.readouterr()
    # same findings now accepted
    assert analyze_main([str(root), "--baseline", str(baseline_path)]) == 0
    assert "accepted by the baseline" in capsys.readouterr().out


def test_baseline_still_fails_on_new_findings(tmp_path, capsys):
    root = _seed_tree(tmp_path)
    baseline_path = tmp_path / "baseline.json"
    analyze_main([str(root), "--baseline", str(baseline_path), "--write-baseline"])
    (root / "repro" / "sql" / "planner.py").write_text(_SEEDED)
    assert analyze_main([str(root), "--baseline", str(baseline_path)]) == 1
    assert "planner.py" in capsys.readouterr().out


def test_baseline_reports_stale_entries(tmp_path, capsys):
    root = _seed_tree(tmp_path)
    baseline_path = tmp_path / "baseline.json"
    analyze_main([str(root), "--baseline", str(baseline_path), "--write-baseline"])
    (root / "repro" / "sql" / "executor.py").write_text("def hot_path():\n    return 1\n")
    capsys.readouterr()
    assert analyze_main([str(root), "--baseline", str(baseline_path)]) == 0
    assert "stale baseline" in capsys.readouterr().out


def test_baseline_key_survives_line_shifts(tmp_path):
    root = _seed_tree(tmp_path)
    before = analyze_paths([str(root)])
    source = (root / "repro" / "sql" / "executor.py").read_text()
    (root / "repro" / "sql" / "executor.py").write_text("# a new leading comment\n" + source)
    after = analyze_paths([str(root)])
    assert [f.key for f in before] == [f.key for f in after]
    assert before[0].line != after[0].line


# -- CLI plumbing -----------------------------------------------------------------


def test_list_rules(capsys):
    assert analyze_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("RA101", "RA102", "RA103", "RA104", "RA105", "RA106", "RA107"):
        assert code in out


def test_select_unknown_rule_raises(tmp_path):
    root = _seed_tree(tmp_path)
    try:
        analyze_main([str(root), "--select", "RA999"])
    except ValueError as exc:
        assert "RA999" in str(exc)
    else:
        raise AssertionError("unknown rule code should raise")


def test_rule_registry_is_complete():
    assert sorted(all_rules()) == [
        "RA101", "RA102", "RA103", "RA104", "RA105", "RA106", "RA107",
        "RA108", "RA109", "RA110", "RA111", "RA112", "RA113", "RA114",
        "RA115", "RA116", "RA117",
    ]


# -- --changed: lint only files differing from the merge-base ----------------------


def _git_repo_with_history(tmp_path, monkeypatch):
    """A temp repo: one clean committed file on main, then edits on a branch."""
    import subprocess

    def git(*args):
        subprocess.run(
            ["git", *args], cwd=tmp_path, check=True, capture_output=True,
            env={"GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
                 "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t",
                 "HOME": str(tmp_path), "PATH": __import__("os").environ["PATH"]},
        )

    pkg = tmp_path / "src" / "repro" / "sql"
    pkg.mkdir(parents=True)
    (pkg / "clean.py").write_text("def ok():\n    return 1\n")
    git("init", "-b", "main")
    git("add", ".")
    git("commit", "-m", "seed")
    git("checkout", "-b", "feature")
    monkeypatch.chdir(tmp_path)
    return pkg


def test_changed_mode_lints_only_diffing_files(tmp_path, monkeypatch, capsys):
    pkg = _git_repo_with_history(tmp_path, monkeypatch)
    # a new (untracked) file with a violation; clean.py is unchanged
    (pkg / "dirty.py").write_text(_SEEDED)
    exit_code = analyze_main(["src", "--changed", "--no-baseline"])
    out = capsys.readouterr().out
    assert exit_code == 1
    assert "dirty.py" in out and "clean.py" not in out


def test_changed_mode_no_changes_exits_zero(tmp_path, monkeypatch, capsys):
    _git_repo_with_history(tmp_path, monkeypatch)
    exit_code = analyze_main(["src", "--changed", "--no-baseline"])
    assert exit_code == 0
    assert "no changed python files" in capsys.readouterr().out


def test_changed_mode_respects_roots(tmp_path, monkeypatch, capsys):
    _git_repo_with_history(tmp_path, monkeypatch)
    other = tmp_path / "scripts"
    other.mkdir()
    (other / "dirty.py").write_text(_SEEDED)
    exit_code = analyze_main(["src", "--changed", "--no-baseline"])
    assert exit_code == 0  # the violation is outside the analyzed roots


def test_changed_mode_falls_back_without_git(tmp_path, monkeypatch, capsys):
    root = _seed_tree(tmp_path)
    monkeypatch.chdir(tmp_path)
    monkeypatch.setattr(
        "tools.analyze.__main__.changed_python_files", lambda roots: None
    )
    exit_code = analyze_main([str(root), "--changed", "--no-baseline"])
    captured = capsys.readouterr()
    assert exit_code == 1  # full-run fallback still finds the seeded RA101
    assert "falling back to a full run" in captured.err


def test_changed_mode_rejects_baseline_rewrites(tmp_path):
    import pytest

    with pytest.raises(SystemExit):
        analyze_main(["src", "--changed", "--baseline-prune"])
    with pytest.raises(SystemExit):
        analyze_main(["src", "--changed", "--write-baseline"])


# -- --baseline-prune: drop stale entries -----------------------------------------


def test_baseline_prune_drops_stale_keeps_live(tmp_path, capsys):
    root = _seed_tree(tmp_path)
    baseline_path = tmp_path / "baseline.json"
    # baseline the live finding, then add a stale entry by hand
    live = analyze_paths([str(root)])
    baseline = Baseline.from_findings(live, justification="live")
    baseline.entries[("RA101", "gone/file.py", "old", "stale message")] = "stale"
    baseline.write(baseline_path)

    exit_code = analyze_main(
        [str(root), "--baseline-prune", "--baseline", str(baseline_path)]
    )
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "pruned 1 stale entry" in out

    pruned = Baseline.load(baseline_path)
    assert len(pruned.entries) == len(live)
    assert all(key[1] != "gone/file.py" for key in pruned.entries)
    # the tree still passes against the pruned baseline
    assert analyze_main([str(root), "--baseline", str(baseline_path)]) == 0
    capsys.readouterr()


def test_baseline_prune_noop_on_exact_baseline(tmp_path, capsys):
    root = _seed_tree(tmp_path)
    baseline_path = tmp_path / "baseline.json"
    analyze_main([str(root), "--write-baseline", "--baseline", str(baseline_path)])
    capsys.readouterr()
    assert analyze_main(
        [str(root), "--baseline-prune", "--baseline", str(baseline_path)]
    ) == 0
    assert "pruned 0 stale entries" in capsys.readouterr().out


def test_baseline_file_is_byte_stable(tmp_path):
    import json

    root = _seed_tree(tmp_path)
    baseline_path = tmp_path / "baseline.json"
    analyze_main([str(root), "--write-baseline", "--baseline", str(baseline_path)])
    first = baseline_path.read_text()
    # a rewrite of the same content must be byte-identical (sorted keys)
    Baseline.load(baseline_path).write(baseline_path)
    assert baseline_path.read_text() == first
    payload = json.loads(first)
    assert first == json.dumps(payload, indent=2, sort_keys=True) + "\n"


# -- SARIF output -----------------------------------------------------------------


def test_sarif_report_written(tmp_path):
    import json

    root = _seed_tree(tmp_path)
    sarif_path = tmp_path / "out.sarif"
    assert analyze_main(
        [str(root), "--no-baseline", "--sarif", str(sarif_path)]
    ) == 1
    payload = json.loads(sarif_path.read_text())
    assert payload["version"] == "2.1.0"
    run = payload["runs"][0]
    assert run["tool"]["driver"]["name"] == "tools.analyze"
    rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert {"RA101", "RA112", "RA115"} <= rule_ids
    results = run["results"]
    assert results and results[0]["ruleId"] == "RA101"
    assert results[0]["level"] == "warning"
    location = results[0]["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"].endswith("executor.py")
    assert location["region"]["startLine"] >= 1


def test_sarif_baselined_findings_are_notes(tmp_path, capsys):
    import json

    root = _seed_tree(tmp_path)
    baseline_path = tmp_path / "baseline.json"
    analyze_main([str(root), "--write-baseline", "--baseline", str(baseline_path)])
    capsys.readouterr()
    sarif_path = tmp_path / "out.sarif"
    assert analyze_main(
        [str(root), "--baseline", str(baseline_path), "--sarif", str(sarif_path)]
    ) == 0
    payload = json.loads(sarif_path.read_text())
    levels = {result["level"] for result in payload["runs"][0]["results"]}
    assert levels == {"note"}
