"""Baseline semantics, the CLI driver, and the self-clean acceptance gate."""

from __future__ import annotations

from pathlib import Path

from tools.analyze import Baseline, analyze_paths
from tools.analyze.__main__ import main as analyze_main
from tools.analyze.core import all_rules

_SEEDED = """\
import time


def hot_path():
    return time.time()
"""


def _seed_tree(tmp_path: Path) -> Path:
    pkg = tmp_path / "src" / "repro" / "sql"
    pkg.mkdir(parents=True)
    (pkg / "executor.py").write_text(_SEEDED)
    return tmp_path / "src"


# -- acceptance: the shipped tree is clean -----------------------------------------


_REPO_ROOT = Path(__file__).resolve().parents[2]


def test_shipped_tree_has_no_new_findings():
    """`python -m tools.analyze src` must exit 0 on the repository."""
    assert analyze_main([str(_REPO_ROOT / "src")]) == 0


def test_shipped_baseline_is_empty():
    baseline = Baseline.load(_REPO_ROOT / "tools" / "analyze" / "baseline.json")
    assert baseline.entries == {}


# -- acceptance: a seeded violation fails the run ---------------------------------


def test_seeded_wall_clock_violation_fails(tmp_path, capsys):
    root = _seed_tree(tmp_path)
    exit_code = analyze_main([str(root), "--no-baseline"])
    out = capsys.readouterr().out
    assert exit_code == 1
    assert "RA101" in out and "executor.py" in out


def test_seeded_violation_json_report(tmp_path, capsys):
    root = _seed_tree(tmp_path)
    exit_code = analyze_main([str(root), "--no-baseline", "--json"])
    out = capsys.readouterr().out
    assert exit_code == 1
    assert '"code": "RA101"' in out


# -- baseline mechanics -----------------------------------------------------------


def test_baseline_accepts_preexisting_findings(tmp_path, capsys):
    root = _seed_tree(tmp_path)
    baseline_path = tmp_path / "baseline.json"
    assert analyze_main([str(root), "--baseline", str(baseline_path), "--write-baseline"]) == 0
    capsys.readouterr()
    # same findings now accepted
    assert analyze_main([str(root), "--baseline", str(baseline_path)]) == 0
    assert "accepted by the baseline" in capsys.readouterr().out


def test_baseline_still_fails_on_new_findings(tmp_path, capsys):
    root = _seed_tree(tmp_path)
    baseline_path = tmp_path / "baseline.json"
    analyze_main([str(root), "--baseline", str(baseline_path), "--write-baseline"])
    (root / "repro" / "sql" / "planner.py").write_text(_SEEDED)
    assert analyze_main([str(root), "--baseline", str(baseline_path)]) == 1
    assert "planner.py" in capsys.readouterr().out


def test_baseline_reports_stale_entries(tmp_path, capsys):
    root = _seed_tree(tmp_path)
    baseline_path = tmp_path / "baseline.json"
    analyze_main([str(root), "--baseline", str(baseline_path), "--write-baseline"])
    (root / "repro" / "sql" / "executor.py").write_text("def hot_path():\n    return 1\n")
    capsys.readouterr()
    assert analyze_main([str(root), "--baseline", str(baseline_path)]) == 0
    assert "stale baseline" in capsys.readouterr().out


def test_baseline_key_survives_line_shifts(tmp_path):
    root = _seed_tree(tmp_path)
    before = analyze_paths([str(root)])
    source = (root / "repro" / "sql" / "executor.py").read_text()
    (root / "repro" / "sql" / "executor.py").write_text("# a new leading comment\n" + source)
    after = analyze_paths([str(root)])
    assert [f.key for f in before] == [f.key for f in after]
    assert before[0].line != after[0].line


# -- CLI plumbing -----------------------------------------------------------------


def test_list_rules(capsys):
    assert analyze_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("RA101", "RA102", "RA103", "RA104", "RA105", "RA106", "RA107"):
        assert code in out


def test_select_unknown_rule_raises(tmp_path):
    root = _seed_tree(tmp_path)
    try:
        analyze_main([str(root), "--select", "RA999"])
    except ValueError as exc:
        assert "RA999" in str(exc)
    else:
        raise AssertionError("unknown rule code should raise")


def test_rule_registry_is_complete():
    assert sorted(all_rules()) == [
        "RA101", "RA102", "RA103", "RA104", "RA105", "RA106", "RA107",
    ]
