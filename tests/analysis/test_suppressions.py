"""Inline-suppression hygiene: comment-only parsing and the stale audit.

A ``# repro: allow(...)`` that no longer suppresses anything is a latent
hazard — it would silently swallow the *next* finding on its line — so
``--suppression-report`` lists every such token, and only real comments
(never docstrings quoting the syntax) count as suppressions at all.
"""

from __future__ import annotations

from pathlib import Path

from tools.analyze import analyze_source
from tools.analyze.__main__ import main as analyze_main
from tools.analyze.core import FileContext, audit_suppressions

_LIVE = """\
import time


def hot_path():
    return time.time()  # repro: allow(RA101)
"""

_STALE = """\
import time


def fixed_path():
    return 1  # repro: allow(RA101)
"""

_DOCSTRING_MENTION = '''\
import time


def hot_path():
    """Suppress a finding with ``# repro: allow(RA101)`` on its line."""
    return time.time()
'''


def _tree(tmp_path: Path, name: str, source: str) -> str:
    pkg = tmp_path / "src" / "repro" / "sql"
    pkg.mkdir(parents=True, exist_ok=True)
    (pkg / name).write_text(source)
    return str(tmp_path / "src")


# -- parsing: only real comments suppress ------------------------------------------


def test_docstring_mention_does_not_suppress():
    findings = analyze_source(_DOCSTRING_MENTION, "src/repro/sql/executor.py")
    assert [f.code for f in findings] == ["RA101"]


def test_docstring_mention_is_not_a_suppression_line():
    ctx = FileContext("src/repro/sql/executor.py", _DOCSTRING_MENTION)
    assert ctx._suppressions == {}


def test_comment_suppression_still_works():
    assert analyze_source(_LIVE, "src/repro/sql/executor.py") == []


def test_suppressed_findings_are_recorded_for_the_audit():
    ctx = FileContext("src/repro/sql/executor.py", _LIVE)
    from tools.analyze.core import _run_rules

    _run_rules(ctx)
    assert ctx.findings == []
    assert [f.code for f in ctx.suppressed] == ["RA101"]
    assert ctx.stale_suppressions() == []


def test_stale_suppression_reported_with_line_and_token():
    ctx = FileContext("src/repro/sql/executor.py", _STALE)
    from tools.analyze.core import _run_rules

    _run_rules(ctx)
    assert ctx.findings == []
    assert ctx.stale_suppressions() == [(5, "RA101")]


def test_partially_stale_multi_token_line():
    source = (
        "import time\n"
        "\n"
        "\n"
        "def hot_path():\n"
        "    return time.time()  # repro: allow(RA101, RA104)\n"
    )
    ctx = FileContext("src/repro/sql/executor.py", source)
    from tools.analyze.core import _run_rules

    _run_rules(ctx)
    # RA101 fired and was swallowed; the RA104 token guards nothing
    assert ctx.stale_suppressions() == [(5, "RA104")]


# -- the audit driver --------------------------------------------------------------


def test_audit_mixes_live_and_stale(tmp_path):
    root = _tree(tmp_path, "live.py", _LIVE)
    _tree(tmp_path, "stale.py", _STALE)
    stale = audit_suppressions([root])
    assert [(Path(p).name, line, token) for p, line, token in stale] == [
        ("stale.py", 5, "RA101")
    ]


def test_audit_clean_tree_is_empty(tmp_path):
    root = _tree(tmp_path, "live.py", _LIVE)
    assert audit_suppressions([root]) == []


# -- the CLI flag ------------------------------------------------------------------


def test_cli_suppression_report_flags_stale(tmp_path, capsys):
    root = _tree(tmp_path, "stale.py", _STALE)
    assert analyze_main([root, "--suppression-report"]) == 1
    out = capsys.readouterr().out
    assert "stale.py:5: stale suppression allow(RA101)" in out
    assert "1 stale suppression(s)" in out


def test_cli_suppression_report_clean_exits_zero(tmp_path, capsys):
    root = _tree(tmp_path, "live.py", _LIVE)
    assert analyze_main([root, "--suppression-report"]) == 0
    assert "no stale suppressions" in capsys.readouterr().out


def test_shipped_tree_has_no_stale_suppressions():
    repo_root = Path(__file__).resolve().parents[2]
    stale = audit_suppressions(
        [repo_root / "src", repo_root / "tools", repo_root / "tests"]
    )
    assert stale == [], f"stale inline suppressions: {stale}"
