"""The lock-order sanitizer: inversion detection, self-deadlock, gating."""

from __future__ import annotations

import threading

import pytest

from repro.analysis import lockcheck


@pytest.fixture
def fresh_lockcheck():
    """A sanitizer scope independent of the REPRO_LOCKCHECK autouse one."""
    was_installed = lockcheck.is_installed()
    if was_installed:
        lockcheck.uninstall()
    yield
    if lockcheck.is_installed():
        lockcheck.uninstall()
    if was_installed:
        lockcheck.install()


def test_lock_order_inversion_detected(fresh_lockcheck):
    """The seeded A→B / B→A inversion must raise at the second pattern."""
    with lockcheck.active():
        lock_a = threading.Lock()
        lock_b = threading.Lock()
        with lock_a:
            with lock_b:
                pass
        with pytest.raises(lockcheck.LockOrderError, match="inversion"):
            with lock_b:
                with lock_a:
                    pass


def test_inversion_detected_across_threads(fresh_lockcheck):
    """One order per thread — the cycle only exists in the merged graph."""
    with lockcheck.active(strict=False):
        lock_a = threading.Lock()
        lock_b = threading.Lock()

        def first():
            with lock_a:
                with lock_b:
                    pass

        thread = threading.Thread(target=first)
        thread.start()
        thread.join()
        with lock_b:
            with lock_a:
                pass
        assert any("inversion" in v for v in lockcheck.violations())


def test_consistent_order_is_clean(fresh_lockcheck):
    with lockcheck.active():
        lock_a = threading.Lock()
        lock_b = threading.Lock()
        for _ in range(3):
            with lock_a:
                with lock_b:
                    pass
        assert lockcheck.violations() == []


def test_self_deadlock_detected(fresh_lockcheck):
    with lockcheck.active():
        lock = threading.Lock()
        with pytest.raises(lockcheck.LockOrderError, match="self-deadlock"):
            with lock:
                with lock:
                    pass


def test_non_blocking_reacquire_not_flagged(fresh_lockcheck):
    """``acquire(blocking=False)`` on a held lock just returns False."""
    with lockcheck.active():
        lock = threading.Lock()
        with lock:
            assert lock.acquire(blocking=False) is False  # repro: allow(RA102)
        assert lockcheck.violations() == []


def test_uninstall_restores_real_lock(fresh_lockcheck):
    with lockcheck.active():
        assert threading.Lock is not lockcheck._REAL_LOCK
        instrumented = threading.Lock()
        assert isinstance(instrumented, lockcheck.InstrumentedLock)
    assert threading.Lock is lockcheck._REAL_LOCK
    # detached locks keep functioning without reporting
    with instrumented:
        pass


def test_nested_install_rejected(fresh_lockcheck):
    with lockcheck.active():
        with pytest.raises(lockcheck.LockOrderError, match="already installed"):
            lockcheck.install()


def test_env_gating(monkeypatch):
    monkeypatch.delenv("REPRO_LOCKCHECK", raising=False)
    assert lockcheck.enabled_from_env() is False
    monkeypatch.setenv("REPRO_LOCKCHECK", "1")
    assert lockcheck.enabled_from_env() is True
    monkeypatch.setenv("REPRO_LOCKCHECK", "0")
    assert lockcheck.enabled_from_env() is False


def test_transaction_layer_runs_clean_under_sanitizer(fresh_lockcheck):
    """The shipped SOE/transaction stack holds its locks in one order."""
    from repro.soe.engine import SoeEngine

    with lockcheck.active():
        soe = SoeEngine(node_count=2, node_modes="olap")
        soe.create_table("t", ["k", "v"], ["k"], partition_count=2)
        soe.load("t", [[i, float(i)] for i in range(50)])
        assert lockcheck.violations() == []


# -- edge cases around install/uninstall boundaries (PR 4) -------------------------


def test_uninstall_while_lock_held(fresh_lockcheck):
    """Uninstalling with a lock still held must detach cleanly: the held
    lock keeps working (release succeeds) and reports nothing further."""
    lockcheck.install()
    lock = threading.Lock()
    assert isinstance(lock, lockcheck.InstrumentedLock)
    lock.acquire()
    try:
        lockcheck.uninstall()
        assert lock.locked()
    finally:
        lock.release()
    assert not lock.locked()
    # detached: usable, but no checker to report to
    with lock:
        pass
    assert lockcheck.violations() == []


def test_nonblocking_reacquire_and_release_of_unlocked(fresh_lockcheck):
    """The wrapper must preserve raw-lock semantics exactly: a failed
    non-blocking reacquire returns False (and must not poison the order
    graph), and releasing an unlocked lock raises RuntimeError."""
    with lockcheck.active():
        lock = threading.Lock()
        assert lock.acquire(blocking=False) is True
        assert lock.acquire(blocking=False) is False  # held: no deadlock report
        lock.release()
        with pytest.raises(RuntimeError):
            lock.release()
        # the failed reacquire left no residue: normal use stays clean
        with lock:
            pass
        assert lockcheck.violations() == []


def test_timeout_acquire_preserved(fresh_lockcheck):
    with lockcheck.active():
        lock = threading.Lock()
        with lock:
            assert lock.acquire(blocking=True, timeout=0.01) is False
        assert lock.acquire(blocking=True, timeout=0.01) is True
        lock.release()


def test_locks_created_before_install_are_untracked_but_functional(fresh_lockcheck):
    """A raw lock predating install() contributes no graph edges — an
    inversion against it is invisible (documented limit), but using it
    under the sanitizer must work and not crash the checker."""
    early = threading.Lock()
    with lockcheck.active():
        assert not isinstance(early, lockcheck.InstrumentedLock)
        late = threading.Lock()
        assert isinstance(late, lockcheck.InstrumentedLock)
        with early:
            with late:
                pass
        with late:
            with early:  # would be an inversion if `early` were tracked
                pass
        assert lockcheck.violations() == []
