"""Unit tests for the deterministic retry/backoff primitives."""

from __future__ import annotations

import pytest

from repro.errors import ClusterError, ReproError, RetryableError
from repro.util.retry import RetryPolicy, SimulatedClock


class TransientBoom(ClusterError, RetryableError):
    pass


class TestSimulatedClock:
    def test_starts_at_zero_and_advances(self):
        clock = SimulatedClock()
        assert clock.now == 0.0
        assert clock.advance(1.5) == 1.5
        clock.advance(0.25)
        assert clock.now == 1.75

    def test_rejects_negative_advance(self):
        with pytest.raises(ReproError):
            SimulatedClock().advance(-0.1)


class TestBackoffSchedule:
    def test_exponential_schedule_without_jitter(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.01, multiplier=2.0, max_delay=1.0)
        assert list(policy.schedule()) == [
            (0, 0.0),
            (1, 0.01),
            (2, 0.02),
            (3, 0.04),
            (4, 0.08),
        ]

    def test_delay_is_capped_at_max_delay(self):
        policy = RetryPolicy(max_attempts=10, base_delay=0.5, multiplier=4.0, max_delay=2.0)
        assert policy.delay_before(1) == 0.5
        assert policy.delay_before(2) == 2.0
        assert policy.delay_before(9) == 2.0

    def test_total_backoff_sums_the_schedule(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.01, multiplier=2.0, max_delay=1.0)
        assert policy.total_backoff() == pytest.approx(0.01 + 0.02 + 0.04)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ReproError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ReproError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ReproError):
            RetryPolicy(base_delay=-1.0)


class TestRetryCall:
    def test_succeeds_after_transient_failures_and_charges_clock(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.01, multiplier=2.0)
        clock = SimulatedClock()
        calls = []

        def flaky():
            calls.append(len(calls))
            if len(calls) < 3:
                raise TransientBoom("not yet")
            return "ok"

        assert policy.call(flaky, clock=clock) == "ok"
        assert len(calls) == 3
        # two retries: 0.01 + 0.02 of backoff on the simulated clock
        assert clock.now == pytest.approx(0.03)

    def test_exhaustion_reraises_the_subsystem_type(self):
        policy = RetryPolicy(max_attempts=2, base_delay=0.01)
        clock = SimulatedClock()

        def always():
            raise TransientBoom("down")

        with pytest.raises(ClusterError):
            policy.call(always, clock=clock)
        assert clock.now == pytest.approx(0.01)

    def test_non_retryable_errors_propagate_immediately(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.01)
        clock = SimulatedClock()
        calls = []

        def fatal():
            calls.append(1)
            raise ClusterError("permanent")

        with pytest.raises(ClusterError):
            policy.call(fatal, clock=clock)
        assert len(calls) == 1
        assert clock.now == 0.0

    def test_on_retry_hook_sees_attempt_and_error(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.01)
        clock = SimulatedClock()
        seen = []

        def flaky():
            if len(seen) < 1:
                raise TransientBoom("first")
            return 42

        assert (
            policy.call(flaky, clock=clock, on_retry=lambda a, e: seen.append((a, e)))
            == 42
        )
        assert len(seen) == 1
        assert seen[0][0] == 1
        assert isinstance(seen[0][1], TransientBoom)


class TestRetryabilityPoles:
    """The two poles ownership fencing adds to the type-driven contract:
    partition drops are retryable (the link may heal), fencing verdicts
    are not (a stale epoch never becomes current again)."""

    def test_is_retryable_is_type_driven(self):
        from repro.errors import (
            FencedError,
            LeaseExpiredError,
            NetworkPartitionedError,
            TransferDroppedError,
        )
        from repro.util.retry import is_retryable

        assert is_retryable(NetworkPartitionedError("a", "b"))
        assert isinstance(NetworkPartitionedError("a", "b"), TransferDroppedError)
        assert not is_retryable(FencedError("stale"))
        assert not is_retryable(LeaseExpiredError("expired"))
        assert isinstance(LeaseExpiredError("expired"), FencedError)

    def test_partition_drop_is_retried_with_backoff_then_raised(self):
        from repro.errors import NetworkPartitionedError

        policy = RetryPolicy(max_attempts=3, base_delay=0.01, multiplier=2.0)
        clock = SimulatedClock()
        attempts = []
        retries = []

        def always_partitioned():
            attempts.append(len(attempts))
            raise NetworkPartitionedError("worker0", "coordinator")

        with pytest.raises(NetworkPartitionedError):
            policy.call(
                always_partitioned,
                clock=clock,
                on_retry=lambda n, exc: retries.append(n),
            )
        assert len(attempts) == 3
        assert retries == [1, 2]
        assert clock.now == pytest.approx(0.01 + 0.02)

    def test_fenced_error_punches_through_without_backoff(self):
        from repro.errors import FencedError

        policy = RetryPolicy(max_attempts=5, base_delay=0.01, multiplier=2.0)
        clock = SimulatedClock()
        attempts = []
        retries = []

        def fenced():
            attempts.append(len(attempts))
            raise FencedError("stale fence token")

        with pytest.raises(FencedError):
            policy.call(
                fenced, clock=clock, on_retry=lambda n, exc: retries.append(n)
            )
        assert len(attempts) == 1, "a fenced writer must not blind-retry"
        assert retries == []
        assert clock.now == 0.0

    def test_partition_heals_mid_schedule(self):
        from repro.errors import NetworkPartitionedError

        policy = RetryPolicy(max_attempts=4, base_delay=0.01, multiplier=2.0)
        clock = SimulatedClock()
        state = {"calls": 0}

        def heals_after_two():
            state["calls"] += 1
            if state["calls"] <= 2:
                raise NetworkPartitionedError("a", "b")
            return "delivered"

        assert policy.call(heals_after_two, clock=clock) == "delivered"
        assert state["calls"] == 3
