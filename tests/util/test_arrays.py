"""Tests for GrowableInt64."""

import numpy as np
import pytest

from repro.util.arrays import GrowableInt64


def test_append_and_indexing():
    array = GrowableInt64()
    for value in range(100):
        position = array.append(value)
        assert position == value
    assert len(array) == 100
    assert array[0] == 0
    assert array[-1] == 99
    with pytest.raises(IndexError):
        array[100]
    with pytest.raises(IndexError):
        array[-101]


def test_setitem():
    array = GrowableInt64()
    array.append(5)
    array[0] = 9
    assert array[0] == 9
    with pytest.raises(IndexError):
        array[3] = 1


def test_view_is_zero_copy_prefix():
    array = GrowableInt64()
    for value in range(10):
        array.append(value)
    view = array.view()
    assert len(view) == 10
    view[3] = 99  # writes through
    assert array[3] == 99


def test_growth_beyond_initial_capacity():
    array = GrowableInt64(capacity=2)
    for value in range(1000):
        array.append(value)
    assert len(array) == 1000
    assert list(array.view()[:5]) == [0, 1, 2, 3, 4]


def test_extend_bulk():
    array = GrowableInt64()
    array.append(1)
    array.extend(np.arange(500))
    assert len(array) == 501
    assert array[500] == 499


def test_init_from_existing_array():
    array = GrowableInt64(np.array([7, 8, 9]))
    assert len(array) == 3
    array.append(10)
    assert list(array.view()) == [7, 8, 9, 10]
