"""Tests for document paths and the materialised join index."""

import pytest

from repro.columnstore.document import (
    DocumentJoinIndex,
    doc_extract,
    doc_extract_all,
    doc_match,
    parse_path,
)
from repro.errors import SchemaError, SqlSyntaxError

DOC = {
    "order": 7,
    "customer": {"name": "acme", "country": "DE"},
    "items": [
        {"sku": "a", "price": 10.0},
        {"sku": "b", "price": 20.0},
    ],
}


def test_parse_path_fields_and_indexes():
    path = parse_path("$.items[1].sku")
    assert path.first(DOC) == "b"


def test_parse_path_wildcard():
    path = parse_path("$.items[*].price")
    assert path.extract(DOC) == [10.0, 20.0]


def test_parse_path_negative_index():
    assert parse_path("$.items[-1].sku").first(DOC) == "a" or True
    assert parse_path("$.items[-1].sku").first(DOC) == "b"


def test_missing_path_yields_empty():
    assert parse_path("$.nope.deeper").extract(DOC) == []
    assert parse_path("$.items[9]").extract(DOC) == []


def test_bad_paths_raise():
    with pytest.raises(SqlSyntaxError):
        parse_path("items.sku")
    with pytest.raises(SqlSyntaxError):
        parse_path("$.items[x]")


def test_doc_functions_accept_json_text():
    import json

    blob = json.dumps(DOC)
    assert doc_extract(blob, "$.customer.name") == "acme"
    assert doc_extract_all(blob, "$.items[*].sku") == ["a", "b"]
    assert doc_match(blob, "$.customer.country", "DE")
    assert not doc_match(blob, "$.customer.country", "US")
    assert doc_extract(None, "$.x") is None


def test_star_over_dict_values():
    assert set(parse_path("$.customer[*]").extract(DOC)) == {"acme", "DE"}


def test_join_index_build_and_get():
    index = DocumentJoinIndex("order_id", item_parent_key="order_id",
                              subitem_parent_key="item_id")
    index.build(
        headers=[{"order_id": 1, "customer": "acme"}],
        items=[{"order_id": 1, "item_id": 10, "sku": "a"}],
        subitems=[{"item_id": 10, "serial": "s1"}],
        item_key="item_id",
    )
    document = index.get(1)
    assert document["customer"] == "acme"
    assert document["items"][0]["subitems"][0]["serial"] == "s1"
    assert index.get(99) is None


def test_join_index_rejects_orphans():
    index = DocumentJoinIndex("order_id")
    with pytest.raises(SchemaError):
        index.build(headers=[{"order_id": 1}], items=[{"order_id": 2}])


def test_join_index_upsert_and_scan():
    index = DocumentJoinIndex("k")
    index.upsert({"k": 1, "region": "EU"}, items=[{"sku": "x"}])
    index.upsert({"k": 2, "region": "US"})
    assert len(index) == 2
    eu = index.scan(lambda doc: doc["region"] == "EU")
    assert [doc["k"] for doc in eu] == [1]
