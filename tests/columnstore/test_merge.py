"""Tests for the delta merge, including the app-aware key optimisation."""

import pytest

from repro.columnstore.merge import merge_partition, merge_table
from repro.columnstore.table import ColumnTable
from repro.core import types
from repro.core.schema import schema
from repro.transaction.manager import TransactionManager
from repro.transaction.mvcc import INF_CID


@pytest.fixture
def setup():
    manager = TransactionManager()
    table = ColumnTable("t", schema(("key", types.VARCHAR), ("v", types.INTEGER)))
    return manager, table


def load(manager, table, rows):
    txn = manager.begin()
    table.insert_many(rows, txn)
    manager.commit(txn)


def test_merge_moves_delta_to_main(setup):
    manager, table = setup
    load(manager, table, [["a", 1], ["b", 2]])
    stats = merge_table(table)
    assert stats.rows_merged == 2
    partition = table.partitions[0]
    assert partition.n_delta == 0
    assert partition.n_main == 2
    assert table.scan_rows(manager.last_committed_cid) == [["a", 1], ["b", 2]]


def test_merge_preserves_visibility(setup):
    manager, table = setup
    load(manager, table, [["a", 1], ["b", 2]])
    txn = manager.begin()
    table.delete_at(0, 0, txn)
    manager.commit(txn)
    merge_table(table)
    assert table.scan_rows(manager.last_committed_cid) == [["b", 2]]


def test_monotone_keys_do_not_remap(setup):
    manager, table = setup
    load(manager, table, [["k001", 1], ["k002", 2]])
    merge_table(table)
    load(manager, table, [["k003", 3], ["k004", 4]])
    stats = merge_table(table)
    assert stats.columns_remapped == 0
    assert stats.ids_rewritten == 0


def test_random_keys_force_remap(setup):
    manager, table = setup
    load(manager, table, [["m", 1], ["t", 2]])
    merge_table(table)
    load(manager, table, [["a", 3]])  # sorts before existing values
    stats = merge_table(table)
    assert stats.columns_remapped >= 1
    assert stats.ids_rewritten >= 2
    # data is still correct after the remap
    rows = {tuple(r) for r in table.scan_rows(manager.last_committed_cid)}
    assert rows == {("m", 1), ("t", 2), ("a", 3)}


def test_compacting_merge_drops_dead_versions(setup):
    manager, table = setup
    load(manager, table, [["a", 1], ["b", 2], ["c", 3]])
    txn = manager.begin()
    table.delete_at(0, 1, txn)
    manager.commit(txn)
    stats = merge_table(table, compact=True, oldest_active_snapshot=manager.last_committed_cid)
    assert stats.rows_compacted == 1
    partition = table.partitions[0]
    assert partition.n_main == 2
    assert table.scan_rows(manager.last_committed_cid) == [["a", 1], ["c", 3]]


def test_compacting_merge_drops_rollback_tombstones(setup):
    manager, table = setup
    load(manager, table, [["a", 1]])
    aborted = manager.begin()
    table.insert(["zz", 9], aborted)
    manager.rollback(aborted)
    stats = merge_table(table, compact=True, oldest_active_snapshot=manager.last_committed_cid)
    assert stats.rows_compacted == 1
    assert table.scan_rows(manager.last_committed_cid) == [["a", 1]]


def test_merge_keeps_pending_writes(setup):
    manager, table = setup
    load(manager, table, [["a", 1]])
    pending = manager.begin()
    table.insert(["b", 2], pending)
    merge_table(table)
    manager.commit(pending)
    rows = {tuple(r) for r in table.scan_rows(manager.last_committed_cid)}
    assert rows == {("a", 1), ("b", 2)}


def test_empty_merge_is_noop(setup):
    _manager, table = setup
    stats = merge_partition(table.partitions[0])
    assert stats.rows_merged == 0


def test_merge_with_nulls(setup):
    manager, table = setup
    load(manager, table, [[None, None], ["a", 1]])
    merge_table(table)
    rows = table.scan_rows(manager.last_committed_cid)
    assert rows == [[None, None], ["a", 1]]


def test_soe_relaxed_compression_never_remaps():
    """§IV.A: the SOE relaxes resorting — unsorted (append) dictionaries
    keep value ids stable regardless of key order."""
    from repro.columnstore.dictionary import AppendDictionary

    manager = TransactionManager()
    table = ColumnTable(
        "t",
        schema(("key", types.VARCHAR), ("v", types.INTEGER)),
        sorted_dictionaries=False,
    )
    load(manager, table, [["m", 1], ["t", 2]])
    merge_table(table)
    load(manager, table, [["a", 3]])  # would force a resort in sorted mode
    stats = merge_table(table)
    assert stats.columns_remapped == 0
    assert stats.ids_rewritten == 0
    partition = table.partitions[0]
    assert isinstance(partition.main["key"].dictionary, AppendDictionary)
    rows = {tuple(r) for r in table.scan_rows(manager.last_committed_cid)}
    assert rows == {("m", 1), ("t", 2), ("a", 3)}
