"""Tests for the physical column encodings."""

import numpy as np
import pytest

from repro.columnstore.compression import (
    NULL_VID,
    BitPackedVector,
    RunLengthVector,
    SparseVector,
    choose_encoding,
    compression_report,
)


@pytest.fixture(params=["bitpacked", "rle", "sparse"])
def encoding_case(request):
    rng = np.random.default_rng(3)
    if request.param == "bitpacked":
        vids = rng.integers(0, 1000, 500)
        return BitPackedVector(vids), vids
    if request.param == "rle":
        vids = np.repeat(np.arange(10), 50)
        return RunLengthVector(vids), vids
    vids = np.zeros(500, dtype=np.int64)
    vids[rng.choice(500, 20, replace=False)] = rng.integers(1, 5, 20)
    return SparseVector(vids, 0), vids


def test_decode_round_trip(encoding_case):
    encoded, vids = encoding_case
    assert np.array_equal(encoded.decode(), vids)
    assert len(encoded) == len(vids)


def test_take_matches_decode(encoding_case):
    encoded, vids = encoding_case
    positions = np.array([0, 5, 499, 250, 5])
    assert np.array_equal(encoded.take(positions), vids[positions])


def test_scan_eq_matches_decode(encoding_case):
    encoded, vids = encoding_case
    target = int(vids[7])
    assert np.array_equal(encoded.scan_eq(target), vids == target)


def test_bitpacked_narrows_dtype():
    small = BitPackedVector(np.arange(100, dtype=np.int64))
    assert small.memory_bytes() == 100  # int8
    wide = BitPackedVector(np.array([100000], dtype=np.int64))
    assert wide.memory_bytes() == 4  # int32


def test_bitpacked_preserves_null_vid():
    vids = np.array([0, NULL_VID, 2], dtype=np.int64)
    assert np.array_equal(BitPackedVector(vids).decode(), vids)


def test_rle_run_count():
    rle = RunLengthVector(np.repeat(np.arange(4), 25))
    assert rle.run_count == 4


def test_sparse_exception_count():
    vids = np.zeros(100, dtype=np.int64)
    vids[10] = 3
    sparse = SparseVector(vids, 0)
    assert sparse.exception_count == 1
    assert sparse.default_vid == 0


def test_empty_vectors():
    for cls in (BitPackedVector, RunLengthVector):
        encoded = cls(np.empty(0, dtype=np.int64))
        assert len(encoded) == 0
        assert len(encoded.decode()) == 0


def test_choose_encoding_prefers_rle_for_sorted():
    encoded = choose_encoding(np.repeat(np.arange(5), 1000))
    assert isinstance(encoded, RunLengthVector)


def test_choose_encoding_prefers_sparse_for_skew():
    vids = np.zeros(5000, dtype=np.int64)
    vids[::97] = np.arange(len(vids[::97])) % 50 + 1
    # mostly-zero but not sorted-runs friendly at the tail
    rng = np.random.default_rng(1)
    rng.shuffle(vids)
    encoded = choose_encoding(vids)
    assert isinstance(encoded, (SparseVector, RunLengthVector))
    assert encoded.memory_bytes() < BitPackedVector(vids).memory_bytes() * 1.01


def test_choose_encoding_random_falls_back_to_bitpacked():
    rng = np.random.default_rng(5)
    vids = rng.integers(0, 100000, 2000)
    assert isinstance(choose_encoding(vids), BitPackedVector)


def test_compression_report():
    report = compression_report(BitPackedVector(np.arange(100)))
    assert report["rows"] == 100.0
    assert report["ratio"] == pytest.approx(8.0)
