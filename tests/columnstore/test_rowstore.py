"""Tests for the row store."""

import pytest

from repro.columnstore.rowstore import RowTable
from repro.core import types
from repro.core.schema import schema
from repro.errors import WriteConflictError
from repro.transaction.manager import TransactionManager


@pytest.fixture
def setup():
    manager = TransactionManager()
    table = RowTable("r", schema(("id", types.INTEGER), ("v", types.DOUBLE)))
    return manager, table


def test_insert_scan_round_trip(setup):
    manager, table = setup
    txn = manager.begin()
    table.insert_many([[1, 1.5], [2, 2.5]], txn)
    manager.commit(txn)
    assert table.scan(manager.last_committed_cid) == [[1, 1.5], [2, 2.5]]


def test_select_predicate(setup):
    manager, table = setup
    txn = manager.begin()
    table.insert_many([[1, 1.0], [2, 5.0]], txn)
    manager.commit(txn)
    rows = table.select(lambda row: row[1] > 2, manager.last_committed_cid)
    assert rows == [[2, 5.0]]


def test_aggregate_sum_skips_nulls(setup):
    manager, table = setup
    txn = manager.begin()
    table.insert_many([[1, 1.0], [2, None], [3, 2.0]], txn)
    manager.commit(txn)
    assert table.aggregate_sum("v", manager.last_committed_cid) == 3.0


def test_delete_conflict(setup):
    manager, table = setup
    txn = manager.begin()
    table.insert([1, 1.0], txn)
    manager.commit(txn)
    first = manager.begin()
    table.delete_at(0, first)
    second = manager.begin()
    with pytest.raises(WriteConflictError):
        table.delete_at(0, second)


def test_mvcc_isolation(setup):
    manager, table = setup
    txn = manager.begin()
    table.insert([1, 1.0], txn)
    reader = manager.begin()
    manager.commit(txn)
    assert table.scan(reader.snapshot_cid, reader.tid) == []
