"""Tests for main/delta column fragments."""

import datetime as dt

import numpy as np

from repro.columnstore.column import DeltaColumn, MainColumn
from repro.core import types


def test_main_build_and_decode_ints():
    column = MainColumn.build(types.INTEGER, [3, 1, 2, 1])
    array = column.array()
    assert array.dtype == np.int64
    assert list(array) == [3, 1, 2, 1]


def test_main_with_nulls_decodes_to_float_nan():
    column = MainColumn.build(types.INTEGER, [1, None, 3])
    array = column.array()
    assert array.dtype == np.float64
    assert np.isnan(array[1])


def test_main_strings_decode_to_objects():
    column = MainColumn.build(types.VARCHAR, ["b", None, "a"])
    assert list(column.array()) == ["b", None, "a"]


def test_values_at_exact():
    column = MainColumn.build(types.DATE, [dt.date(2014, 1, 1), dt.date(2013, 5, 5)])
    assert column.values_at(np.array([1])) == [dt.date(2013, 5, 5)]


def test_unsorted_dictionary_build():
    column = MainColumn.build(types.VARCHAR, ["b", "a"], sorted_dictionary=False)
    assert column.dictionary.values == ["b", "a"]
    assert list(column.array()) == ["b", "a"]


def test_delta_append_and_array():
    delta = DeltaColumn(types.DOUBLE)
    delta.extend([1.5, None, 2.0])
    array = delta.array()
    assert array.dtype == np.float64
    assert np.isnan(array[1])
    assert delta.values_at(np.array([0, 2])) == [1.5, 2.0]


def test_delta_bool_column():
    delta = DeltaColumn(types.BOOLEAN)
    delta.extend([True, False])
    assert delta.array().dtype == np.bool_


def test_memory_accounting_positive():
    column = MainColumn.build(types.VARCHAR, ["hello"] * 100)
    assert column.memory_bytes() > 0
    delta = DeltaColumn(types.VARCHAR)
    delta.append("x")
    assert delta.memory_bytes() > 0
