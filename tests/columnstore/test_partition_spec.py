"""Tests for partitioning specs."""

import pytest

from repro.columnstore.partition import (
    HashPartitioning,
    RangePartitioning,
    SinglePartition,
)
from repro.core import types
from repro.core.schema import schema
from repro.errors import PartitionError

SCHEMA = schema(("id", types.INTEGER), ("year", types.INTEGER))


def test_single_partition_routes_everything_to_zero():
    spec = SinglePartition()
    assert spec.partition_count == 1
    assert spec.route([1, 2014], SCHEMA) == 0


def test_hash_partitioning_is_deterministic_and_bounded():
    spec = HashPartitioning(["id"], 4)
    buckets = {spec.route([value, 0], SCHEMA) for value in range(100)}
    assert buckets <= {0, 1, 2, 3}
    assert len(buckets) > 1
    assert spec.route([7, 0], SCHEMA) == spec.route([7, 99], SCHEMA)


def test_hash_partitioning_validation():
    with pytest.raises(PartitionError):
        HashPartitioning([], 4)
    with pytest.raises(PartitionError):
        HashPartitioning(["id"], 0)


def test_range_partitioning_routes_by_boundary():
    spec = RangePartitioning("year", [2013, 2015])
    assert spec.partition_count == 3
    assert spec.route([1, 2012], SCHEMA) == 0
    assert spec.route([1, 2013], SCHEMA) == 1
    assert spec.route([1, 2014], SCHEMA) == 1
    assert spec.route([1, 2015], SCHEMA) == 2
    assert spec.route([1, None], SCHEMA) == 0


def test_range_boundaries_must_ascend():
    with pytest.raises(PartitionError):
        RangePartitioning("year", [2015, 2013])
    with pytest.raises(PartitionError):
        RangePartitioning("year", [])


def test_range_partition_range_bounds():
    spec = RangePartitioning("year", [2013, 2015])
    assert spec.partition_range(0) == (None, 2013)
    assert spec.partition_range(1) == (2013, 2015)
    assert spec.partition_range(2) == (2015, None)


def test_range_prune():
    spec = RangePartitioning("year", [2013, 2015])
    assert spec.prune(low=2016) == [2]
    assert spec.prune(high=2012) == [0]
    assert spec.prune(low=2013, high=2014) == [1]
    assert spec.prune() == [0, 1, 2]


def test_composite_partitioning_routes_both_levels():
    from repro.columnstore.partition import CompositePartitioning

    spec = CompositePartitioning(
        RangePartitioning("year", [2014]), HashPartitioning(["id"], 3)
    )
    assert spec.partition_count == 6
    assert len(spec.partition_names()) == 6
    early = spec.route([7, 2013], SCHEMA)
    late = spec.route([7, 2015], SCHEMA)
    assert early < 3 <= late
    # same id, same hash slot within each range slice
    assert late - early == 3


def test_composite_prune_expands_to_hash_group():
    from repro.columnstore.partition import CompositePartitioning

    spec = CompositePartitioning(
        RangePartitioning("year", [2014]), HashPartitioning(["id"], 3)
    )
    assert spec.prune(low=2015) == [3, 4, 5]
    assert spec.prune(high=2013) == [0, 1, 2]
    assert spec.column == "year"


def test_composite_pruning_through_sql():
    from repro.columnstore.partition import CompositePartitioning
    from repro.core import types
    from repro.core.database import Database
    from repro.core.schema import schema as make_schema
    from repro.sql.executor import execute as run_plan
    from repro.sql.parser import parse
    from repro.sql.planner import plan_select

    database = Database()
    database.create_table(
        "events",
        make_schema(("id", types.INTEGER), ("year", types.INTEGER), ("v", types.DOUBLE)),
        partitioning=CompositePartitioning(
            RangePartitioning("year", [2014]), HashPartitioning(["id"], 2)
        ),
    )
    txn = database.begin()
    database.table("events").insert_many(
        ([i, 2013 + (i % 2) * 2, float(i)] for i in range(100)), txn
    )
    database.commit(txn)
    plan = plan_select(parse("SELECT COUNT(*) FROM events WHERE year >= 2015"), database.catalog)
    context = database._context(None, None)
    batch = run_plan(plan, context)
    assert batch.rows() == [[50]]
    assert context.metrics["partitions_pruned"] == 2  # the 2013 hash group
