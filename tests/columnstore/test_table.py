"""Tests for ColumnTable: inserts, MVCC visibility, deletes, flexible."""

import numpy as np
import pytest

from repro.columnstore.partition import HashPartitioning
from repro.columnstore.table import ColumnTable
from repro.core import types
from repro.core.schema import schema
from repro.errors import SchemaError, WriteConflictError
from repro.transaction.manager import TransactionManager


@pytest.fixture
def setup():
    manager = TransactionManager()
    table = ColumnTable("t", schema(("id", types.INTEGER), ("name", types.VARCHAR)))
    return manager, table


def test_insert_visible_after_commit(setup):
    manager, table = setup
    txn = manager.begin()
    table.insert([1, "a"], txn)
    assert table.row_count(manager.last_committed_cid) == 0
    manager.commit(txn)
    assert table.row_count(manager.last_committed_cid) == 1


def test_own_writes_visible_before_commit(setup):
    manager, table = setup
    txn = manager.begin()
    table.insert([1, "a"], txn)
    assert table.row_count(txn.snapshot_cid, txn.tid) == 1


def test_rollback_hides_insert(setup):
    manager, table = setup
    txn = manager.begin()
    table.insert([1, "a"], txn)
    manager.rollback(txn)
    assert table.row_count(manager.last_committed_cid) == 0


def test_snapshot_does_not_see_later_commits(setup):
    manager, table = setup
    writer1 = manager.begin()
    table.insert([1, "a"], writer1)
    manager.commit(writer1)
    reader = manager.begin()
    writer2 = manager.begin()
    table.insert([2, "b"], writer2)
    manager.commit(writer2)
    assert table.row_count(reader.snapshot_cid, reader.tid) == 1
    assert table.row_count(manager.last_committed_cid) == 2


def test_delete_and_conflict(setup):
    manager, table = setup
    txn = manager.begin()
    ordinal, position = table.insert([1, "a"], txn)
    manager.commit(txn)

    deleter = manager.begin()
    table.delete_at(ordinal, position, deleter)
    other = manager.begin()
    with pytest.raises(WriteConflictError):
        table.delete_at(ordinal, position, other)
    manager.rollback(deleter)
    # after rollback the row is deletable again
    table.delete_at(ordinal, position, other)
    manager.commit(other)
    assert table.row_count(manager.last_committed_cid) == 0


def test_update_is_delete_plus_insert(setup):
    manager, table = setup
    txn = manager.begin()
    ordinal, position = table.insert([1, "a"], txn)
    manager.commit(txn)
    updater = manager.begin()
    table.update_at(ordinal, position, {"name": "z"}, updater)
    manager.commit(updater)
    rows = table.scan_rows(manager.last_committed_cid)
    assert rows == [[1, "z"]]


def test_hash_partition_routing(setup):
    manager, _ = setup
    table = ColumnTable(
        "p",
        schema(("id", types.INTEGER)),
        partitioning=HashPartitioning(["id"], 4),
    )
    txn = manager.begin()
    for value in range(40):
        table.insert([value], txn)
    manager.commit(txn)
    assert len(table.partitions) == 4
    assert sum(len(p) for p in table.partitions) == 40
    assert all(len(p) > 0 for p in table.partitions)


def test_flexible_table_adds_columns_on_insert(setup):
    manager, _ = setup
    table = ColumnTable("f", schema(("id", types.INTEGER)), flexible=True)
    txn = manager.begin()
    table.ensure_columns({"id": 1, "color": "red"}, types.VARCHAR)
    table.insert({"id": 1, "color": "red"}, txn)
    manager.commit(txn)
    assert table.schema.has_column("color")
    rows = table.scan_rows(manager.last_committed_cid)
    assert rows == [[1, "red"]]


def test_non_flexible_rejects_unknown_columns(setup):
    manager, table = setup
    with pytest.raises(SchemaError):
        table.ensure_columns({"bogus": 1}, types.VARCHAR)


def test_flexible_backfills_nulls(setup):
    manager, _ = setup
    table = ColumnTable("f", schema(("id", types.INTEGER)), flexible=True)
    txn = manager.begin()
    table.insert({"id": 1}, txn)
    table.ensure_columns({"id": 2, "note": "x"}, types.VARCHAR)
    table.insert({"id": 2, "note": "x"}, txn)
    manager.commit(txn)
    rows = sorted(table.scan_rows(manager.last_committed_cid))
    assert rows == [[1, None], [2, "x"]]


def test_change_listener_fires_on_commit_only(setup):
    manager, table = setup
    events = []
    table.on_change(lambda event, p, positions, rows: events.append((event, rows)))
    txn = manager.begin()
    table.insert([1, "a"], txn)
    assert events == []
    manager.commit(txn)
    assert events == [("insert", [[1, "a"]])]
    aborted = manager.begin()
    table.insert([2, "b"], aborted)
    manager.rollback(aborted)
    assert len(events) == 1


def test_find_rows(setup):
    manager, table = setup
    txn = manager.begin()
    table.insert([1, "a"], txn)
    table.insert([2, "b"], txn)
    manager.commit(txn)
    matches = table.find_rows(lambda row: row[1] == "b", manager.last_committed_cid)
    assert len(matches) == 1
    assert matches[0][2] == [2, "b"]


def test_statistics(setup):
    manager, table = setup
    txn = manager.begin()
    table.insert([1, "a"], txn)
    manager.commit(txn)
    stats = table.statistics()
    assert stats["delta_rows"] == 1
    assert stats["main_rows"] == 0
    assert stats["columns"] == 2
