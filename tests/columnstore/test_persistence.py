"""Tests for redo log, savepoints, and recovery."""

import datetime as dt

from repro.core.database import Database


def test_recovery_replays_redo_log(tmp_path):
    database = Database(data_dir=tmp_path)
    database.execute("CREATE TABLE t (id INT, name VARCHAR, d DATE)")
    database.execute("INSERT INTO t VALUES (1, 'a', DATE '2014-01-01'), (2, 'b', DATE '2014-02-01')")
    database.execute("DELETE FROM t WHERE id = 1")
    database.persistence.close()

    recovered = Database(data_dir=tmp_path)
    rows = recovered.execute("SELECT id, name, d FROM t ORDER BY id").rows
    assert rows == [[2, "b", dt.date(2014, 2, 1)]]


def test_savepoint_truncates_log(tmp_path):
    database = Database(data_dir=tmp_path)
    database.execute("CREATE TABLE t (id INT)")
    database.execute("INSERT INTO t VALUES (1), (2)")
    database.savepoint()
    assert database.persistence.read_redo() == []
    database.execute("INSERT INTO t VALUES (3)")
    database.persistence.close()

    recovered = Database(data_dir=tmp_path)
    assert recovered.execute("SELECT COUNT(*) FROM t").scalar() == 3


def test_update_survives_recovery(tmp_path):
    database = Database(data_dir=tmp_path)
    database.execute("CREATE TABLE t (id INT, v DOUBLE)")
    database.savepoint()
    database.execute("INSERT INTO t VALUES (1, 10.0)")
    database.execute("UPDATE t SET v = 20.0 WHERE id = 1")
    database.persistence.close()

    recovered = Database(data_dir=tmp_path)
    assert recovered.execute("SELECT v FROM t").rows == [[20.0]]


def test_rolled_back_txn_not_replayed(tmp_path):
    database = Database(data_dir=tmp_path)
    database.execute("CREATE TABLE t (id INT)")
    database.savepoint()
    txn = database.begin()
    database.table("t").insert([99], txn)
    database.rollback(txn)
    database.execute("INSERT INTO t VALUES (1)")
    database.persistence.close()

    recovered = Database(data_dir=tmp_path)
    assert recovered.execute("SELECT id FROM t").rows == [[1]]


def test_torn_tail_line_ignored(tmp_path):
    database = Database(data_dir=tmp_path)
    database.execute("CREATE TABLE t (id INT)")
    database.savepoint()
    database.execute("INSERT INTO t VALUES (1)")
    database.persistence.close()
    with open(tmp_path / "redo.log", "a", encoding="utf-8") as handle:
        handle.write('{"cid": 99, "records": [{"op": "insert", "table"')
    recovered = Database(data_dir=tmp_path)
    assert recovered.execute("SELECT COUNT(*) FROM t").scalar() == 1


def test_ddl_survives_recovery_without_savepoint(tmp_path):
    database = Database(data_dir=tmp_path)
    database.execute("CREATE TABLE fresh (id INT)")
    database.execute("INSERT INTO fresh VALUES (7)")
    database.persistence.close()

    recovered = Database(data_dir=tmp_path)
    assert recovered.execute("SELECT id FROM fresh").rows == [[7]]


def test_double_recovery_is_idempotent(tmp_path):
    database = Database(data_dir=tmp_path)
    database.execute("CREATE TABLE t2 (id INT)")
    database.execute("INSERT INTO t2 VALUES (1), (2)")
    database.persistence.close()

    first = Database(data_dir=tmp_path)
    assert first.execute("SELECT COUNT(*) FROM t2").scalar() == 2
    first.persistence.close()
    second = Database(data_dir=tmp_path)
    assert second.execute("SELECT COUNT(*) FROM t2").scalar() == 2


def test_physical_savepoint_recovery(tmp_path):
    database = Database(data_dir=tmp_path)
    database.execute("CREATE TABLE t (id INT, v VARCHAR)")
    database.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')")
    database.execute("DELETE FROM t WHERE id = 2")
    database.merge("t")
    database.physical_savepoint()
    database.execute("INSERT INTO t VALUES (4, 'd')")  # log tail after snapshot
    database.persistence.close()

    recovered = Database(data_dir=tmp_path)
    rows = recovered.execute("SELECT id, v FROM t ORDER BY id").rows
    assert rows == [[1, "a"], [3, "c"], [4, "d"]]
    # new writes work on the re-attached structures
    recovered.execute("UPDATE t SET v = 'z' WHERE id = 1")
    assert recovered.execute("SELECT v FROM t WHERE id = 1").scalar() == "z"


def test_physical_recovery_scrubs_in_flight_transactions(tmp_path):
    database = Database(data_dir=tmp_path)
    database.execute("CREATE TABLE t (id INT)")
    database.execute("INSERT INTO t VALUES (1)")
    zombie = database.begin()
    database.table("t").insert([99], zombie)          # never commits
    matches = database.table("t").find_rows(lambda r: r[0] == 1, zombie.snapshot_cid, zombie.tid)
    database.table("t").partitions[matches[0][0]].mark_deleted(matches[0][1], zombie)
    database.physical_savepoint()                      # crash with zombie open
    database.persistence.close()

    recovered = Database(data_dir=tmp_path)
    assert recovered.execute("SELECT id FROM t").rows == [[1]]


def test_physical_savepoint_preserves_text_index_rebuildability(tmp_path):
    from repro.engines.text.index import create_text_index

    database = Database(data_dir=tmp_path)
    database.execute("CREATE TABLE docs (id INT, body VARCHAR)")
    create_text_index(database, "docs", "body")
    database.execute("INSERT INTO docs VALUES (1, 'searchable text')")
    database.physical_savepoint()
    database.persistence.close()

    recovered = Database(data_dir=tmp_path)
    # listeners were dropped by pickling; a fresh index rebuilds from data
    create_text_index(recovered, "docs", "body")
    assert recovered.execute(
        "SELECT COUNT(*) FROM docs WHERE CONTAINS(body, 'searchable')"
    ).scalar() == 1
