"""Tests for sorted and append dictionaries."""

import numpy as np
import pytest

from repro.columnstore.compression import NULL_VID
from repro.columnstore.dictionary import AppendDictionary, SortedDictionary


def test_sorted_dictionary_orders_values():
    dictionary = SortedDictionary(["c", "a", "b", "a"])
    assert dictionary.values == ["a", "b", "c"]
    assert dictionary.vid_of("b") == 1
    assert dictionary.value_of(2) == "c"


def test_null_is_never_stored():
    dictionary = SortedDictionary()
    assert dictionary.vid_of(None) == NULL_VID
    assert dictionary.value_of(NULL_VID) is None


def test_append_order_needs_no_remap():
    dictionary = SortedDictionary(["a", "b"])
    remap = dictionary.encode_many(["c", "d"])
    assert remap is None
    assert dictionary.remap_count == 0
    assert dictionary.vid_of("a") == 0  # stable


def test_out_of_order_insert_remaps():
    dictionary = SortedDictionary(["b", "d"])
    remap = dictionary.encode_many(["a", "c"])
    assert remap is not None
    # old vid 0 was "b" -> now position 1; old vid 1 was "d" -> now 3
    assert list(remap) == [1, 3]
    assert dictionary.remap_count == 1
    assert dictionary.values == ["a", "b", "c", "d"]


def test_encode_many_ignores_known_values():
    dictionary = SortedDictionary(["a", "b"])
    assert dictionary.encode_many(["a", "b", None]) is None


def test_range_vids_sorted():
    dictionary = SortedDictionary(["a", "b", "c", "d"])
    assert dictionary.range_vids("b", "c") == (1, 3)
    assert dictionary.range_vids(low="b", low_inclusive=False) == (2, 4)
    assert dictionary.range_vids(high="c", high_inclusive=False) == (0, 2)
    assert dictionary.range_vids() == (0, 4)


def test_decode_many():
    dictionary = SortedDictionary(["x", "y"])
    vids = np.array([1, NULL_VID, 0])
    assert dictionary.decode_many(vids) == ["y", None, "x"]


def test_append_dictionary_is_insertion_ordered():
    dictionary = AppendDictionary()
    assert dictionary.encode("b") == 0
    assert dictionary.encode("a") == 1
    assert dictionary.encode("b") == 0
    assert dictionary.values == ["b", "a"]
    assert dictionary.stable_order_violations == 1
    assert not dictionary.is_sorted()


def test_append_dictionary_monotone_keys_stay_sorted():
    dictionary = AppendDictionary()
    for key in ["k001", "k002", "k003"]:
        dictionary.encode(key)
    assert dictionary.is_sorted()
    assert dictionary.stable_order_violations == 0


def test_append_dictionary_never_remaps():
    dictionary = AppendDictionary(["z", "a"])
    assert dictionary.encode_many(["m", "z"]) is None
    assert dictionary.remap_count == 0


def test_contains():
    dictionary = SortedDictionary(["a"])
    assert "a" in dictionary
    assert "b" not in dictionary
