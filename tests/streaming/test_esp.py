"""Tests for the event stream processor."""

import pytest

from repro.core.database import Database
from repro.errors import StreamingError
from repro.streaming.esp import (
    CollectSink,
    DeriveOperator,
    FilterOperator,
    ProjectOperator,
    SlidingWindowThreshold,
    StreamProcessor,
    TableSink,
    TumblingWindowAggregate,
)


def test_filter_project_derive_chain():
    sink = CollectSink()
    processor = StreamProcessor(
        [
            FilterOperator(lambda e: e["v"] > 0),
            DeriveOperator("double", lambda e: e["v"] * 2),
            ProjectOperator(["k", "double"]),
        ],
        [sink],
    )
    processor.push_many([{"k": 1, "v": 5}, {"k": 2, "v": -1}, {"k": 3, "v": 2}])
    assert sink.events == [{"k": 1, "double": 10}, {"k": 3, "double": 4}]
    assert processor.events_in == 3
    assert processor.events_out == 2


def test_tumbling_window_aggregates_per_key():
    sink = CollectSink()
    processor = StreamProcessor(
        [TumblingWindowAggregate("ts", "sensor", "v", width=10)], [sink]
    )
    processor.push_many(
        [
            {"ts": 1, "sensor": "a", "v": 1.0},
            {"ts": 5, "sensor": "a", "v": 3.0},
            {"ts": 7, "sensor": "b", "v": 10.0},
            {"ts": 12, "sensor": "a", "v": 5.0},  # closes the first window
        ]
    )
    processor.finish()
    windows = {(e["sensor"], e["window_start"]): e for e in sink.events}
    first_a = windows[("a", 0)]
    assert first_a["count"] == 2
    assert first_a["avg"] == 2.0
    assert first_a["min"] == 1.0 and first_a["max"] == 3.0
    assert windows[("b", 0)]["sum"] == 10.0
    assert windows[("a", 10)]["count"] == 1


def test_tumbling_window_requires_order():
    processor = StreamProcessor(
        [TumblingWindowAggregate("ts", "k", "v", width=10)], [CollectSink()]
    )
    processor.push({"ts": 100, "k": "a", "v": 1.0})
    with pytest.raises(StreamingError):
        processor.push({"ts": 50, "k": "a", "v": 1.0})


def test_sliding_threshold_alerts_once_until_recovery():
    sink = CollectSink()
    processor = StreamProcessor(
        [SlidingWindowThreshold("k", "v", size=3, threshold=10.0, below=True)], [sink]
    )
    for value in (20, 20, 20, 5, 5, 5, 5, 20, 20, 20, 5, 5, 5):
        processor.push({"k": "d1", "v": value})
    alerts = [e for e in sink.events if e["alert"] == "below"]
    assert len(alerts) == 2  # re-alerts only after recovering


def test_table_sink_batches_commits():
    database = Database()
    database.execute("CREATE TABLE readings (k INT, v DOUBLE)")
    sink = TableSink(database, "readings", batch_size=10)
    processor = StreamProcessor([], [sink])
    processor.push_many({"k": i, "v": float(i)} for i in range(25))
    # two full batches committed, 5 pending
    assert database.query("SELECT COUNT(*) FROM readings").scalar() == 20
    processor.finish()
    assert database.query("SELECT COUNT(*) FROM readings").scalar() == 25
    assert sink.inserted == 25


def test_window_validation():
    with pytest.raises(StreamingError):
        TumblingWindowAggregate("ts", "k", "v", width=0)
    with pytest.raises(StreamingError):
        SlidingWindowThreshold("k", "v", size=0, threshold=1.0)
